//! Emit a function's phase-order space as Graphviz `dot` (the weighted
//! DAG of Figure 7) plus the best and worst leaf instances it contains.
//!
//! ```text
//! cargo run --release --example search_space_dag > space.dot
//! dot -Tsvg space.dot -o space.svg
//! ```
//! Pass MiniC source on the command line to explore your own function:
//!
//! ```text
//! cargo run --release --example search_space_dag -- 'int f(int a){return a*6;}'
//! ```

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, Config};
use epo::opt::{attempt, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "int f(int a) { int x = a + 1; return x * 4; }".into());
    let program = epo::frontend::compile(&source)?;
    let f = &program.functions[0];
    let target = Target::default();
    let e = enumerate(f, &target, &Config::default());

    // The DAG itself, on stdout (pipe into graphviz).
    println!("{}", e.space.to_dot());

    // Best and worst leaves, on stderr, reached by replaying discovery
    // edges from the root.
    eprintln!(
        "space: {} instances, {} leaves, root weight {} (distinct active sequences)",
        e.space.len(),
        e.space.leaf_count(),
        e.space.node(e.space.root()).weight
    );
    let mut leaves: Vec<_> = e.space.iter().filter(|(_, n)| n.is_leaf()).collect();
    leaves.sort_by_key(|(_, n)| n.inst_count);
    for (label, pick) in [("best", leaves.first()), ("worst", leaves.last())] {
        let Some(&(id, node)) = pick else { continue };
        // Reconstruct the discovery sequence.
        let mut seq = Vec::new();
        let mut cur = id;
        while let Some((parent, phase)) = e.space.node(cur).discovered_from {
            seq.push(phase);
            cur = parent;
        }
        seq.reverse();
        let mut g = f.clone();
        for &p in &seq {
            attempt(&mut g, p, &target);
        }
        eprintln!(
            "\n{label} leaf ({} instructions) via sequence `{}`:\n{g}",
            node.inst_count,
            seq.iter().map(|p| p.letter()).collect::<String>()
        );
    }
    Ok(())
}
