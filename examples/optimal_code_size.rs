//! "It is now possible to find the optimal phase ordering for some
//! characteristics. For instance, we are able to find the minimal code
//! size for most of the functions in our benchmark suite." (Section 8.)
//!
//! This example does exactly that for one MiBench benchmark: it compares
//! the batch compiler's code size against the true optimum found by
//! exhaustive enumeration, and verifies the optimal instance still
//! computes the right answers.
//!
//! ```text
//! cargo run --release --example optimal_code_size [benchmark]
//! ```

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, Config};
use epo::opt::{attempt, batch::batch_compile, Target};
use epo::sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "bitcount".into());
    let bench = epo::benchmarks::all()
        .into_iter()
        .find(|b| b.name == which)
        .unwrap_or_else(|| panic!("unknown benchmark {which}"));
    let program = bench.compile()?;
    let target = Target::default();

    println!("{:<20} {:>6} {:>6} {:>7} {:>9}", "function", "batch", "best", "worst", "batch-gap");
    for f in &program.functions {
        let e = enumerate(f, &target, &Config::default());
        if !e.outcome.is_complete() {
            println!("{:<20} search space too big", f.name);
            continue;
        }
        let mut batch = f.clone();
        batch_compile(&mut batch, &target);
        let (best, worst) = e.space.leaf_code_size_range().expect("leaves exist");
        let gap = batch.inst_count() as i64 - best as i64;
        println!(
            "{:<20} {:>6} {:>6} {:>7} {:>8}{}",
            f.name,
            batch.inst_count(),
            best,
            worst,
            gap,
            if gap == 0 { " (optimal!)" } else { "" }
        );

        // Materialize the optimal instance and check semantics on the
        // benchmark's workloads.
        let best_id = e
            .space
            .iter()
            .filter(|(_, n)| n.is_leaf())
            .min_by_key(|(_, n)| n.inst_count)
            .map(|(id, _)| id)
            .unwrap();
        let mut seq = Vec::new();
        let mut cur = best_id;
        while let Some((parent, phase)) = e.space.node(cur).discovered_from {
            seq.push(phase);
            cur = parent;
        }
        seq.reverse();
        let mut optimal = f.clone();
        for &p in &seq {
            attempt(&mut optimal, p, &target);
        }
        for w in bench.workloads_for(&f.name) {
            let mut m1 = Machine::new(&program);
            let expected = m1.call(w.function, &w.args)?;
            let mut m2 = Machine::new(&program);
            let got = m2.call_instance(&optimal, &w.args)?;
            assert_eq!(expected, got, "optimal instance of {} misbehaves", f.name);
            println!(
                "    verified {}({:?}) = {got} via `{}`",
                w.function,
                w.args,
                seq.iter().map(|p| p.letter()).collect::<String>()
            );
        }
    }
    Ok(())
}
