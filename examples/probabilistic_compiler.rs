//! The Section 6 case study as a runnable demo: train the probabilistic
//! batch compiler on one benchmark's exhaustive enumerations, then compile
//! another benchmark with it and compare against the conventional batch
//! loop (attempted phases, code size, dynamic instruction counts).
//!
//! ```text
//! cargo run --release --example probabilistic_compiler
//! ```

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, sequence_letters, Config};
use epo::explore::interaction::InteractionAnalysis;
use epo::explore::prob::{probabilistic_compile, ProbTables};
use epo::opt::batch::batch_compile;
use epo::opt::Target;
use epo::sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = Target::default();

    // Train on bitcount + stringsearch.
    let mut ia = InteractionAnalysis::new();
    for name in ["bitcount", "stringsearch"] {
        let b = epo::benchmarks::all().into_iter().find(|b| b.name == name).unwrap();
        let program = b.compile()?;
        for f in &program.functions {
            let e = enumerate(f, &target, &Config::default());
            if e.outcome.is_complete() {
                ia.add_space(&e.space);
            }
        }
    }
    let tables = ProbTables::from_analysis(&ia);
    println!("trained on {} functions\n", ia.function_count());

    // Evaluate on dijkstra (unseen during training).
    let bench = epo::benchmarks::all().into_iter().find(|b| b.name == "dijkstra").unwrap();
    let program = bench.compile()?;
    println!(
        "{:<16} {:>7} {:>7} {:>6} {:>6}  sequences",
        "function", "oldAtt", "prAtt", "oldSz", "prSz"
    );
    for f in &program.functions {
        let mut f_old = f.clone();
        let old = batch_compile(&mut f_old, &target);
        let mut f_prob = f.clone();
        let prob = probabilistic_compile(&mut f_prob, &target, &tables);
        println!(
            "{:<16} {:>7} {:>7} {:>6} {:>6}  {} | {}",
            f.name,
            old.attempted,
            prob.attempted,
            f_old.inst_count(),
            f_prob.inst_count(),
            sequence_letters(&old.sequence),
            sequence_letters(&prob.sequence),
        );
    }

    // Dynamic check on the benchmark's workloads.
    for w in &bench.workloads {
        let f = program.function(w.function).unwrap();
        let mut f_old = f.clone();
        batch_compile(&mut f_old, &target);
        let mut f_prob = f.clone();
        probabilistic_compile(&mut f_prob, &target, &tables);
        let mut m1 = Machine::new(&program);
        let r1 = m1.call_instance(&f_old, &w.args)?;
        let mut m2 = Machine::new(&program);
        let r2 = m2.call_instance(&f_prob, &w.args)?;
        assert_eq!(r1, r2, "semantic mismatch on {}", w.function);
        println!(
            "\n{}({:?}) = {r1}; dynamic counts: batch {} vs probabilistic {} ({:.3}x)",
            w.function,
            w.args,
            m1.dynamic_insts(),
            m2.dynamic_insts(),
            m2.dynamic_insts() as f64 / m1.dynamic_insts() as f64
        );
    }
    Ok(())
}
