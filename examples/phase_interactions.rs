//! Mine phase-interaction probabilities (the paper's Section 5) from a
//! benchmark's exhaustively enumerated spaces and show the strongest
//! enabling/disabling relationships.
//!
//! ```text
//! cargo run --release --example phase_interactions [benchmark]
//! ```
//! `benchmark` defaults to `bitcount`; any of the six suite names works.

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, Config};
use epo::explore::interaction::InteractionAnalysis;
use epo::opt::{PhaseId, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "bitcount".into());
    let bench = epo::benchmarks::all()
        .into_iter()
        .find(|b| b.name == which)
        .unwrap_or_else(|| panic!("unknown benchmark {which}"));
    println!("mining {} ({} category)...", bench.name, bench.category);

    let program = bench.compile()?;
    let target = Target::default();
    let mut ia = InteractionAnalysis::new();
    for f in &program.functions {
        let e = enumerate(f, &target, &Config::default());
        if e.outcome.is_complete() {
            ia.add_space(&e.space);
            println!("  {}: {} instances", f.name, e.space.len());
        } else {
            println!("  {}: too big, skipped", f.name);
        }
    }

    println!("\nphases active on unoptimized code:");
    for p in PhaseId::ALL {
        if let Some(v) = ia.start_probability(p) {
            if v > 0.0 {
                println!("  {} ({:<32}) {v:.2}", p.letter(), p.name());
            }
        }
    }

    println!("\nstrongest enabling relationships (x enables y):");
    let mut enabling: Vec<(f64, PhaseId, PhaseId)> = Vec::new();
    for y in PhaseId::ALL {
        for x in PhaseId::ALL {
            if x == y {
                continue;
            }
            if let Some(v) = ia.enabling_probability(y, x) {
                if v >= 0.05 {
                    enabling.push((v, x, y));
                }
            }
        }
    }
    enabling.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (v, x, y) in enabling.iter().take(12) {
        println!("  {} --enables--> {}  p = {v:.2}", x.letter(), y.letter());
    }

    println!("\nphases that always disable themselves (each runs to fixpoint):");
    for p in PhaseId::ALL {
        if let Some(v) = ia.disabling_probability(p, p) {
            println!("  d[{}][{}] = {v:.2}", p.letter(), p.letter());
        }
    }
    Ok(())
}
