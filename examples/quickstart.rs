//! Quickstart: compile a small C function, exhaustively enumerate its
//! optimization phase order space, and report what the space looks like.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, Config};
use epo::opt::Target;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int sum_squares(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s += i * i;
            return s;
        }
    "#;
    println!("source:\n{source}");

    // Compile with the MiniC front end: naive, unoptimized RTL.
    let program = epo::frontend::compile(source)?;
    let function = &program.functions[0];
    println!("unoptimized RTL ({} instructions):\n{function}", function.inst_count());

    // Exhaustively enumerate every function instance any ordering of the
    // 15 optimization phases can produce.
    let target = Target::default();
    let result = enumerate(function, &target, &Config::default());
    let space = &result.space;
    println!("search outcome: {:?}", result.outcome);
    println!("distinct function instances: {}", space.len());
    println!("phases attempted:            {}", result.stats.attempted_phases);
    println!("active applications:         {}", result.stats.active_attempts);
    println!("leaf instances:              {}", space.leaf_count());
    println!("longest active sequence:     {}", space.max_active_sequence_length());
    if let Some((best, worst)) = space.leaf_code_size_range() {
        println!(
            "leaf code size range:        {best}..{worst} instructions ({:.1}% spread)",
            (worst - best) as f64 * 100.0 / best as f64
        );
    }
    println!("distinct control flows:      {}", space.distinct_control_flows());

    // The conventional batch compiler reaches *one* of those instances.
    let mut batch = function.clone();
    let stats = epo::opt::batch::batch_compile(&mut batch, &target);
    println!(
        "\nbatch compiler: sequence {} -> {} instructions",
        epo::explore::enumerate::sequence_letters(&stats.sequence),
        batch.inst_count()
    );

    // Check it against the simulator: every ordering preserves semantics.
    let mut m = epo::sim::Machine::new(&program);
    let naive = m.call("sum_squares", &[10])?;
    let mut m2 = epo::sim::Machine::new(&program);
    let optimized = m2.call_instance(&batch, &[10])?;
    assert_eq!(naive, optimized);
    println!(
        "sum_squares(10) = {naive} under both; dynamic counts {} -> {}",
        m.dynamic_insts(),
        m2.dynamic_insts()
    );
    Ok(())
}
