//! How close do non-exhaustive searches get to the true optimum?
//!
//! The surrounding literature (hill climbers, genetic algorithms,
//! optimization-space exploration) evaluates heuristics without ground
//! truth; exhaustive enumeration provides it. For each benchmark kernel
//! this example runs random search, hill climbing, and a genetic
//! algorithm under the same evaluation budget and reports the gap to the
//! exhaustively-known minimal code size.
//!
//! ```text
//! cargo run --release --example heuristic_search [benchmark]
//! ```

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, Config};
use epo::explore::search::{genetic_search, hill_climb, random_search};
use epo::opt::batch::batch_compile;
use epo::opt::Target;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "stringsearch".into());
    let bench = epo::benchmarks::all()
        .into_iter()
        .find(|b| b.name == which)
        .unwrap_or_else(|| panic!("unknown benchmark {which}"));
    let program = bench.compile()?;
    let target = Target::default();

    println!(
        "{:<18} {:>6} {:>6} {:>7} {:>7} {:>6} {:>6}",
        "function", "naive", "optim", "random", "hill", "GA", "batch"
    );
    let mut gaps = [0u32; 4]; // random, hill, ga, batch cumulative gap
    let mut counted = 0u32;
    for f in &program.functions {
        if f.inst_count() > 130 {
            continue;
        }
        let e = enumerate(f, &target, &Config::default());
        if !e.outcome.is_complete() {
            continue;
        }
        let (optimum, _) = e.space.code_size_range().unwrap();
        // Same evaluation budget for every heuristic (best of 3 seeds).
        let rand_best =
            (1..=3).map(|s| random_search(f, &target, 100, 12, s).best_size).min().unwrap();
        let hill_best =
            (1..=3).map(|s| hill_climb(f, &target, 100, 12, s).best_size).min().unwrap();
        let ga_best =
            (1..=3).map(|s| genetic_search(f, &target, 10, 10, 12, s).best_size).min().unwrap();
        let mut b = f.clone();
        batch_compile(&mut b, &target);
        println!(
            "{:<18} {:>6} {:>6} {:>7} {:>7} {:>6} {:>6}",
            f.name,
            f.inst_count(),
            optimum,
            rand_best,
            hill_best,
            ga_best,
            b.inst_count()
        );
        gaps[0] += rand_best - optimum;
        gaps[1] += hill_best - optimum;
        gaps[2] += ga_best - optimum;
        gaps[3] += (b.inst_count() as u32).saturating_sub(optimum);
        counted += 1;
    }
    println!(
        "\ncumulative gap to the exhaustive optimum over {counted} functions:\n  \
         random +{}, hill climbing +{}, genetic +{}, batch compiler +{}",
        gaps[0], gaps[1], gaps[2], gaps[3]
    );
    println!(
        "(the batch compiler stops at a fixpoint leaf; heuristics may stop at\n smaller interior instances — both gaps are measured against the space-wide minimum)"
    );
    Ok(())
}
