//! The paper's "eventual goal" (Section 7): find the function instance
//! with near-optimal *execution* performance — made affordable by the
//! control-flow inference trick, which needs only one simulator run per
//! distinct control flow instead of one per instance.
//!
//! ```text
//! cargo run --release --example fastest_instance
//! ```

use exhaustive_phase_order as epo;

use epo::cf_infer::{leaf_dynamic_counts, materialize};
use epo::explore::enumerate::{enumerate, Config};
use epo::opt::batch::batch_compile;
use epo::opt::Target;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int weighted_sum(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) {
                if (i & 1) s += i * 3;
                else s += i;
            }
            return s;
        }
    "#;
    let args = [64];
    println!("source:{source}");

    let program = epo::frontend::compile(source)?;
    let f = &program.functions[0];
    let target = Target::default();

    // 1. Exhaustively enumerate the space.
    let e = enumerate(f, &target, &Config::default());
    println!(
        "space: {} instances, {} leaves, {} distinct control flows",
        e.space.len(),
        e.space.leaf_count(),
        e.space.distinct_control_flows()
    );

    // 2. Dynamic count of EVERY leaf, executing once per control flow.
    let inf = leaf_dynamic_counts(&program, f, &e, &args, &target)?;
    println!(
        "simulated {} of {} leaves; the rest inferred from control-flow twins",
        inf.executions,
        inf.leaves.len()
    );
    let fastest = inf.fastest().unwrap();
    let slowest = inf.slowest().unwrap();
    println!(
        "fastest leaf: {} dynamic instructions ({} static) {}",
        fastest.dynamic,
        fastest.static_size,
        if fastest.measured { "[measured]" } else { "[inferred]" }
    );
    println!(
        "slowest leaf: {} dynamic instructions ({} static)",
        slowest.dynamic, slowest.static_size
    );

    // 3. Where does the conventional batch compiler land?
    let mut batch = f.clone();
    batch_compile(&mut batch, &target);
    let mut m = epo::sim::Machine::new(&program);
    let (batch_result, counts) = m.call_instance_counted(&batch, &args)?;
    let batch_dynamic: u64 =
        batch.blocks.iter().zip(&counts).map(|(b, &n)| b.insts.len() as u64 * n).sum();
    println!(
        "batch compiler: {batch_dynamic} dynamic instructions ({} static)",
        batch.inst_count()
    );
    println!(
        "batch is within {:.1}% of the true optimum",
        (batch_dynamic as f64 / fastest.dynamic as f64 - 1.0) * 100.0
    );

    // 4. Materialize the optimum and double-check semantics.
    let best = materialize(f, &e, fastest.node, &target);
    let mut m2 = epo::sim::Machine::new(&program);
    assert_eq!(m2.call_instance(&best, &args)?, batch_result);
    println!("\noptimal instance:\n{best}");
    Ok(())
}
