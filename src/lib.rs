//! # Exhaustive Optimization Phase Order Space Exploration
//!
//! A complete reproduction of Kulkarni, Whalley, Tyson & Davidson,
//! *"Exhaustive Optimization Phase Order Space Exploration"* (CGO 2006),
//! as a Rust workspace. This facade crate re-exports the member crates:
//!
//! * [`rtl`] — the RTL intermediate representation, CFG and dataflow
//!   analyses, and the canonical fingerprinting of Section 4.2.1;
//! * [`frontend`] — the MiniC front end producing naive, unoptimized RTL;
//! * [`opt`] — the fifteen optimization phases of Table 1, the compulsory
//!   phases, the StrongARM-like target model, and the conventional batch
//!   compiler;
//! * [`sim`] — an RTL interpreter with dynamic instruction counting;
//! * [`explore`] — the paper's core contribution: exhaustive phase-order
//!   enumeration, the weighted instance DAG, phase-interaction analysis
//!   (Tables 4–6), the probabilistic batch compiler (Figure 8), the
//!   differential equivalence oracle that executes every distinct
//!   instance to verify the space, and the resumable multi-function
//!   campaign driver with its on-disk result store;
//! * [`benchmarks`] — MiniC re-implementations of the MiBench subset of
//!   Table 2 with simulator workloads.
//!
//! # Quick start
//!
//! ```
//! use exhaustive_phase_order as epo;
//! use epo::explore::enumerate::{enumerate, Config};
//!
//! // 1. Compile a function to naive RTL.
//! let program = epo::frontend::compile(
//!     "int square(int x) { return x * x; }",
//! )?;
//!
//! // 2. Exhaustively enumerate its phase-order space.
//! let target = epo::opt::Target::default();
//! let result = enumerate(&program.functions[0], &target, &Config::default());
//! assert!(result.outcome.is_complete());
//!
//! // 3. Inspect the space: every distinct function instance any phase
//! //    ordering can produce, as a weighted DAG.
//! let space = &result.space;
//! println!(
//!     "{} instances, {} leaves, best code size {:?}",
//!     space.len(),
//!     space.leaf_count(),
//!     space.leaf_code_size_range().map(|(lo, _)| lo),
//! );
//! # Ok::<(), epo::frontend::CompileError>(())
//! ```
//!
//! The facade also hosts [`cf_infer`], the Section 7 extension that
//! infers every instance's dynamic instruction count from one execution
//! per distinct control flow.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and per-experiment index, and `EXPERIMENTS.md` for
//! the paper-vs-measured record of every table and figure.

pub mod cf_infer;

/// The RTL intermediate representation (`vpo-rtl`).
pub use vpo_rtl as rtl;

/// The MiniC front end (`vpo-frontend`).
pub use vpo_frontend as frontend;

/// The optimization phases and target model (`vpo-opt`).
pub use vpo_opt as opt;

/// The RTL interpreter (`vpo-sim`).
pub use vpo_sim as sim;

/// The exhaustive exploration engine (`phase-order`).
pub use phase_order as explore;

/// The MiBench kernel suite (`mibench`).
pub use mibench as benchmarks;
