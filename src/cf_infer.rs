//! Control-flow-based dynamic-count inference (the paper's Section 7).
//!
//! "The small number of distinct control flows of functions (see column
//! CF in Table 7) can be used to infer the dynamic instruction count of
//! one execution from another." Two function instances with the same
//! control-flow shape execute their corresponding basic blocks the same
//! number of times on the same input, so measuring **one instance per
//! distinct control flow** yields every instance's dynamic count as
//!
//! ```text
//! dynamic(instance) = Σ_blocks entries(block) × |block|
//! ```
//!
//! With hundreds of thousands of instances but only tens of control
//! flows, this turns an infeasible simulation campaign into a handful of
//! runs — the prerequisite for the paper's "eventual goal" of finding the
//! best-performing instance.

use std::collections::HashMap;

use phase_order::{Enumeration, NodeId};
use vpo_opt::{attempt, Target};
use vpo_rtl::{Function, Program};
use vpo_sim::{Machine, SimError};

/// The dynamic instruction count of one leaf instance, and whether it was
/// measured directly or inferred from a control-flow sibling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafCount {
    /// The instance.
    pub node: NodeId,
    /// Static size (instructions).
    pub static_size: u32,
    /// Dynamic instructions executed in the function itself (callees not
    /// included — they are identical across instances anyway).
    pub dynamic: u64,
    /// `true` if this row was simulated; `false` if inferred from another
    /// instance with the same control flow.
    pub measured: bool,
}

/// Result of [`leaf_dynamic_counts`].
#[derive(Clone, Debug)]
pub struct CfInference {
    /// One entry per leaf instance, in node order.
    pub leaves: Vec<LeafCount>,
    /// Number of simulator executions performed.
    pub executions: usize,
}

impl CfInference {
    /// The leaf with the smallest dynamic count (the best-performing
    /// instance the paper's eventual goal asks for).
    pub fn fastest(&self) -> Option<&LeafCount> {
        self.leaves.iter().min_by_key(|l| l.dynamic)
    }

    /// The leaf with the largest dynamic count.
    pub fn slowest(&self) -> Option<&LeafCount> {
        self.leaves.iter().max_by_key(|l| l.dynamic)
    }
}

/// Rematerializes an instance by replaying its discovery sequence.
pub fn materialize(base: &Function, e: &Enumeration, node: NodeId, target: &Target) -> Function {
    let mut seq = Vec::new();
    let mut cur = node;
    while let Some((parent, phase)) = e.space.node(cur).discovered_from {
        seq.push(phase);
        cur = parent;
    }
    seq.reverse();
    let mut g = base.clone();
    for &p in &seq {
        attempt(&mut g, p, target);
    }
    g
}

/// Computes the dynamic instruction count of **every leaf instance** of an
/// enumerated space on the given workload, executing only one instance per
/// distinct control flow and inferring the rest.
///
/// # Errors
///
/// Propagates the first simulator error (the workload must execute
/// successfully on every distinct control flow).
pub fn leaf_dynamic_counts(
    program: &Program,
    base: &Function,
    e: &Enumeration,
    args: &[i32],
    target: &Target,
) -> Result<CfInference, SimError> {
    // counts per control-flow signature, measured once.
    let mut measured: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut leaves = Vec::new();
    let mut executions = 0;
    for (id, node) in e.space.iter() {
        if !node.is_leaf() {
            continue;
        }
        let f = materialize(base, e, id, target);
        debug_assert_eq!(vpo_rtl::canon::fingerprint(&f), node.fp);
        let (block_counts, was_measured) = match measured.get(&node.cf_sig) {
            Some(c) => (c.clone(), false),
            None => {
                let mut m = Machine::new(program);
                let (_, counts) = m.call_instance_counted(&f, args)?;
                executions += 1;
                measured.insert(node.cf_sig, counts.clone());
                (counts, true)
            }
        };
        let dynamic: u64 =
            f.blocks.iter().zip(&block_counts).map(|(b, &n)| b.insts.len() as u64 * n).sum();
        leaves.push(LeafCount {
            node: id,
            static_size: node.inst_count,
            dynamic,
            measured: was_measured,
        });
    }
    Ok(CfInference { leaves, executions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_order::enumerate::{enumerate, Config};

    fn setup(src: &str) -> (Program, Enumeration) {
        let p = vpo_frontend::compile(src).unwrap();
        let e = enumerate(&p.functions[0], &Target::default(), &Config::default());
        assert!(e.outcome.is_complete());
        (p, e)
    }

    #[test]
    fn inference_matches_direct_measurement() {
        let (p, e) = setup(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i * 3; return s; }",
        );
        let target = Target::default();
        let inf = leaf_dynamic_counts(&p, &p.functions[0], &e, &[17], &target).unwrap();
        assert!(!inf.leaves.is_empty());
        assert!(inf.executions <= e.space.distinct_control_flows());
        // Cross-check every inferred leaf against a direct counted run.
        for leaf in &inf.leaves {
            let f = materialize(&p.functions[0], &e, leaf.node, &target);
            let mut m = Machine::new(&p);
            let (_, counts) = m.call_instance_counted(&f, &[17]).unwrap();
            let direct: u64 =
                f.blocks.iter().zip(&counts).map(|(b, &n)| b.insts.len() as u64 * n).sum();
            assert_eq!(leaf.dynamic, direct, "inference mismatch on leaf {:?}", leaf.node);
        }
    }

    #[test]
    fn execution_savings_are_real() {
        let (p, e) = setup(
            "int g(int n) { int s = 0; int i; for (i = 0; i < n; i++) { if (i & 1) s += i; } return s; }",
        );
        let inf = leaf_dynamic_counts(&p, &p.functions[0], &e, &[30], &Target::default()).unwrap();
        let leaves = inf.leaves.len();
        assert!(inf.executions <= leaves, "never more executions than leaves");
        // All leaves got a count; at least one was inferred whenever two
        // leaves share a control flow.
        if leaves > inf.executions {
            assert!(inf.leaves.iter().any(|l| !l.measured));
        }
        assert!(inf.fastest().unwrap().dynamic <= inf.slowest().unwrap().dynamic);
    }

    #[test]
    fn all_instances_compute_the_same_result() {
        // Sanity for the whole pipeline: the fastest and slowest leaves
        // agree on the answer.
        let (p, e) =
            setup("int h(int n) { int s = 1; while (n > 1) { s *= n & 7; n--; } return s; }");
        let target = Target::default();
        let inf = leaf_dynamic_counts(&p, &p.functions[0], &e, &[9], &target).unwrap();
        let fast = materialize(&p.functions[0], &e, inf.fastest().unwrap().node, &target);
        let slow = materialize(&p.functions[0], &e, inf.slowest().unwrap().node, &target);
        let mut m1 = Machine::new(&p);
        let mut m2 = Machine::new(&p);
        assert_eq!(m1.call_instance(&fast, &[9]).unwrap(), m2.call_instance(&slow, &[9]).unwrap());
    }
}
