//! Property tests for the vpo-rtl core data structures: the liveness
//! bitset against a HashSet model, and the CRC against incremental
//! composition over arbitrary splits.

use proptest::prelude::*;
use std::collections::HashSet;

use vpo_rtl::crc::{crc32, Crc32};
use vpo_rtl::liveness::BitSet;

proptest! {
    #[test]
    fn bitset_matches_hashset_model(
        ops in proptest::collection::vec((0usize..200, proptest::bool::ANY), 0..200),
    ) {
        let mut bs = BitSet::new(200);
        let mut model: HashSet<usize> = HashSet::new();
        for (i, insert) in ops {
            if insert {
                let changed = bs.insert(i);
                prop_assert_eq!(changed, model.insert(i));
            } else {
                bs.remove(i);
                model.remove(&i);
            }
            prop_assert_eq!(bs.count(), model.len());
        }
        for i in 0..200 {
            prop_assert_eq!(bs.contains(i), model.contains(&i), "bit {}", i);
        }
        let mut listed: Vec<usize> = bs.iter().collect();
        let mut expect: Vec<usize> = model.into_iter().collect();
        listed.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(listed, expect);
    }

    #[test]
    fn bitset_union_matches_model(
        a in proptest::collection::hash_set(0usize..128, 0..60),
        b in proptest::collection::hash_set(0usize..128, 0..60),
    ) {
        let mut ba = BitSet::new(128);
        let mut bb = BitSet::new(128);
        for &i in &a { ba.insert(i); }
        for &i in &b { bb.insert(i); }
        let should_change = !b.is_subset(&a);
        let changed = ba.union_with(&bb);
        prop_assert_eq!(changed, should_change);
        let union: HashSet<usize> = a.union(&b).copied().collect();
        for i in 0..128 {
            prop_assert_eq!(ba.contains(i), union.contains(&i));
        }
    }

    #[test]
    fn crc_incremental_equals_oneshot(
        data in proptest::collection::vec(proptest::num::u8::ANY, 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Crc32::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn crc_detects_single_byte_changes(
        data in proptest::collection::vec(proptest::num::u8::ANY, 1..256),
        pos in 0usize..256,
        delta in 1u8..=255,
    ) {
        let pos = pos % data.len();
        let mut tweaked = data.clone();
        tweaked[pos] = tweaked[pos].wrapping_add(delta);
        prop_assert_ne!(crc32(&data), crc32(&tweaked));
    }

    #[test]
    fn crc_detects_adjacent_swaps(
        data in proptest::collection::vec(proptest::num::u8::ANY, 2..256),
        pos in 0usize..256,
    ) {
        let pos = pos % (data.len() - 1);
        prop_assume!(data[pos] != data[pos + 1]);
        let mut swapped = data.clone();
        swapped.swap(pos, pos + 1);
        // The order-sensitivity the paper relies on.
        prop_assert_ne!(crc32(&data), crc32(&swapped));
    }
}
