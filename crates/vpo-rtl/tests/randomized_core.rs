//! Randomized tests for the vpo-rtl core data structures: the liveness
//! bitset against a HashSet model, and the CRC against incremental
//! composition over arbitrary splits.
//!
//! Formerly proptest properties; the hermetic build policy (no registry
//! crates — see `DESIGN.md`) replaced the strategies with the seeded
//! in-tree generator `vpo_rtl::rng::Rng`, which now lives in this crate
//! (it moved down from `phase-order` when the front-end fuzzer gained a
//! need for seeding too).

use std::collections::HashSet;

use vpo_rtl::crc::{crc32, Crc32};
use vpo_rtl::liveness::BitSet;
use vpo_rtl::rng::Rng;

/// Draws `len` pseudo-random bytes.
fn bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

#[test]
fn bitset_matches_hashset_model() {
    for seed in 0..50 {
        let mut rng = Rng::seed_from_u64(seed);
        let mut bs = BitSet::new(200);
        let mut model: HashSet<usize> = HashSet::new();
        for _ in 0..rng.gen_range(0..200) {
            let i = rng.gen_range(0..200);
            if rng.next_u64() & 1 == 1 {
                let changed = bs.insert(i);
                assert_eq!(changed, model.insert(i), "seed {seed} bit {i}");
            } else {
                bs.remove(i);
                model.remove(&i);
            }
            assert_eq!(bs.count(), model.len(), "seed {seed}");
        }
        for i in 0..200 {
            assert_eq!(bs.contains(i), model.contains(&i), "seed {seed} bit {i}");
        }
        let mut listed: Vec<usize> = bs.iter().collect();
        let mut expect: Vec<usize> = model.into_iter().collect();
        listed.sort_unstable();
        expect.sort_unstable();
        assert_eq!(listed, expect, "seed {seed}");
    }
}

#[test]
fn bitset_union_matches_model() {
    for seed in 0..50 {
        let mut rng = Rng::seed_from_u64(1_000 + seed);
        let a: HashSet<usize> = (0..rng.gen_range(0..60)).map(|_| rng.gen_range(0..128)).collect();
        let b: HashSet<usize> = (0..rng.gen_range(0..60)).map(|_| rng.gen_range(0..128)).collect();
        let mut ba = BitSet::new(128);
        let mut bb = BitSet::new(128);
        for &i in &a {
            ba.insert(i);
        }
        for &i in &b {
            bb.insert(i);
        }
        let should_change = !b.is_subset(&a);
        let changed = ba.union_with(&bb);
        assert_eq!(changed, should_change, "seed {seed}");
        let union: HashSet<usize> = a.union(&b).copied().collect();
        for i in 0..128 {
            assert_eq!(ba.contains(i), union.contains(&i), "seed {seed} bit {i}");
        }
    }
}

#[test]
fn crc_incremental_equals_oneshot() {
    for seed in 0..100 {
        let mut rng = Rng::seed_from_u64(2_000 + seed);
        let len = rng.gen_range(0..512);
        let data = bytes(&mut rng, len);
        let split = if data.is_empty() { 0 } else { rng.gen_range(0..data.len() + 1) };
        let mut h = Crc32::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finish(), crc32(&data), "seed {seed} split {split}");
    }
}

#[test]
fn crc_detects_single_byte_changes() {
    for seed in 0..100 {
        let mut rng = Rng::seed_from_u64(3_000 + seed);
        let len = 1 + rng.gen_range(0..255);
        let data = bytes(&mut rng, len);
        let pos = rng.gen_range(0..data.len());
        let delta = 1 + rng.gen_range(0..255) as u8;
        let mut tweaked = data.clone();
        tweaked[pos] = tweaked[pos].wrapping_add(delta);
        assert_ne!(crc32(&data), crc32(&tweaked), "seed {seed} pos {pos} delta {delta}");
    }
}

#[test]
fn crc_detects_adjacent_swaps() {
    let mut checked = 0;
    for seed in 0..200 {
        let mut rng = Rng::seed_from_u64(4_000 + seed);
        let len = 2 + rng.gen_range(0..254);
        let data = bytes(&mut rng, len);
        let pos = rng.gen_range(0..data.len() - 1);
        if data[pos] == data[pos + 1] {
            continue;
        }
        checked += 1;
        let mut swapped = data.clone();
        swapped.swap(pos, pos + 1);
        // The order-sensitivity the paper relies on.
        assert_ne!(crc32(&data), crc32(&swapped), "seed {seed} pos {pos}");
    }
    assert!(checked > 100, "generator degenerated: only {checked} usable cases");
}
