//! Natural-loop detection via back edges in the dominator tree.
//!
//! Loop structure drives the paper's `Loop` statistic (Table 3) and the
//! loop-oriented phases: unrolling (`g`), loop transformations (`l`), and
//! minimize loop jumps (`j`).

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::dom::Dominators;

/// A natural loop: the header block plus every block that can reach the
/// back edge without passing through the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Header block index (the target of the back edge).
    pub header: usize,
    /// Source blocks of back edges into `header` that belong to this loop.
    pub latches: Vec<usize>,
    /// All member block indices, including the header, ascending.
    pub body: Vec<usize>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: usize,
}

impl NaturalLoop {
    /// Whether the loop contains block `b`.
    pub fn contains(&self, b: usize) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// Finds all natural loops of the function's CFG. Back edges with the same
/// header are merged into a single loop, following the usual convention.
/// Loops are returned ordered by descending depth (innermost first), which
/// is the application order the paper prescribes for loop transformations.
pub fn find_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let dom = Dominators::compute(cfg);
    let reachable = cfg.reachable();
    // Collect back edges grouped by header.
    let mut by_header: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (b, reached) in reachable.iter().enumerate() {
        if !reached {
            continue;
        }
        for &s in &cfg.succs[b] {
            if dom.dominates(s, b) {
                by_header.entry(s).or_default().push(b);
            }
        }
    }
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for (header, latches) in by_header {
        let mut body: BTreeSet<usize> = BTreeSet::new();
        body.insert(header);
        let mut stack: Vec<usize> = Vec::new();
        for &l in &latches {
            // Seed the body walk from every latch except a self-looping
            // header (whose predecessors are explored like anyone else's).
            body.insert(l);
            if l != header {
                stack.push(l);
            }
        }
        while let Some(b) = stack.pop() {
            if b == header {
                continue;
            }
            for &p in &cfg.preds[b] {
                if reachable[p] && body.insert(p) {
                    stack.push(p);
                }
            }
        }
        loops.push(NaturalLoop { header, latches, body: body.into_iter().collect(), depth: 0 });
    }
    // Nesting depth: a loop's depth is 1 + number of other loops strictly
    // containing its header and body.
    let snapshots: Vec<(usize, Vec<usize>)> =
        loops.iter().map(|l| (l.header, l.body.clone())).collect();
    for l in &mut loops {
        let mut depth = 1;
        for (h, body) in &snapshots {
            if *h != l.header
                && body.binary_search(&l.header).is_ok()
                && l.body.iter().all(|b| body.binary_search(b).is_ok())
            {
                depth += 1;
            }
        }
        l.depth = depth;
    }
    loops.sort_by(|a, b| b.depth.cmp(&a.depth).then(a.header.cmp(&b.header)));
    loops
}

/// The number of loops in a function (the paper's `Loop` column).
pub fn loop_count(cfg: &Cfg) -> usize {
    find_loops(cfg).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::expr::{BinOp, Cond, Expr};
    use crate::function::Function;

    fn nested_loops() -> Function {
        // for i { for j { } }
        let mut b = FunctionBuilder::new("n");
        let i = b.reg();
        let j = b.reg();
        let outer = b.new_label();
        let inner = b.new_label();
        let inner_exit = b.new_label();
        let exit = b.new_label();
        b.assign(i, Expr::Const(0));
        b.start_block(outer);
        b.compare(Expr::Reg(i), Expr::Const(10));
        b.cond_branch(Cond::Ge, exit);
        b.assign(j, Expr::Const(0));
        b.start_block(inner);
        b.compare(Expr::Reg(j), Expr::Const(10));
        b.cond_branch(Cond::Ge, inner_exit);
        b.assign(j, Expr::bin(BinOp::Add, Expr::Reg(j), Expr::Const(1)));
        b.jump(inner);
        b.start_block(inner_exit);
        b.assign(i, Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)));
        b.jump(outer);
        b.start_block(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn finds_nested_loops_with_depths() {
        let f = nested_loops();
        let cfg = Cfg::build(&f);
        let loops = find_loops(&cfg);
        assert_eq!(loops.len(), 2);
        // Innermost first.
        assert_eq!(loops[0].depth, 2);
        assert_eq!(loops[1].depth, 1);
        // Inner loop body is contained in outer loop body.
        for b in &loops[0].body {
            assert!(loops[1].contains(*b));
        }
        assert_eq!(loop_count(&cfg), 2);
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut b = FunctionBuilder::new("s");
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        assert!(find_loops(&cfg).is_empty());
    }

    #[test]
    fn self_loop_is_detected() {
        let mut b = FunctionBuilder::new("s");
        let x = b.param();
        let l = b.new_label();
        b.start_block(l);
        b.assign(x, Expr::bin(BinOp::Sub, Expr::Reg(x), Expr::Const(1)));
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Gt, l);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let loops = find_loops(&cfg);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].body.len(), 1);
        assert_eq!(loops[0].latches, vec![loops[0].header]);
    }
}
