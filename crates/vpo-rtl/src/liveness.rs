//! Backward liveness dataflow over registers, the condition code, and
//! register-allocatable local slots.
//!
//! A single *universe* of trackable items is built per function so one
//! analysis serves dead-assignment elimination (`h`), register allocation
//! (`k`), code motion legality checks, and the evaluation-order phase (`o`).

use std::collections::HashMap;

use crate::cfg::Cfg;
use crate::expr::Expr;
use crate::function::{Function, LocalId};
use crate::inst::Inst;
use crate::Reg;

/// A dataflow item: a register, the condition code, or a local slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Item {
    /// A machine register (pseudo or hard).
    Reg(Reg),
    /// The condition code `IC` written by compares, read by branches.
    Cc,
    /// A local stack slot, tracked only when its accesses are all direct
    /// (see [`Function::allocatable_locals`]).
    Local(LocalId),
}

/// A fixed-universe bit set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set over a universe of `n` items.
    pub fn new(n: usize) -> Self {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    /// Inserts bit `i`; returns whether the set changed.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Removes bit `i`.
    pub fn remove(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        self.words[w] &= !(1 << b);
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        (self.words[w] >> b) & 1 == 1
    }

    /// Unions `other` into `self`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over set bit indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter(move |b| (w >> b) & 1 == 1).map(move |b| wi * 64 + b)
        })
    }
}

/// Result of the liveness analysis.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Item universe in index order.
    pub universe: Vec<Item>,
    index: HashMap<Item, usize>,
    /// Per-block live-in sets.
    pub live_in: Vec<BitSet>,
    /// Per-block live-out sets.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Runs the analysis on `f` with the given CFG.
    ///
    /// The universe contains every register mentioned in the function, the
    /// condition code, and every *allocatable* local (others are treated as
    /// memory, invisible to this analysis).
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let mut universe: Vec<Item> = Vec::new();
        let mut index: HashMap<Item, usize> = HashMap::new();
        let add = |it: Item, universe: &mut Vec<Item>, index: &mut HashMap<Item, usize>| {
            if let std::collections::hash_map::Entry::Vacant(e) = index.entry(it) {
                e.insert(universe.len());
                universe.push(it);
            }
        };
        for r in f.all_regs() {
            add(Item::Reg(r), &mut universe, &mut index);
        }
        for &p in &f.params {
            add(Item::Reg(p), &mut universe, &mut index);
        }
        add(Item::Cc, &mut universe, &mut index);
        for l in f.allocatable_locals() {
            add(Item::Local(l), &mut universe, &mut index);
        }
        let n = universe.len();
        let nb = f.blocks.len();
        let mut live_in = vec![BitSet::new(n); nb];
        let mut live_out = vec![BitSet::new(n); nb];

        // Precompute per-block gen/kill. The two visitor passes per
        // instruction replace the old uses/defs Vec pair, so this loop
        // performs no per-instruction allocation.
        let mut gen = vec![BitSet::new(n); nb];
        let mut kill = vec![BitSet::new(n); nb];
        for (bi, b) in f.blocks.iter().enumerate() {
            let (gen_b, kill_b) = (&mut gen[bi], &mut kill[bi]);
            for inst in &b.insts {
                visit_inst_uses(inst, &index, &mut |u| {
                    if !kill_b.contains(u) {
                        gen_b.insert(u);
                    }
                });
                visit_inst_defs(inst, &index, &mut |d| {
                    kill_b.insert(d);
                });
            }
        }

        // Iterate to fixpoint, backward; the two scratch sets are reused
        // across blocks and iterations.
        let mut out = BitSet::new(n);
        let mut inn = BitSet::new(n);
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..nb).rev() {
                out.clear();
                for &s in &cfg.succs[bi] {
                    out.union_with(&live_in[s]);
                }
                if out != live_out[bi] {
                    live_out[bi].clone_from(&out);
                }
                inn.clone_from(&live_out[bi]);
                for k in kill[bi].iter() {
                    inn.remove(k);
                }
                inn.union_with(&gen[bi]);
                if inn != live_in[bi] {
                    live_in[bi].clone_from(&inn);
                    changed = true;
                }
            }
        }
        Liveness { universe, index, live_in, live_out }
    }

    /// Index of an item in the universe, if tracked.
    pub fn index_of(&self, it: Item) -> Option<usize> {
        self.index.get(&it).copied()
    }

    /// Walks block `bi` of `f` backwards, yielding for each instruction the
    /// set of items live *after* it executes. The callback receives
    /// `(inst_index, &inst, live_after)`.
    pub fn for_each_inst_backward<F>(&self, f: &Function, bi: usize, mut cb: F)
    where
        F: FnMut(usize, &Inst, &BitSet),
    {
        let mut live = self.live_out[bi].clone();
        for (ii, inst) in f.blocks[bi].insts.iter().enumerate().rev() {
            cb(ii, inst, &live);
            visit_inst_defs(inst, &self.index, &mut |d| live.remove(d));
            visit_inst_uses(inst, &self.index, &mut |u| {
                live.insert(u);
            });
        }
    }

    /// Computes, for block `bi`, the live-after set at each instruction
    /// position (index `i` holds the set live after `insts[i]`).
    pub fn live_after_sets(&self, f: &Function, bi: usize) -> Vec<BitSet> {
        let nb = f.blocks[bi].insts.len();
        let mut out = vec![BitSet::new(self.universe.len()); nb];
        self.for_each_inst_backward(f, bi, |ii, _inst, live| {
            out[ii] = live.clone();
        });
        out
    }
}

/// Calls `cb` with the universe index of every item this instruction
/// *reads*: register occurrences, direct local loads, and the condition
/// code. Items not in the universe are ignored; repeated reads are
/// reported repeatedly. Allocation-free.
pub fn visit_inst_uses(inst: &Inst, index: &HashMap<Item, usize>, cb: &mut impl FnMut(usize)) {
    inst.visit_exprs(&mut |e| {
        e.visit(&mut |sub| match sub {
            Expr::Reg(r) => {
                if let Some(&i) = index.get(&Item::Reg(*r)) {
                    cb(i);
                }
            }
            Expr::Load(_, a) => {
                if let Expr::LocalAddr(id) = &**a {
                    if let Some(&i) = index.get(&Item::Local(*id)) {
                        cb(i);
                    }
                }
            }
            _ => {}
        });
    });
    if inst.uses_cc() {
        if let Some(&i) = index.get(&Item::Cc) {
            cb(i);
        }
    }
}

/// Calls `cb` with the universe index of every item this instruction
/// *defines*: the destination register, the condition code, and direct
/// local stores. Allocation-free.
pub fn visit_inst_defs(inst: &Inst, index: &HashMap<Item, usize>, cb: &mut impl FnMut(usize)) {
    if let Some(d) = inst.def() {
        if let Some(&i) = index.get(&Item::Reg(d)) {
            cb(i);
        }
    }
    if inst.defs_cc() {
        if let Some(&i) = index.get(&Item::Cc) {
            cb(i);
        }
    }
    if let Inst::Store { addr: Expr::LocalAddr(id), .. } = inst {
        if let Some(&i) = index.get(&Item::Local(*id)) {
            cb(i);
        }
    }
}

/// Extracts the (uses, defs) item indices of one instruction. Items not in
/// the universe (e.g. non-allocatable locals) are ignored. Prefer the
/// allocation-free [`visit_inst_uses`]/[`visit_inst_defs`] pair in hot
/// paths.
pub fn inst_uses_defs(inst: &Inst, index: &HashMap<Item, usize>) -> (Vec<usize>, Vec<usize>) {
    let mut uses = Vec::new();
    let mut defs = Vec::new();
    visit_inst_uses(inst, index, &mut |u| uses.push(u));
    visit_inst_defs(inst, index, &mut |d| defs.push(d));
    (uses, defs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::expr::{BinOp, Cond, Width};

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert_eq!(s.count(), 3);
        assert!(s.contains(64));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn loop_variable_is_live_around_backedge() {
        let mut b = FunctionBuilder::new("l");
        let i = b.reg();
        let body = b.new_label();
        b.assign(i, Expr::Const(0));
        b.start_block(body);
        b.assign(i, Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)));
        b.compare(Expr::Reg(i), Expr::Const(10));
        b.cond_branch(Cond::Lt, body);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let bi = cfg.index_of[&body];
        let ri = lv.index_of(Item::Reg(i)).unwrap();
        assert!(lv.live_in[bi].contains(ri));
        assert!(lv.live_out[bi].contains(ri));
        // CC is not live across the back edge (defined before use in-block).
        let cc = lv.index_of(Item::Cc).unwrap();
        assert!(!lv.live_in[bi].contains(cc));
    }

    #[test]
    fn dead_def_is_not_live() {
        let mut b = FunctionBuilder::new("d");
        let x = b.reg();
        let y = b.reg();
        b.assign(x, Expr::Const(1));
        b.assign(y, Expr::Const(2));
        b.ret(Some(Expr::Reg(y)));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let after = lv.live_after_sets(&f, 0);
        let xi = lv.index_of(Item::Reg(x)).unwrap();
        let yi = lv.index_of(Item::Reg(y)).unwrap();
        // After inst 0 (x=1): x is dead (never used), y not yet defined.
        assert!(!after[0].contains(xi));
        // After inst 1 (y=2): y is live (used by return).
        assert!(after[1].contains(yi));
    }

    #[test]
    fn local_slot_liveness() {
        let mut b = FunctionBuilder::new("s");
        let v = b.local("v", 4);
        let r = b.reg();
        let out = b.reg();
        b.store(Width::Word, Expr::LocalAddr(v), Expr::Const(3));
        b.assign(r, Expr::load(Width::Word, Expr::LocalAddr(v)));
        b.assign(out, Expr::bin(BinOp::Add, Expr::Reg(r), Expr::Const(1)));
        b.ret(Some(Expr::Reg(out)));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let li = lv.index_of(Item::Local(v)).expect("local tracked");
        let after = lv.live_after_sets(&f, 0);
        // Live between the store and the load.
        assert!(after[0].contains(li));
        assert!(!after[1].contains(li));
    }
}
