//! Canonical form and fingerprinting of function instances
//! (Section 4.2.1 of the paper).
//!
//! Two function instances produced by different phase orderings may differ
//! only in register numbers or block labels (Figure 5 of the paper). To
//! detect them as identical, the function is scanned from the top basic
//! block; each register and each label is remapped to a fresh ordinal at
//! its first encounter. The canonical byte serialization over the remapped
//! ids is then summarized by three values — instruction count, byte sum,
//! and CRC-32 — forming a [`Fingerprint`].
//!
//! The register *class* (pseudo vs. hard) is preserved in the byte stream,
//! so code before and after register assignment never collides. This
//! remapping is deliberately more naive than live-range remapping, exactly
//! as the paper prescribes (live-range remapping at intermediate points
//! would be unsafe because it changes register pressure).

use crate::expr::Expr;
use crate::function::{Function, Label};
use crate::inst::Inst;
use crate::{crc, Reg, RegClass};
use std::collections::HashMap;

/// The three-part function-instance fingerprint of the paper: a count of
/// instructions, a byte-sum of the canonical serialization, and its CRC-32
/// checksum.
///
/// The paper verified that using all three checks in combination makes it
/// "extremely rare" for distinct instances to collide; this crate's tests
/// additionally verify no collisions occur across entire enumerations by
/// structural comparison in paranoid mode.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fingerprint {
    /// Number of instructions.
    pub inst_count: u32,
    /// Sum of all bytes of the canonical serialization.
    pub byte_sum: u64,
    /// CRC-32 of the canonical serialization.
    pub crc: u32,
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}i/{:016x}/{:08x}", self.inst_count, self.byte_sum, self.crc)
    }
}

/// A reusable canonicalization workspace.
///
/// The free functions [`canonical_bytes`] / [`fingerprint`] allocate fresh
/// register/label maps and a fresh byte buffer on every call. Hot callers —
/// the enumerator fingerprints every active attempt — instead keep one
/// `Canonicalizer` per worker and call [`fingerprint_into`] /
/// [`canonical_bytes_into`], which clear and reuse the maps and buffer so
/// the steady state allocates nothing.
///
/// [`fingerprint_into`]: Canonicalizer::fingerprint_into
/// [`canonical_bytes_into`]: Canonicalizer::canonical_bytes_into
pub struct Canonicalizer {
    regs: HashMap<Reg, u32>,
    labels: HashMap<Label, u32>,
    bytes: Vec<u8>,
    insts: u32,
}

impl Default for Canonicalizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Canonicalizer {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Canonicalizer {
            regs: HashMap::new(),
            labels: HashMap::new(),
            bytes: Vec::with_capacity(512),
            insts: 0,
        }
    }

    /// Clears the remapping state and byte buffer, retaining capacity.
    pub fn reset(&mut self) {
        self.regs.clear();
        self.labels.clear();
        self.bytes.clear();
        self.insts = 0;
    }

    /// Serializes `f` into the internal buffer (after a [`reset`]) and
    /// returns the canonical bytes. Identical output to the free function
    /// [`canonical_bytes`], without its allocations.
    ///
    /// [`reset`]: Canonicalizer::reset
    pub fn canonical_bytes_into(&mut self, f: &Function) -> &[u8] {
        self.reset();
        self.write(f);
        &self.bytes
    }

    /// Computes the [`Fingerprint`] of `f`, reusing the workspace. The
    /// canonical bytes remain available through [`bytes`] until the next
    /// call — paranoid mode copies them out only for newly-discovered
    /// instances.
    ///
    /// [`bytes`]: Canonicalizer::bytes
    pub fn fingerprint_into(&mut self, f: &Function) -> Fingerprint {
        self.reset();
        self.write(f);
        let byte_sum: u64 = self.bytes.iter().map(|&b| b as u64).sum();
        Fingerprint { inst_count: self.insts, byte_sum, crc: crc::crc32(&self.bytes) }
    }

    /// The canonical bytes produced by the most recent serialization.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The full canonical serialization of `f`; shared by the `_into`
    /// methods and the allocating free functions.
    fn write(&mut self, f: &Function) {
        // Parameters participate in remapping first so the calling
        // convention is part of the canonical form.
        for &p in &f.params {
            self.reg(p);
        }
        for b in &f.blocks {
            // Every block boundary is marked and its label registered, so
            // that identical instruction streams split into different blocks
            // remain distinguishable only when control flow actually
            // differs.
            self.bytes.push(0xF0);
            self.label(b.label);
            for i in &b.insts {
                self.inst(i);
            }
        }
        // Flag milestones so that legality-relevant state is part of
        // identity.
        self.bytes.push(0xF1);
        self.bytes.push(f.flags.regs_assigned as u8);
        self.bytes.push(f.flags.reg_allocated as u8);
    }

    fn reg(&mut self, r: Reg) {
        let next = self.regs.len() as u32;
        let id = *self.regs.entry(r).or_insert(next);
        self.bytes.push(match r.class {
            RegClass::Pseudo => 0x01,
            RegClass::Hard => 0x02,
        });
        self.varint(id as u64);
    }

    fn label(&mut self, l: Label) {
        let next = self.labels.len() as u32;
        let id = *self.labels.entry(l).or_insert(next);
        self.bytes.push(0x03);
        self.varint(id as u64);
    }

    fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.bytes.push(b);
                break;
            }
            self.bytes.push(b | 0x80);
        }
    }

    fn signed(&mut self, v: i64) {
        // ZigZag encoding.
        self.varint(((v << 1) ^ (v >> 63)) as u64)
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Reg(r) => self.reg(*r),
            Expr::Const(c) => {
                self.bytes.push(0x10);
                self.signed(*c);
            }
            Expr::Hi(s) => {
                self.bytes.push(0x11);
                self.varint(s.0 as u64);
            }
            Expr::Lo(s) => {
                self.bytes.push(0x12);
                self.varint(s.0 as u64);
            }
            Expr::LocalAddr(l) => {
                self.bytes.push(0x13);
                self.varint(l.0 as u64);
            }
            Expr::Bin(op, a, b) => {
                self.bytes.push(0x20);
                self.bytes.push(*op as u8);
                self.expr(a);
                self.expr(b);
            }
            Expr::Un(op, a) => {
                self.bytes.push(0x21);
                self.bytes.push(*op as u8);
                self.expr(a);
            }
            Expr::Load(w, a) => {
                self.bytes.push(0x22);
                self.bytes.push(*w as u8);
                self.expr(a);
            }
        }
    }

    fn inst(&mut self, i: &Inst) {
        self.insts += 1;
        match i {
            Inst::Assign { dst, src } => {
                self.bytes.push(0x40);
                self.reg(*dst);
                self.expr(src);
            }
            Inst::Store { width, addr, src } => {
                self.bytes.push(0x41);
                self.bytes.push(*width as u8);
                self.expr(addr);
                self.expr(src);
            }
            Inst::Compare { lhs, rhs } => {
                self.bytes.push(0x42);
                self.expr(lhs);
                self.expr(rhs);
            }
            Inst::CondBranch { cond, target } => {
                self.bytes.push(0x43);
                self.bytes.push(*cond as u8);
                self.label(*target);
            }
            Inst::Jump { target } => {
                self.bytes.push(0x44);
                self.label(*target);
            }
            Inst::Call { callee, args, dst } => {
                self.bytes.push(0x45);
                self.varint(callee.len() as u64);
                self.bytes.extend_from_slice(callee.as_bytes());
                self.varint(args.len() as u64);
                for a in args {
                    self.expr(a);
                }
                match dst {
                    Some(d) => {
                        self.bytes.push(1);
                        self.reg(*d);
                    }
                    None => self.bytes.push(0),
                }
            }
            Inst::Return { value } => {
                self.bytes.push(0x46);
                match value {
                    Some(v) => {
                        self.bytes.push(1);
                        self.expr(v);
                    }
                    None => self.bytes.push(0),
                }
            }
        }
    }
}

/// Serializes `f` into its canonical byte form: blocks in layout order,
/// registers and labels remapped at first encounter from the top block
/// (Figure 5(d) of the paper).
pub fn canonical_bytes(f: &Function) -> Vec<u8> {
    let mut c = Canonicalizer::new();
    c.write(f);
    c.bytes
}

/// Computes the three-part [`Fingerprint`] of a function instance.
pub fn fingerprint(f: &Function) -> Fingerprint {
    Canonicalizer::new().fingerprint_into(f)
}

/// Structural equality *after* canonical remapping: true iff the two
/// functions serialize to identical canonical bytes. Used by paranoid
/// enumeration mode to prove the absence of fingerprint collisions.
pub fn canonically_equal(a: &Function, b: &Function) -> bool {
    canonical_bytes(a) == canonical_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::expr::{BinOp, Cond, Width};

    /// Builds the Figure 5 loop with a configurable register numbering,
    /// mimicking "register allocation before code motion" vs. "code motion
    /// before register allocation".
    fn figure5(regs: [u16; 5], label_seed: u32) -> Function {
        let mut b = FunctionBuilder::new("sum");
        let a = b.global("a");
        // Consume some label numbers to shift the loop label, like L3 vs L5.
        for _ in 0..label_seed {
            let _ = b.new_label();
        }
        let [sum, base, ptr, bound, tmp] = regs.map(Reg::hard);
        let l = b.new_label();
        b.assign(sum, Expr::Const(0));
        b.assign(base, Expr::Hi(a));
        b.assign(base, Expr::bin(BinOp::Add, Expr::Reg(base), Expr::Lo(a)));
        b.assign(ptr, Expr::Reg(base));
        b.assign(bound, Expr::bin(BinOp::Add, Expr::Const(4000), Expr::Reg(base)));
        b.start_block(l);
        b.assign(tmp, Expr::load(Width::Word, Expr::Reg(ptr)));
        b.assign(sum, Expr::bin(BinOp::Add, Expr::Reg(sum), Expr::Reg(tmp)));
        b.assign(ptr, Expr::bin(BinOp::Add, Expr::Reg(ptr), Expr::Const(4)));
        b.compare(Expr::Reg(ptr), Expr::Reg(bound));
        b.cond_branch(Cond::Lt, l);
        b.ret(Some(Expr::Reg(sum)));
        let mut f = b.finish();
        f.flags.regs_assigned = true;
        f
    }

    #[test]
    fn figure5_renamings_are_identical_after_remapping() {
        // Figure 5(b): r10, r12, r1, r9, r8 / L3.
        let fb = figure5([10, 12, 1, 9, 8], 2);
        // Figure 5(c): r11, r10, r1, r9, r8 / L5.
        let fc = figure5([11, 10, 1, 9, 8], 4);
        assert_ne!(fb, fc, "functions differ textually");
        assert_eq!(fingerprint(&fb), fingerprint(&fc));
        assert!(canonically_equal(&fb, &fc));
    }

    #[test]
    fn different_code_fingerprints_differently() {
        let f1 = figure5([10, 12, 1, 9, 8], 0);
        let mut f2 = figure5([10, 12, 1, 9, 8], 0);
        // Change one constant.
        if let Inst::Assign { src, .. } = &mut f2.blocks[0].insts[0] {
            *src = Expr::Const(1);
        }
        assert_ne!(fingerprint(&f1), fingerprint(&f2));
    }

    #[test]
    fn reordered_instructions_fingerprint_differently() {
        // The CRC property: same bytes, different order → different CRC.
        let mut b1 = FunctionBuilder::new("x");
        let r1 = b1.reg();
        let r2 = b1.reg();
        b1.assign(r1, Expr::Const(1));
        b1.assign(r2, Expr::Const(2));
        b1.ret(None);
        let f1 = b1.finish();

        let mut b2 = FunctionBuilder::new("x");
        let r1 = b2.reg();
        let r2 = b2.reg();
        b2.assign(r2, Expr::Const(2));
        b2.assign(r1, Expr::Const(1));
        b2.ret(None);
        let f2 = b2.finish();

        // Remapping renames registers by first encounter, but the constant
        // operands still appear in a different order, so these are distinct
        // function instances — canonicalization must NOT confuse reordered
        // code (the CRC order-sensitivity property from the paper).
        assert_ne!(fingerprint(&f1), fingerprint(&f2));

        // But genuinely order-sensitive cases (same register) differ:
        let mut b3 = FunctionBuilder::new("x");
        let r = b3.reg();
        b3.assign(r, Expr::Const(1));
        b3.assign(r, Expr::Const(2));
        b3.ret(None);
        let f3 = b3.finish();
        let mut b4 = FunctionBuilder::new("x");
        let r = b4.reg();
        b4.assign(r, Expr::Const(2));
        b4.assign(r, Expr::Const(1));
        b4.ret(None);
        let f4 = b4.finish();
        assert_ne!(fingerprint(&f3), fingerprint(&f4));
    }

    #[test]
    fn flags_distinguish_instances() {
        let f1 = figure5([1, 2, 3, 4, 5], 0);
        let mut f2 = f1.clone();
        f2.flags.reg_allocated = true;
        assert_ne!(fingerprint(&f1), fingerprint(&f2));
    }

    #[test]
    fn pseudo_and_hard_classes_never_collide() {
        let mut b1 = FunctionBuilder::new("x");
        let t = b1.reg(); // pseudo
        b1.assign(t, Expr::Const(5));
        b1.ret(Some(Expr::Reg(t)));
        let f1 = b1.finish();

        let mut f2 = Function::new("x");
        let h = Reg::hard(0);
        f2.blocks[0].insts = vec![
            Inst::Assign { dst: h, src: Expr::Const(5) },
            Inst::Return { value: Some(Expr::Reg(h)) },
        ];
        assert_ne!(fingerprint(&f1), fingerprint(&f2));
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let f = figure5([10, 12, 1, 9, 8], 2);
        assert_eq!(canonical_bytes(&f), canonical_bytes(&f));
    }

    #[test]
    fn reused_canonicalizer_matches_free_functions() {
        // One workspace over several distinct functions, interleaved, must
        // produce exactly the bytes and fingerprints of the allocating free
        // functions — stale remapping state leaking across calls would
        // corrupt both.
        let funcs = [
            figure5([10, 12, 1, 9, 8], 2),
            figure5([11, 10, 1, 9, 8], 4),
            figure5([1, 2, 3, 4, 5], 0),
        ];
        let mut c = Canonicalizer::new();
        for _round in 0..2 {
            for f in &funcs {
                assert_eq!(c.fingerprint_into(f), fingerprint(f));
                assert_eq!(c.bytes(), canonical_bytes(f).as_slice());
                assert_eq!(c.canonical_bytes_into(f), canonical_bytes(f).as_slice());
            }
        }
    }
}
