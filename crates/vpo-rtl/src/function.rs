//! Functions, basic blocks, local slots, and whole programs.

use crate::expr::{Expr, SymId, Width};
use crate::inst::Inst;
use crate::{Reg, RegClass};

/// A basic-block label. Labels are unique within a function and are
/// remapped during canonicalization, so their numeric values carry no
/// meaning across function instances.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Label(pub u32);

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifies a local stack slot within a [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LocalId(pub u32);

impl std::fmt::Display for LocalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// A local variable allocated in the activation record.
///
/// Scalar locals (`size == 4`) whose address is never *taken* (used outside
/// a direct load or store) are candidates for the register-allocation phase
/// `k`, which replaces their memory references with a register.
#[derive(PartialEq, Eq, Hash, Debug)]
pub struct LocalSlot {
    /// Source-level name (for diagnostics and pretty printing).
    pub name: String,
    /// Slot size in bytes; 4 for scalars, larger for arrays.
    pub size: u32,
    /// Whether the address escapes (passed to a call, stored, or used in
    /// non-trivial arithmetic). Escaping slots are never register-allocated.
    pub addr_taken: bool,
}

/// Hand-written so `clone_from` reuses the name `String`'s allocation —
/// part of the allocation-free [`Function::copy_from`] path.
impl Clone for LocalSlot {
    fn clone(&self) -> LocalSlot {
        LocalSlot { name: self.name.clone(), size: self.size, addr_taken: self.addr_taken }
    }

    fn clone_from(&mut self, source: &LocalSlot) {
        self.name.clone_from(&source.name);
        self.size = source.size;
        self.addr_taken = source.addr_taken;
    }
}

impl LocalSlot {
    /// Whether the slot is a scalar word.
    pub fn is_scalar(&self) -> bool {
        self.size == 4
    }
}

/// A basic block: a label plus a straight-line instruction list.
///
/// Control transfers are *explicit instructions* (they occupy space and are
/// counted in code size, exactly as in the paper). A block whose last
/// instruction is not a barrier falls through to the next positional block.
#[derive(PartialEq, Eq, Hash, Debug)]
pub struct Block {
    /// The block's label.
    pub label: Label,
    /// The instructions of the block.
    pub insts: Vec<Inst>,
}

/// Hand-written so `clone_from` clones element-wise into the existing
/// instruction `Vec`, letting [`Inst`]'s own `clone_from` reuse operand
/// allocations — part of the allocation-free [`Function::copy_from`] path.
impl Clone for Block {
    fn clone(&self) -> Block {
        Block { label: self.label, insts: self.insts.clone() }
    }

    fn clone_from(&mut self, source: &Block) {
        self.label = source.label;
        self.insts.clone_from(&source.insts);
    }
}

impl Block {
    /// Creates an empty block with the given label.
    pub fn new(label: Label) -> Self {
        Block { label, insts: Vec::new() }
    }

    /// Whether execution can fall through past the end of this block.
    pub fn falls_through(&self) -> bool {
        match self.insts.last() {
            Some(i) => !i.is_barrier(),
            None => true,
        }
    }

    /// The block's sole instruction if it consists of exactly one
    /// unconditional jump — the shape consumed by branch chaining.
    pub fn as_trivial_jump(&self) -> Option<Label> {
        match self.insts.as_slice() {
            [Inst::Jump { target }] => Some(*target),
            _ => None,
        }
    }
}

/// Per-function phase-ordering flags.
///
/// These record which compulsory/one-way milestones have happened, which
/// the legality rules of Section 3 of the paper depend on:
///
/// * *evaluation order determination* (`o`) is legal only while
///   `regs_assigned` is false;
/// * *loop unrolling* (`g`) and *loop transformations* (`l`) are legal only
///   once `reg_allocated` is true.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FuncFlags {
    /// The compulsory register-assignment phase has run (pseudo registers
    /// were mapped to hard registers).
    pub regs_assigned: bool,
    /// The register-allocation phase `k` has been active at least once.
    pub reg_allocated: bool,
}

/// A function in RTL form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Function name (unique within a [`Program`]).
    pub name: String,
    /// Registers holding the incoming arguments, in order. Updated by
    /// register assignment when pseudos are renamed.
    pub params: Vec<Reg>,
    /// Basic blocks in layout order; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
    /// Local stack slots.
    pub locals: Vec<LocalSlot>,
    /// Phase-ordering flags (see [`FuncFlags`]).
    pub flags: FuncFlags,
    next_pseudo: u16,
    next_label: u32,
}

/// A placeholder with *no* blocks — not a valid function (every real
/// function has an entry block). It exists so buffers of `Function` can be
/// `std::mem::take`n or pre-created without allocating; fill it with
/// [`Function::copy_from`] before use.
impl Default for Function {
    fn default() -> Function {
        Function {
            name: String::new(),
            params: Vec::new(),
            blocks: Vec::new(),
            locals: Vec::new(),
            flags: FuncFlags::default(),
            next_pseudo: 0,
            next_label: 0,
        }
    }
}

impl Function {
    /// Creates an empty function with a single empty entry block.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            blocks: vec![Block::new(Label(0))],
            locals: Vec::new(),
            flags: FuncFlags::default(),
            next_pseudo: 0,
            next_label: 1,
        }
    }

    /// Allocates a fresh pseudo register.
    ///
    /// # Panics
    ///
    /// Panics if called after register assignment; new temporaries at that
    /// point must be hard registers chosen by the phase that needs them.
    pub fn new_pseudo(&mut self) -> Reg {
        assert!(
            !self.flags.regs_assigned,
            "cannot create pseudo registers after register assignment"
        );
        let r = Reg::pseudo(self.next_pseudo);
        self.next_pseudo += 1;
        r
    }

    /// Number of pseudo registers ever created.
    pub fn pseudo_count(&self) -> u16 {
        self.next_pseudo
    }

    /// Allocates a fresh label (does not create a block).
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Allocates a fresh local slot and returns its id.
    pub fn new_local(&mut self, name: impl Into<String>, size: u32) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(LocalSlot { name: name.into(), size, addr_taken: false });
        id
    }

    /// Makes `self` an exact copy of `src` while reusing `self`'s existing
    /// heap allocations (block/instruction/local vectors, strings, operand
    /// boxes) wherever the shapes line up.
    ///
    /// Semantically identical to `*self = src.clone()`; the point is the
    /// allocation profile: when `self` already holds a similar function —
    /// the enumerator's scratch buffer restoring a parent between phase
    /// attempts — the steady state performs no heap allocation at all.
    pub fn copy_from(&mut self, src: &Function) {
        self.name.clone_from(&src.name);
        self.params.clear();
        self.params.extend_from_slice(&src.params);
        self.blocks.clone_from(&src.blocks);
        self.locals.clone_from(&src.locals);
        self.flags = src.flags;
        self.next_pseudo = src.next_pseudo;
        self.next_label = src.next_label;
    }

    /// Total number of instructions (the paper's static code-size measure).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Number of conditional and unconditional transfers of control
    /// (the paper's `Brch` column).
    pub fn branch_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| matches!(i, Inst::CondBranch { .. } | Inst::Jump { .. }))
            .count()
    }

    /// Index of the block with the given label.
    pub fn block_index(&self, label: Label) -> Option<usize> {
        self.blocks.iter().position(|b| b.label == label)
    }

    /// Borrow the block with the given label.
    ///
    /// # Panics
    ///
    /// Panics if no block carries `label`.
    pub fn block(&self, label: Label) -> &Block {
        &self.blocks[self.block_index(label).expect("unknown label")]
    }

    /// Iterate over `(block_index, inst_index, inst)` for all instructions.
    pub fn iter_insts(&self) -> impl Iterator<Item = (usize, usize, &Inst)> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| b.insts.iter().enumerate().map(move |(ii, i)| (bi, ii, i)))
    }

    /// Returns every register mentioned anywhere in the function
    /// (definitions and uses), deduplicated, in encounter order.
    pub fn all_regs(&self) -> Vec<Reg> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for b in &self.blocks {
            for i in &b.insts {
                if let Some(d) = i.def() {
                    if seen.insert(d) {
                        out.push(d);
                    }
                }
                let mut uses = Vec::new();
                i.collect_uses(&mut uses);
                for u in uses {
                    if seen.insert(u) {
                        out.push(u);
                    }
                }
            }
        }
        out
    }

    /// Highest hard-register index in use, if any. Phases that need a fresh
    /// hard register pick indices above this (subject to the target limit).
    pub fn max_hard_reg(&self) -> Option<u16> {
        self.all_regs().into_iter().filter(|r| r.class == RegClass::Hard).map(|r| r.index).max()
    }

    /// Recomputes the `addr_taken` flag of every local by scanning all uses
    /// of [`Expr::LocalAddr`]: an address is *taken* whenever it appears
    /// anywhere other than as the complete address operand (possibly plus a
    /// constant, for arrays) of a load or store.
    pub fn recompute_addr_taken(&mut self) {
        let mut taken = vec![false; self.locals.len()];
        // An address is "direct" if the full address expression is
        // LocalAddr(id) or LocalAddr(id) + const. Any LocalAddr occurring in
        // other positions marks the slot as escaping.
        fn scan_value(e: &Expr, taken: &mut [bool]) {
            match e {
                Expr::LocalAddr(id) => taken[id.0 as usize] = true,
                Expr::Bin(_, a, b) => {
                    scan_value(a, taken);
                    scan_value(b, taken);
                }
                Expr::Un(_, a) => scan_value(a, taken),
                Expr::Load(_, a) => scan_addr(a, taken),
                _ => {}
            }
        }
        fn scan_addr(e: &Expr, taken: &mut [bool]) {
            match e {
                Expr::LocalAddr(_) => {}
                Expr::Bin(crate::expr::BinOp::Add, a, b) => match (&**a, &**b) {
                    (Expr::LocalAddr(_), Expr::Const(_)) => {}
                    (Expr::LocalAddr(id), other) => {
                        taken[id.0 as usize] = true;
                        scan_value(other, taken);
                    }
                    _ => {
                        scan_value(a, taken);
                        scan_value(b, taken);
                    }
                },
                other => scan_value(other, taken),
            }
        }
        for b in &self.blocks {
            for i in &b.insts {
                match i {
                    Inst::Store { addr, src, .. } => {
                        scan_addr(addr, &mut taken);
                        scan_value(src, &mut taken);
                    }
                    _ => i.visit_exprs(&mut |e| scan_value(e, &mut taken)),
                }
            }
        }
        for (slot, t) in self.locals.iter_mut().zip(taken) {
            slot.addr_taken = t;
        }
    }

    /// Locals eligible for register allocation: scalar, address not taken,
    /// and *every* access is a direct whole-word load or store of the bare
    /// slot address.
    pub fn allocatable_locals(&self) -> Vec<LocalId> {
        let mut direct_ok = vec![true; self.locals.len()];
        for b in &self.blocks {
            for i in &b.insts {
                i.visit_exprs(&mut |e| {
                    e.visit(&mut |sub| {
                        if let Expr::Load(w, a) = sub {
                            if let Expr::LocalAddr(id) = &**a {
                                if *w != Width::Word {
                                    direct_ok[id.0 as usize] = false;
                                }
                            }
                        }
                    });
                });

                if let Inst::Store { width, addr: Expr::LocalAddr(id), .. } = i {
                    if *width != Width::Word {
                        direct_ok[id.0 as usize] = false;
                    }
                }
            }
        }
        self.locals
            .iter()
            .enumerate()
            .filter(|(i, s)| s.is_scalar() && !s.addr_taken && direct_ok[*i])
            .map(|(i, _)| LocalId(i as u32))
            .collect()
    }
}

/// A global variable definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GlobalDef {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Initial words (zero-padded to `size`).
    pub init: Vec<i32>,
    /// Initial bytes override; when non-empty, takes precedence over
    /// `init` (used for string data).
    pub init_bytes: Vec<u8>,
}

/// A whole translation unit: globals plus functions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Global variables, indexed by [`SymId`].
    pub globals: Vec<GlobalDef>,
    /// Functions in definition order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a global and returns its symbol id.
    pub fn add_global(&mut self, def: GlobalDef) -> SymId {
        let id = SymId(self.globals.len() as u32);
        self.globals.push(def);
        id
    }

    /// Finds a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<SymId> {
        self.globals.iter().position(|g| g.name == name).map(|i| SymId(i as u32))
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn fresh_ids_are_distinct() {
        let mut f = Function::new("t");
        let a = f.new_pseudo();
        let b = f.new_pseudo();
        assert_ne!(a, b);
        let l1 = f.new_label();
        let l2 = f.new_label();
        assert_ne!(l1, l2);
        assert_ne!(l1, f.blocks[0].label);
    }

    #[test]
    #[should_panic(expected = "register assignment")]
    fn no_pseudos_after_assignment() {
        let mut f = Function::new("t");
        f.flags.regs_assigned = true;
        let _ = f.new_pseudo();
    }

    #[test]
    fn addr_taken_analysis() {
        let mut f = Function::new("t");
        let scalar = f.new_local("x", 4);
        let array = f.new_local("a", 40);
        let escaping = f.new_local("y", 4);
        let r0 = f.new_pseudo();
        let idx = f.new_pseudo();
        f.blocks[0].insts = vec![
            // x used directly: not taken.
            Inst::Store { width: Width::Word, addr: Expr::LocalAddr(scalar), src: Expr::Const(1) },
            Inst::Assign { dst: r0, src: Expr::load(Width::Word, Expr::LocalAddr(scalar)) },
            // a indexed by a register: taken (address arithmetic escapes).
            Inst::Assign {
                dst: r0,
                src: Expr::load(
                    Width::Word,
                    Expr::bin(BinOp::Add, Expr::LocalAddr(array), Expr::Reg(idx)),
                ),
            },
            // y's address passed to a call: taken.
            Inst::Call { callee: "ext".into(), args: vec![Expr::LocalAddr(escaping)], dst: None },
            Inst::Return { value: None },
        ];
        f.recompute_addr_taken();
        assert!(!f.locals[scalar.0 as usize].addr_taken);
        assert!(f.locals[array.0 as usize].addr_taken);
        assert!(f.locals[escaping.0 as usize].addr_taken);
        assert_eq!(f.allocatable_locals(), vec![scalar]);
    }

    #[test]
    fn addr_plus_const_is_direct() {
        let mut f = Function::new("t");
        let arr = f.new_local("a", 8);
        let r0 = f.new_pseudo();
        f.blocks[0].insts = vec![
            Inst::Assign {
                dst: r0,
                src: Expr::load(
                    Width::Word,
                    Expr::bin(BinOp::Add, Expr::LocalAddr(arr), Expr::Const(4)),
                ),
            },
            Inst::Return { value: Some(Expr::Reg(r0)) },
        ];
        f.recompute_addr_taken();
        assert!(!f.locals[arr.0 as usize].addr_taken);
        // But it is not allocatable because it is not scalar-sized.
        assert!(f.allocatable_locals().is_empty());
    }

    fn sample_function() -> Function {
        let mut f = Function::new("sample");
        let x = f.new_local("x", 4);
        let r0 = f.new_pseudo();
        let r1 = f.new_pseudo();
        f.params.push(r0);
        let l = f.new_label();
        f.blocks[0].insts = vec![
            Inst::Store { width: Width::Word, addr: Expr::LocalAddr(x), src: Expr::Reg(r0) },
            Inst::Assign {
                dst: r1,
                src: Expr::bin(BinOp::Mul, Expr::load(Width::Word, Expr::LocalAddr(x)), 3.into()),
            },
            Inst::Compare { lhs: Expr::Reg(r1), rhs: Expr::Const(0) },
            Inst::CondBranch { cond: crate::expr::Cond::Le, target: l },
        ];
        f.blocks.push(Block::new(l));
        f.blocks[1].insts =
            vec![Inst::Call { callee: "ext".into(), args: vec![Expr::Reg(r1)], dst: None }, {
                Inst::Return { value: Some(Expr::Reg(r1)) }
            }];
        f.recompute_addr_taken();
        f
    }

    #[test]
    fn copy_from_is_exact_for_any_prior_content() {
        let src = sample_function();
        // Cold destination (the Default placeholder).
        let mut dst = Function::default();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        // Same fresh-id counters, observable through new_label.
        let (mut a, mut b) = (dst.clone(), src.clone());
        assert_eq!(a.new_label(), b.new_label());

        // Warm destination holding a *different* function: still exact.
        let mut warm = Function::new("other");
        warm.flags.regs_assigned = true;
        warm.blocks[0].insts = vec![Inst::Return { value: Some(Expr::Const(9)) }];
        warm.copy_from(&src);
        assert_eq!(warm, src);

        // Warm destination holding the same function: idempotent.
        warm.copy_from(&src);
        assert_eq!(warm, src);
    }

    #[test]
    fn copy_from_shrinks_larger_destinations() {
        let src = sample_function();
        let mut big = sample_function();
        big.blocks.push(Block::new(Label(99)));
        big.blocks[0].insts.push(Inst::Jump { target: Label(99) });
        big.locals.push(LocalSlot { name: "extra".into(), size: 8, addr_taken: true });
        big.params.push(Reg::hard(3));
        big.copy_from(&src);
        assert_eq!(big, src);
    }

    #[test]
    fn counting() {
        let mut f = Function::new("t");
        let l = f.new_label();
        f.blocks[0].insts = vec![
            Inst::Compare { lhs: Expr::Const(0), rhs: Expr::Const(1) },
            Inst::CondBranch { cond: crate::expr::Cond::Lt, target: l },
            Inst::Jump { target: l },
        ];
        f.blocks.push(Block::new(l));
        f.blocks[1].insts.push(Inst::Return { value: None });
        assert_eq!(f.inst_count(), 4);
        assert_eq!(f.branch_count(), 2);
        assert!(!f.blocks[0].falls_through());
    }
}
