//! Minimal, dependency-free pseudo-random number generation.
//!
//! The hermetic build policy of this workspace (see `DESIGN.md`) forbids
//! registry crates, so the heuristic searches, fuzz tests and benches use
//! this small generator instead of `rand`. It is a textbook
//! **xoshiro256++** (Blackman & Vigna) seeded through **SplitMix64**,
//! which is the exact seeding procedure the xoshiro authors recommend:
//! SplitMix64 diffuses a 64-bit seed into the 256-bit state so that
//! nearby seeds (0, 1, 2, ...) produce uncorrelated streams.
//!
//! The generator is deliberately *not* cryptographic. It is deterministic
//! per seed — the property every consumer in this workspace actually
//! needs (reproducible searches, reproducible fuzz corpora).

/// SplitMix64: a tiny 64-bit generator used to expand seeds.
///
/// Passes BigCrush on its own; here it only stretches one `u64` into the
/// xoshiro state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seedable xoshiro256++ generator with uniform range sampling.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is derived from `seed` via
    /// SplitMix64 (the seeding procedure recommended by the xoshiro
    /// authors). Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 pseudo-random bits (the high half, which has
    /// the better-mixed bits of the ++ scrambler).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses Lemire's widening-multiply method with rejection, so the
    /// distribution is exactly uniform.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            // Rejection zone for exact uniformity.
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        let _ = x;
        (m >> 64) as u64
    }

    /// Uniform `usize` in `range` (half-open, as `rand::gen_range`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.next_below((range.end - range.start) as u64) as usize
    }

    /// Uniform `i32` in `range` (half-open). Handles negative bounds.
    pub fn gen_range_i32(&mut self, range: std::ops::Range<i32>) -> i32 {
        assert!(range.start < range.end, "empty range {range:?}");
        let span = (range.end as i64 - range.start as i64) as u64;
        (range.start as i64 + self.next_below(span) as i64) as i32
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num/den`.
    pub fn gen_ratio(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ with state seeded from SplitMix64(0): the first
        // SplitMix64 outputs are fixed by its reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range_i32(-50..-10);
            assert!((-50..-10).contains(&w));
        }
        // Degenerate single-value range.
        assert_eq!(rng.gen_range(5..6), 5);
        assert_eq!(rng.gen_range_i32(i32::MIN..i32::MIN + 1), i32::MIN);
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(99);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Rng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
