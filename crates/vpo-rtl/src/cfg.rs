//! Control-flow graph utilities.
//!
//! The CFG is derived on demand from a [`Function`]'s block layout: a block
//! ending in a conditional branch has the branch target and the next
//! positional block as successors; a jump has its target; a return has none;
//! anything else falls through.

use std::collections::HashMap;

use crate::function::{Function, Label};
use crate::inst::Inst;

/// A snapshot of a function's control-flow graph, indexed by block position.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// `succs[i]` — successor block indices of block `i`, branch targets
    /// before fallthroughs.
    pub succs: Vec<Vec<usize>>,
    /// `preds[i]` — predecessor block indices of block `i`.
    pub preds: Vec<Vec<usize>>,
    /// Map from label to block index.
    pub index_of: HashMap<Label, usize>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    ///
    /// # Panics
    ///
    /// Panics if a branch targets a label with no corresponding block.
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut index_of = HashMap::with_capacity(n);
        for (i, b) in f.blocks.iter().enumerate() {
            index_of.insert(b.label, i);
        }
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            let mut out: Vec<usize> = Vec::new();
            let mut falls = true;
            // Scan instructions: a block may internally contain a
            // conditional branch only as (part of) its terminator sequence,
            // but we tolerate compare/branch pairs anywhere by collecting
            // every branch target that is reachable before a barrier.
            for inst in &b.insts {
                match inst {
                    Inst::CondBranch { target, .. } => {
                        let t = *index_of
                            .get(target)
                            .unwrap_or_else(|| panic!("dangling label {target} in {}", f.name));
                        if !out.contains(&t) {
                            out.push(t);
                        }
                    }
                    Inst::Jump { target } => {
                        let t = *index_of
                            .get(target)
                            .unwrap_or_else(|| panic!("dangling label {target} in {}", f.name));
                        if !out.contains(&t) {
                            out.push(t);
                        }
                        falls = false;
                        break;
                    }
                    Inst::Return { .. } => {
                        falls = false;
                        break;
                    }
                    _ => {}
                }
            }
            if falls && i + 1 < n && !out.contains(&(i + 1)) {
                out.push(i + 1);
            }
            for &s in &out {
                preds[s].push(i);
            }
            succs[i] = out;
        }
        Cfg { succs, preds, index_of }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Blocks reachable from the entry (block 0), as a boolean vector.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if self.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.succs[b] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Reverse postorder over reachable blocks starting at the entry.
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let mut state = vec![0u8; self.len()]; // 0 unvisited, 1 on stack, 2 done
        let mut post = Vec::with_capacity(self.len());
        if self.is_empty() {
            return post;
        }
        // Iterative DFS computing postorder.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < self.succs[b].len() {
                let s = self.succs[b][*next];
                *next += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

/// A compact fingerprint of the function's control-flow *shape* only:
/// block count plus, per block, the pattern of conditional/unconditional
/// exits and their target block indices. Used for the paper's `CF`
/// (distinct control flows) statistic.
pub fn control_flow_signature(f: &Function) -> u64 {
    let cfg = Cfg::build(f);
    let mut bytes = Vec::with_capacity(f.blocks.len() * 4 + 4);
    bytes.extend_from_slice(&(f.blocks.len() as u32).to_le_bytes());
    for (i, b) in f.blocks.iter().enumerate() {
        bytes.push(match b.insts.last() {
            Some(Inst::Jump { .. }) => 1,
            Some(Inst::CondBranch { .. }) => 2,
            Some(Inst::Return { .. }) => 3,
            _ => 0,
        });
        for &s in &cfg.succs[i] {
            bytes.extend_from_slice(&(s as u32).to_le_bytes());
        }
        bytes.push(0xFF);
    }
    let crc = crate::crc::crc32(&bytes);
    ((f.blocks.len() as u64) << 32) | crc as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::expr::{Cond, Expr};

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d");
        let x = b.param();
        let t = b.new_label();
        let j = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, t);
        b.assign(x, Expr::Const(1));
        b.jump(j);
        b.start_block(t);
        b.assign(x, Expr::Const(2));
        b.start_block(j);
        b.ret(Some(Expr::Reg(x)));
        b.finish()
    }

    #[test]
    fn diamond_cfg() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 3);
        let mut s0 = cfg.succs[0].clone();
        s0.sort_unstable();
        assert_eq!(s0, vec![1, 2]);
        assert_eq!(cfg.succs[1], vec![2]);
        assert!(cfg.succs[2].is_empty());
        let mut p2 = cfg.preds[2].clone();
        p2.sort_unstable();
        assert_eq!(p2, vec![0, 1]);
    }

    #[test]
    fn rpo_starts_at_entry_and_visits_all() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    fn reachability_flags_dead_blocks() {
        let mut b = FunctionBuilder::new("u");
        let dead = b.new_label();
        b.ret(None);
        b.start_block(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.reachable(), vec![true, false]);
    }

    #[test]
    fn cf_signature_distinguishes_shapes() {
        let f1 = diamond();
        let mut b = FunctionBuilder::new("s");
        b.ret(None);
        let f2 = b.finish();
        assert_ne!(control_flow_signature(&f1), control_flow_signature(&f2));
        assert_eq!(control_flow_signature(&f1), control_flow_signature(&diamond()));
    }
}
