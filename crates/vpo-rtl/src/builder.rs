//! A small convenience layer for constructing [`Function`]s in tests,
//! examples, and the front end's code generator.

use crate::expr::{Cond, Expr, SymId, Width};
use crate::function::{Block, Function, Label, LocalId};
use crate::inst::Inst;
use crate::Reg;

/// Incrementally builds a [`Function`], appending instructions to the
/// *current* block.
///
/// # Example
///
/// ```
/// use vpo_rtl::builder::FunctionBuilder;
/// use vpo_rtl::Expr;
///
/// let mut b = FunctionBuilder::new("answer");
/// b.ret(Some(Expr::Const(42)));
/// let f = b.finish();
/// assert_eq!(f.inst_count(), 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
    globals: Vec<String>,
    current: usize,
}

impl FunctionBuilder {
    /// Starts building a function with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder { f: Function::new(name), globals: Vec::new(), current: 0 }
    }

    /// Declares (or reuses) a global symbol by name. Builders used outside a
    /// full [`Program`](crate::Program) context maintain their own symbol
    /// numbering; the front end supplies real ids instead.
    pub fn global(&mut self, name: &str) -> SymId {
        if let Some(i) = self.globals.iter().position(|g| g == name) {
            SymId(i as u32)
        } else {
            self.globals.push(name.to_owned());
            SymId((self.globals.len() - 1) as u32)
        }
    }

    /// Names of globals declared through [`FunctionBuilder::global`].
    pub fn global_names(&self) -> &[String] {
        &self.globals
    }

    /// Allocates a fresh pseudo register.
    pub fn reg(&mut self) -> Reg {
        self.f.new_pseudo()
    }

    /// Declares a parameter arriving in a fresh pseudo register.
    pub fn param(&mut self) -> Reg {
        let r = self.f.new_pseudo();
        self.f.params.push(r);
        r
    }

    /// Allocates a local stack slot.
    pub fn local(&mut self, name: &str, size: u32) -> LocalId {
        self.f.new_local(name, size)
    }

    /// Allocates a fresh label for use with [`FunctionBuilder::start_block`].
    pub fn new_label(&mut self) -> Label {
        self.f.new_label()
    }

    /// Begins a new block with the given label; subsequent instructions are
    /// appended to it. The previous block falls through unless it ended in a
    /// barrier.
    pub fn start_block(&mut self, label: Label) {
        self.f.blocks.push(Block::new(label));
        self.current = self.f.blocks.len() - 1;
    }

    /// Appends an arbitrary instruction.
    pub fn inst(&mut self, i: Inst) {
        self.f.blocks[self.current].insts.push(i);
    }

    /// Appends `dst = src`.
    pub fn assign(&mut self, dst: Reg, src: Expr) {
        self.inst(Inst::Assign { dst, src });
    }

    /// Appends `M[addr] = src`.
    pub fn store(&mut self, width: Width, addr: Expr, src: Expr) {
        self.inst(Inst::Store { width, addr, src });
    }

    /// Appends `IC = lhs ? rhs`.
    pub fn compare(&mut self, lhs: Expr, rhs: Expr) {
        self.inst(Inst::Compare { lhs, rhs });
    }

    /// Appends `PC = IC <cond>, target`.
    pub fn cond_branch(&mut self, cond: Cond, target: Label) {
        self.inst(Inst::CondBranch { cond, target });
    }

    /// Appends `PC = target`.
    pub fn jump(&mut self, target: Label) {
        self.inst(Inst::Jump { target });
    }

    /// Appends a call.
    pub fn call(&mut self, callee: &str, args: Vec<Expr>, dst: Option<Reg>) {
        self.inst(Inst::Call { callee: callee.to_owned(), args, dst });
    }

    /// Appends a return.
    pub fn ret(&mut self, value: Option<Expr>) {
        self.inst(Inst::Return { value });
    }

    /// Finishes the function, recomputing derived local-slot flags.
    pub fn finish(mut self) -> Function {
        self.f.recompute_addr_taken();
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn builds_multi_block_function() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let then = b.new_label();
        let done = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Ge, then);
        b.assign(x, Expr::un(crate::expr::UnOp::Neg, Expr::Reg(x)));
        b.jump(done);
        b.start_block(then);
        b.assign(x, Expr::bin(BinOp::Add, Expr::Reg(x), Expr::Const(1)));
        b.start_block(done);
        b.ret(Some(Expr::Reg(x)));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.inst_count(), 6);
    }

    #[test]
    fn global_interning() {
        let mut b = FunctionBuilder::new("f");
        let a1 = b.global("a");
        let b1 = b.global("b");
        let a2 = b.global("a");
        assert_eq!(a1, a2);
        assert_ne!(a1, b1);
        assert_eq!(b.global_names(), &["a".to_owned(), "b".to_owned()]);
    }
}
