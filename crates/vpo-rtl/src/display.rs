//! Paper-style textual rendering of RTL.
//!
//! Output mirrors the notation of the paper: `r[3]=r[4]+1;`,
//! `IC=r[1]?r[9];`, `PC=IC<0,L3;`, `M[r[1]]=r[2];`.

use crate::expr::Expr;
use crate::function::Function;
use crate::inst::Inst;

/// Renders an expression in paper syntax.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Reg(r) => r.to_string(),
        Expr::Const(c) => c.to_string(),
        Expr::Hi(s) => format!("HI[{s}]"),
        Expr::Lo(s) => format!("LO[{s}]"),
        Expr::LocalAddr(l) => format!("&{l}"),
        Expr::Bin(op, a, b) => {
            format!("({}{}{})", expr_to_string(a), op, expr_to_string(b))
        }
        Expr::Un(op, a) => format!("({}{})", op, expr_to_string(a)),
        Expr::Load(w, a) => match w {
            crate::expr::Width::Word => format!("M[{}]", expr_to_string(a)),
            crate::expr::Width::Byte => format!("B[{}]", expr_to_string(a)),
        },
    }
}

/// Renders one instruction in paper syntax (no trailing newline).
pub fn inst_to_string(i: &Inst) -> String {
    match i {
        Inst::Assign { dst, src } => format!("{}={};", dst, expr_to_string(src)),
        Inst::Store { width, addr, src } => {
            let m = match width {
                crate::expr::Width::Word => "M",
                crate::expr::Width::Byte => "B",
            };
            format!("{m}[{}]={};", expr_to_string(addr), expr_to_string(src))
        }
        Inst::Compare { lhs, rhs } => {
            format!("IC={}?{};", expr_to_string(lhs), expr_to_string(rhs))
        }
        Inst::CondBranch { cond, target } => format!("PC=IC{cond}0,{target};"),
        Inst::Jump { target } => format!("PC={target};"),
        Inst::Call { callee, args, dst } => {
            let args: Vec<String> = args.iter().map(expr_to_string).collect();
            match dst {
                Some(d) => format!("{d}=CALL {callee}({});", args.join(",")),
                None => format!("CALL {callee}({});", args.join(",")),
            }
        }
        Inst::Return { value } => match value {
            Some(v) => format!("RET {};", expr_to_string(v)),
            None => "RET;".to_owned(),
        },
    }
}

/// Renders a whole function, one instruction per line, block labels flush
/// left.
pub fn function_to_string(f: &Function) -> String {
    let mut out = String::new();
    out.push_str(&format!("function {}(", f.name));
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&p.to_string());
    }
    out.push_str(")\n");
    for (bi, b) in f.blocks.iter().enumerate() {
        if bi > 0 || !b.insts.is_empty() {
            out.push_str(&format!("{}:\n", b.label));
        }
        for i in &b.insts {
            out.push_str("  ");
            out.push_str(&inst_to_string(i));
            out.push('\n');
        }
    }
    out
}

impl std::fmt::Display for Function {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&function_to_string(self))
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&inst_to_string(self))
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&expr_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::expr::{BinOp, Cond, Width};
    use crate::Reg;

    #[test]
    fn paper_like_rendering() {
        let r3 = Reg::hard(3);
        let r4 = Reg::hard(4);
        let i = Inst::Assign { dst: r3, src: Expr::bin(BinOp::Add, Expr::Reg(r4), Expr::Const(1)) };
        assert_eq!(inst_to_string(&i), "r[3]=(r[4]+1);");
        let c = Inst::Compare { lhs: Expr::Reg(r3), rhs: Expr::Reg(r4) };
        assert_eq!(inst_to_string(&c), "IC=r[3]?r[4];");
    }

    #[test]
    fn function_rendering_includes_labels() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let l = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, l);
        b.store(Width::Word, Expr::Reg(x), Expr::Const(0));
        b.start_block(l);
        b.ret(None);
        let f = b.finish();
        let s = f.to_string();
        assert!(s.contains("function f(t[0])"));
        assert!(s.contains("PC=IC<0,L1;"));
        assert!(s.contains("M[t[0]]=0;"));
        assert!(s.contains("L1:"));
        assert!(s.contains("RET;"));
    }
}
