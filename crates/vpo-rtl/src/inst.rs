//! RTL instructions.
//!
//! Every instruction is a *register transfer list*: one or more effects on
//! registers, memory, the condition code `IC`, or the program counter. The
//! textual forms mirror the paper, e.g. `r[3]=r[4]+1;`, `IC=r[1]?r[9];`,
//! `PC=IC<0,L3;`.

use crate::expr::{Cond, Expr, Width};
use crate::function::Label;
use crate::Reg;

/// A single RTL instruction.
#[derive(PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `reg = expr` — evaluate `src` and write it to `dst`.
    Assign {
        /// Destination register.
        dst: Reg,
        /// Source expression.
        src: Expr,
    },
    /// `M[addr] = src` — store to memory.
    Store {
        /// Access width.
        width: Width,
        /// Address expression.
        addr: Expr,
        /// Stored value.
        src: Expr,
    },
    /// `IC = lhs ? rhs` — set the condition code from a signed comparison.
    Compare {
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
    },
    /// `PC = IC <cond> 0, target` — conditional branch on the condition
    /// code; falls through to the next positional block otherwise.
    CondBranch {
        /// Branch condition over the last comparison.
        cond: Cond,
        /// Branch target.
        target: Label,
    },
    /// `PC = target` — unconditional jump.
    Jump {
        /// Jump target.
        target: Label,
    },
    /// A call to a named function. Arguments are evaluated left to right;
    /// the result, if any, is written to `dst`.
    ///
    /// Register state is per-activation in this model (see the crate
    /// documentation of `vpo-sim`), so a call *defines* `dst`, *uses* the
    /// argument expressions, and may read and write any global memory.
    Call {
        /// Callee name.
        callee: String,
        /// Argument expressions (registers or constants once legalized).
        args: Vec<Expr>,
        /// Result register, if the callee's value is used.
        dst: Option<Reg>,
    },
    /// Return from the function, optionally with a value.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
    },
}

/// Hand-written so that `clone_from` reuses operand allocations (expression
/// `Box`es, the callee `String`, the argument `Vec`) when the destination
/// already holds an instruction of the same shape — see the matching note on
/// [`Expr`]'s `Clone` impl.
impl Clone for Inst {
    fn clone(&self) -> Inst {
        match self {
            Inst::Assign { dst, src } => Inst::Assign { dst: *dst, src: src.clone() },
            Inst::Store { width, addr, src } => {
                Inst::Store { width: *width, addr: addr.clone(), src: src.clone() }
            }
            Inst::Compare { lhs, rhs } => Inst::Compare { lhs: lhs.clone(), rhs: rhs.clone() },
            Inst::CondBranch { cond, target } => Inst::CondBranch { cond: *cond, target: *target },
            Inst::Jump { target } => Inst::Jump { target: *target },
            Inst::Call { callee, args, dst } => {
                Inst::Call { callee: callee.clone(), args: args.clone(), dst: *dst }
            }
            Inst::Return { value } => Inst::Return { value: value.clone() },
        }
    }

    fn clone_from(&mut self, source: &Inst) {
        match (&mut *self, source) {
            (Inst::Assign { dst, src }, Inst::Assign { dst: sdst, src: ssrc }) => {
                *dst = *sdst;
                src.clone_from(ssrc);
            }
            (
                Inst::Store { width, addr, src },
                Inst::Store { width: swidth, addr: saddr, src: ssrc },
            ) => {
                *width = *swidth;
                addr.clone_from(saddr);
                src.clone_from(ssrc);
            }
            (Inst::Compare { lhs, rhs }, Inst::Compare { lhs: slhs, rhs: srhs }) => {
                lhs.clone_from(slhs);
                rhs.clone_from(srhs);
            }
            (Inst::Call { callee, args, dst }, Inst::Call { callee: sc, args: sa, dst: sd }) => {
                callee.clone_from(sc);
                args.clone_from(sa);
                *dst = *sd;
            }
            (Inst::Return { value }, Inst::Return { value: sv }) => value.clone_from(sv),
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Assign { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Whether this instruction writes the condition code `IC`.
    pub fn defs_cc(&self) -> bool {
        matches!(self, Inst::Compare { .. })
    }

    /// Whether this instruction reads the condition code `IC`.
    pub fn uses_cc(&self) -> bool {
        matches!(self, Inst::CondBranch { .. })
    }

    /// Collects every register read by this instruction into `out`.
    pub fn collect_uses(&self, out: &mut Vec<Reg>) {
        match self {
            Inst::Assign { src, .. } => src.collect_regs(out),
            Inst::Store { addr, src, .. } => {
                addr.collect_regs(out);
                src.collect_regs(out);
            }
            Inst::Compare { lhs, rhs } => {
                lhs.collect_regs(out);
                rhs.collect_regs(out);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    a.collect_regs(out);
                }
            }
            Inst::Return { value } => {
                if let Some(v) = value {
                    v.collect_regs(out);
                }
            }
            Inst::CondBranch { .. } | Inst::Jump { .. } => {}
        }
    }

    /// Counts how many times register `r` is *read* by this instruction —
    /// the number of occurrences [`collect_uses`](Inst::collect_uses)
    /// would push, without allocating.
    pub fn count_reg_uses(&self, r: Reg) -> usize {
        let mut n = 0;
        self.visit_exprs(&mut |e| n += e.count_reg(r));
        n
    }

    /// Calls `f` on every expression operand of the instruction.
    pub fn visit_exprs<F: FnMut(&Expr)>(&self, f: &mut F) {
        match self {
            Inst::Assign { src, .. } => f(src),
            Inst::Store { addr, src, .. } => {
                f(addr);
                f(src);
            }
            Inst::Compare { lhs, rhs } => {
                f(lhs);
                f(rhs);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Return { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
            Inst::CondBranch { .. } | Inst::Jump { .. } => {}
        }
    }

    /// Calls `f` on every expression operand of the instruction, mutably.
    pub fn visit_exprs_mut<F: FnMut(&mut Expr)>(&mut self, f: &mut F) {
        match self {
            Inst::Assign { src, .. } => f(src),
            Inst::Store { addr, src, .. } => {
                f(addr);
                f(src);
            }
            Inst::Compare { lhs, rhs } => {
                f(lhs);
                f(rhs);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Return { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
            Inst::CondBranch { .. } | Inst::Jump { .. } => {}
        }
    }

    /// Whether this instruction uses register `r` (in any operand).
    pub fn uses_reg(&self, r: Reg) -> bool {
        let mut used = false;
        self.visit_exprs(&mut |e| {
            if e.uses_reg(r) {
                used = true;
            }
        });
        used
    }

    /// Replaces every use of register `from` with the expression `to`,
    /// returning the number of replacements.
    pub fn substitute_reg_uses(&mut self, from: Reg, to: &Expr) -> usize {
        let mut n = 0;
        self.visit_exprs_mut(&mut |e| n += e.substitute_reg(from, to));
        n
    }

    /// Whether this instruction may write to memory.
    pub fn writes_memory(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Call { .. })
    }

    /// Whether this instruction may read from memory.
    pub fn reads_memory(&self) -> bool {
        let mut reads = matches!(self, Inst::Call { .. });
        self.visit_exprs(&mut |e| {
            if e.reads_memory() {
                reads = true;
            }
        });
        reads
    }

    /// Whether the instruction is a control transfer (ends or redirects the
    /// instruction stream).
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::CondBranch { .. } | Inst::Jump { .. } | Inst::Return { .. })
    }

    /// Whether the instruction is a *barrier*: control never falls through
    /// to the instruction after it.
    pub fn is_barrier(&self) -> bool {
        matches!(self, Inst::Jump { .. } | Inst::Return { .. })
    }

    /// The branch/jump target, if the instruction has one.
    pub fn target(&self) -> Option<Label> {
        match self {
            Inst::CondBranch { target, .. } | Inst::Jump { target } => Some(*target),
            _ => None,
        }
    }

    /// Rewrites the branch/jump target through `f`.
    pub fn retarget<F: FnOnce(Label) -> Label>(&mut self, f: F) {
        match self {
            Inst::CondBranch { target, .. } | Inst::Jump { target } => *target = f(*target),
            _ => {}
        }
    }

    /// Whether the instruction has an observable side effect even if its
    /// result is unused (stores, calls, control transfers, compares that
    /// feed a live branch are handled separately by liveness).
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::Call { .. }
                | Inst::CondBranch { .. }
                | Inst::Jump { .. }
                | Inst::Return { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn r(i: u16) -> Reg {
        Reg::pseudo(i)
    }

    #[test]
    fn defs_and_uses() {
        let i = Inst::Assign {
            dst: r(0),
            src: Expr::bin(BinOp::Add, Expr::Reg(r(1)), Expr::Reg(r(2))),
        };
        assert_eq!(i.def(), Some(r(0)));
        let mut uses = Vec::new();
        i.collect_uses(&mut uses);
        assert_eq!(uses, vec![r(1), r(2)]);
        assert!(!i.has_side_effect());
    }

    #[test]
    fn cc_def_use() {
        let cmp = Inst::Compare { lhs: Expr::Reg(r(0)), rhs: Expr::Const(0) };
        let br = Inst::CondBranch { cond: Cond::Lt, target: Label(3) };
        assert!(cmp.defs_cc() && !cmp.uses_cc());
        assert!(br.uses_cc() && !br.defs_cc());
        assert_eq!(br.target(), Some(Label(3)));
    }

    #[test]
    fn substitution_rewrites_store_operands() {
        let mut st =
            Inst::Store { width: Width::Word, addr: Expr::Reg(r(5)), src: Expr::Reg(r(5)) };
        let n = st.substitute_reg_uses(r(5), &Expr::Const(64));
        assert_eq!(n, 2);
        assert!(!st.uses_reg(r(5)));
    }

    #[test]
    fn barrier_classification() {
        assert!(Inst::Jump { target: Label(0) }.is_barrier());
        assert!(Inst::Return { value: None }.is_barrier());
        assert!(!Inst::CondBranch { cond: Cond::Eq, target: Label(0) }.is_barrier());
        assert!(Inst::CondBranch { cond: Cond::Eq, target: Label(0) }.is_control());
    }

    #[test]
    fn call_reads_and_writes_memory() {
        let c = Inst::Call { callee: "f".into(), args: vec![], dst: None };
        assert!(c.reads_memory());
        assert!(c.writes_memory());
    }
}
