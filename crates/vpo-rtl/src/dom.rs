//! Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;

/// Immediate-dominator tree over block indices.
///
/// `idom[0] == 0` for the entry; unreachable blocks have `idom == usize::MAX`.
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<usize>,
    #[allow(dead_code)]
    rpo_number: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for the given CFG.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let rpo = cfg.reverse_postorder();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_number[b] = i;
        }
        let mut idom = vec![usize::MAX; n];
        if n == 0 {
            return Dominators { idom, rpo_number };
        }
        idom[0] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &cfg.preds[b] {
                    if idom[p] == usize::MAX {
                        continue; // predecessor not yet processed/reachable
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_number, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom, rpo_number }
    }

    /// The immediate dominator of `b` (the entry dominates itself).
    /// Returns `None` for unreachable blocks.
    pub fn idom(&self, b: usize) -> Option<usize> {
        match self.idom.get(b) {
            Some(&d) if d != usize::MAX => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom.get(b).copied().unwrap_or(usize::MAX) == usize::MAX {
            return false;
        }
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            if x == 0 {
                return a == 0;
            }
            x = self.idom[x];
        }
    }
}

fn intersect(idom: &[usize], rpo_number: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_number[a] > rpo_number[b] {
            a = idom[a];
        }
        while rpo_number[b] > rpo_number[a] {
            b = idom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::expr::{Cond, Expr};

    #[test]
    fn diamond_dominators() {
        // 0 -> {1, 2}; 1 -> 3; 2 -> 3.
        let mut b = FunctionBuilder::new("d");
        let x = b.param();
        let t = b.new_label();
        let j = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, t);
        b.jump(j);
        b.start_block(t);
        b.start_block(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(0), Some(0));
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(0));
        assert!(dom.dominates(0, 2));
        assert!(!dom.dominates(1, 2));
        assert!(dom.dominates(2, 2));
    }

    #[test]
    fn loop_header_dominates_body() {
        // 0 -> 1 (header); 1 -> {2 (body), 3 (exit)}; 2 -> 1.
        let mut b = FunctionBuilder::new("l");
        let x = b.param();
        let header = b.new_label();
        let body = b.new_label();
        let exit = b.new_label();
        b.start_block(header);
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Le, exit);
        b.start_block(body);
        b.assign(x, Expr::bin(crate::expr::BinOp::Sub, Expr::Reg(x), Expr::Const(1)));
        b.jump(header);
        b.start_block(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        let h = cfg.index_of[&header];
        let bo = cfg.index_of[&body];
        assert!(dom.dominates(h, bo));
        assert!(!dom.dominates(bo, h));
    }
}
