//! Expression trees — the right-hand sides (and address operands) of RTLs.
//!
//! Unoptimized code produced by the front end only ever contains *atomic*
//! expressions (a single operator applied to leaves). The instruction
//! selection phase (`s`) symbolically merges instructions, producing deeper
//! trees, but only when the merged RTL is still a legal target instruction.

use crate::function::LocalId;
use crate::Reg;

/// Identifies a global symbol in a [`Program`](crate::Program).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SymId(pub u32);

impl std::fmt::Display for SymId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Memory access width.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Width {
    /// A single byte, zero-extended on load.
    Byte,
    /// A 32-bit word.
    Word,
}

impl Width {
    /// Size of the access in bytes.
    pub fn bytes(self) -> i64 {
        match self {
            Width::Byte => 1,
            Width::Word => 4,
        }
    }
}

/// Binary operators available in RTL expressions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BinOp {
    /// Two's complement addition.
    Add,
    /// Two's complement subtraction.
    Sub,
    /// Two's complement multiplication.
    Mul,
    /// Signed division (traps on division by zero in the simulator).
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left.
    Shl,
    /// Arithmetic (sign-propagating) shift right.
    AShr,
    /// Logical (zero-filling) shift right.
    LShr,
}

impl BinOp {
    /// Returns `true` for operators where `a op b == b op a`.
    pub fn is_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// Constant-folds `a op b` using 32-bit wrapping semantics.
    ///
    /// Returns `None` for division or remainder by zero and for shift
    /// amounts outside `0..32` (those would be undefined on the target, so
    /// the optimizer must not fold them away).
    pub fn eval(self, a: i32, b: i32) -> Option<i32> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 || (a == i32::MIN && b == -1) {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 || (a == i32::MIN && b == -1) {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => {
                if !(0..32).contains(&b) {
                    return None;
                }
                a.wrapping_shl(b as u32)
            }
            BinOp::AShr => {
                if !(0..32).contains(&b) {
                    return None;
                }
                a.wrapping_shr(b as u32)
            }
            BinOp::LShr => {
                if !(0..32).contains(&b) {
                    return None;
                }
                ((a as u32).wrapping_shr(b as u32)) as i32
            }
        })
    }
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::AShr => ">>",
            BinOp::LShr => ">>>",
        };
        f.write_str(s)
    }
}

/// Unary operators available in RTL expressions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum UnOp {
    /// Two's complement negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnOp {
    /// Constant-folds `op a` with 32-bit wrapping semantics.
    pub fn eval(self, a: i32) -> i32 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
        }
    }
}

impl std::fmt::Display for UnOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "~",
        })
    }
}

/// Condition codes tested by conditional branches (`PC = IC <cond> 0, L`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less than or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater than or equal.
    Ge,
}

impl Cond {
    /// The condition that is true exactly when `self` is false; used by the
    /// *reverse branches* phase.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Evaluates the condition over the signed comparison `a ? b`.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }
}

impl std::fmt::Display for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Cond::Eq => "==",
            Cond::Ne => "!=",
            Cond::Lt => "<",
            Cond::Le => "<=",
            Cond::Gt => ">",
            Cond::Ge => ">=",
        })
    }
}

/// An RTL expression tree.
///
/// Unoptimized code contains only *atomic* shapes (one operator over
/// leaves); the instruction-selection phase produces deeper trees subject to
/// the target legality model of the `vpo-opt` crate.
#[derive(PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Expr {
    /// The value held in a register.
    Reg(Reg),
    /// A 32-bit integer constant (stored widened for convenience).
    Const(i64),
    /// The high part of a global symbol's address (`HI[sym]`).
    Hi(SymId),
    /// The low part of a global symbol's address (`LO[sym]`), only
    /// meaningful as the right operand of an addition.
    Lo(SymId),
    /// The address of a local stack slot.
    LocalAddr(LocalId),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// A load from memory (`M[addr]`).
    Load(Width, Box<Expr>),
}

/// Hand-written so that `clone_from` can reuse the destination's `Box`
/// allocations when source and destination have matching shapes — the hot
/// path of the enumerator's scratch-buffer `Function::copy_from`, where the
/// destination usually holds the previous attempt over the same parent.
/// `Vec::clone_from` propagates this element-wise through blocks and
/// instruction operands.
impl Clone for Expr {
    fn clone(&self) -> Expr {
        match self {
            Expr::Reg(r) => Expr::Reg(*r),
            Expr::Const(c) => Expr::Const(*c),
            Expr::Hi(s) => Expr::Hi(*s),
            Expr::Lo(s) => Expr::Lo(*s),
            Expr::LocalAddr(l) => Expr::LocalAddr(*l),
            Expr::Bin(op, a, b) => Expr::Bin(*op, a.clone(), b.clone()),
            Expr::Un(op, a) => Expr::Un(*op, a.clone()),
            Expr::Load(w, a) => Expr::Load(*w, a.clone()),
        }
    }

    fn clone_from(&mut self, source: &Expr) {
        match (&mut *self, source) {
            (Expr::Bin(op, a, b), Expr::Bin(sop, sa, sb)) => {
                *op = *sop;
                a.as_mut().clone_from(sa);
                b.as_mut().clone_from(sb);
            }
            (Expr::Un(op, a), Expr::Un(sop, sa)) => {
                *op = *sop;
                a.as_mut().clone_from(sa);
            }
            (Expr::Load(w, a), Expr::Load(sw, sa)) => {
                *w = *sw;
                a.as_mut().clone_from(sa);
            }
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl Expr {
    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Convenience constructor for a unary operation.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Un(op, Box::new(a))
    }

    /// Convenience constructor for a memory load.
    pub fn load(width: Width, addr: Expr) -> Expr {
        Expr::Load(width, Box::new(addr))
    }

    /// Returns the constant value if the expression is a constant leaf.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Expr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the register if the expression is a register leaf.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Expr::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns `true` if the expression contains a memory load anywhere.
    pub fn reads_memory(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Load(..)) {
                found = true;
            }
        });
        found
    }

    /// Calls `f` on this expression and every sub-expression, pre-order.
    pub fn visit<F: FnMut(&Expr)>(&self, f: &mut F) {
        f(self);
        match self {
            Expr::Bin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Un(_, a) => a.visit(f),
            Expr::Load(_, a) => a.visit(f),
            _ => {}
        }
    }

    /// Calls `f` on this expression and every sub-expression, allowing
    /// mutation; traversal is pre-order, and `f` sees each node *before* its
    /// (possibly replaced) children are visited.
    pub fn visit_mut<F: FnMut(&mut Expr)>(&mut self, f: &mut F) {
        f(self);
        match self {
            Expr::Bin(_, a, b) => {
                a.visit_mut(f);
                b.visit_mut(f);
            }
            Expr::Un(_, a) => a.visit_mut(f),
            Expr::Load(_, a) => a.visit_mut(f),
            _ => {}
        }
    }

    /// Collects every register used by the expression into `out`.
    pub fn collect_regs(&self, out: &mut Vec<Reg>) {
        self.visit(&mut |e| {
            if let Expr::Reg(r) = e {
                out.push(*r);
            }
        });
    }

    /// Counts the occurrences of register `r` in this expression — the
    /// number of times [`collect_regs`](Expr::collect_regs) would push it,
    /// without allocating.
    pub fn count_reg(&self, r: Reg) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, Expr::Reg(x) if *x == r) {
                n += 1;
            }
        });
        n
    }

    /// Returns `true` if the expression uses register `r`.
    pub fn uses_reg(&self, r: Reg) -> bool {
        let mut used = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Reg(x) if *x == r) {
                used = true;
            }
        });
        used
    }

    /// Replaces every use of register `from` with the expression `to`.
    ///
    /// Returns the number of replacements performed. Used by constant/copy
    /// propagation and instruction selection.
    pub fn substitute_reg(&mut self, from: Reg, to: &Expr) -> usize {
        let mut n = 0;
        self.substitute_inner(from, to, &mut n);
        n
    }

    fn substitute_inner(&mut self, from: Reg, to: &Expr, n: &mut usize) {
        match self {
            Expr::Reg(r) if *r == from => {
                *self = to.clone();
                *n += 1;
            }
            Expr::Bin(_, a, b) => {
                a.substitute_inner(from, to, n);
                b.substitute_inner(from, to, n);
            }
            Expr::Un(_, a) => a.substitute_inner(from, to, n),
            Expr::Load(_, a) => a.substitute_inner(from, to, n),
            _ => {}
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Returns `true` if evaluating the expression has no side effects and
    /// does not depend on memory (registers only). Such expressions can be
    /// freely duplicated, reordered, or removed when their result is dead.
    pub fn is_pure_of_memory(&self) -> bool {
        !self.reads_memory()
    }
}

impl From<Reg> for Expr {
    fn from(r: Reg) -> Expr {
        Expr::Reg(r)
    }
}

impl From<i32> for Expr {
    fn from(c: i32) -> Expr {
        Expr::Const(c as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity_matches_arithmetic() {
        for op in [BinOp::Add, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor] {
            assert!(op.is_commutative());
            assert_eq!(op.eval(12, -5), op.eval(-5, 12));
        }
        for op in [BinOp::Sub, BinOp::Div, BinOp::Rem, BinOp::Shl, BinOp::AShr, BinOp::LShr] {
            assert!(!op.is_commutative());
        }
    }

    #[test]
    fn eval_guards_undefined_cases() {
        assert_eq!(BinOp::Div.eval(1, 0), None);
        assert_eq!(BinOp::Rem.eval(1, 0), None);
        assert_eq!(BinOp::Div.eval(i32::MIN, -1), None);
        assert_eq!(BinOp::Shl.eval(1, 32), None);
        assert_eq!(BinOp::Shl.eval(1, -1), None);
        assert_eq!(BinOp::AShr.eval(-8, 2), Some(-2));
        assert_eq!(BinOp::LShr.eval(-8, 2), Some(0x3FFF_FFFE));
    }

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-5, 5), (i32::MIN, i32::MAX)] {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn substitute_replaces_all_uses() {
        let r0 = Reg::pseudo(0);
        let r1 = Reg::pseudo(1);
        let mut e = Expr::bin(
            BinOp::Add,
            Expr::Reg(r0),
            Expr::bin(BinOp::Mul, Expr::Reg(r0), Expr::Reg(r1)),
        );
        let n = e.substitute_reg(r0, &Expr::Const(7));
        assert_eq!(n, 2);
        assert!(!e.uses_reg(r0));
        assert!(e.uses_reg(r1));
    }

    #[test]
    fn reads_memory_detects_nested_loads() {
        let addr = Expr::bin(BinOp::Add, Expr::Reg(Reg::hard(1)), Expr::Const(4));
        let e = Expr::bin(BinOp::Add, Expr::Const(1), Expr::load(Width::Word, addr));
        assert!(e.reads_memory());
        assert!(!Expr::Const(3).reads_memory());
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::bin(BinOp::Add, Expr::Const(1), Expr::un(UnOp::Neg, Expr::Const(2)));
        assert_eq!(e.size(), 4);
    }
}
