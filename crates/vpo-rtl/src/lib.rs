//! RTL (Register Transfer List) intermediate representation for a VPO-style
//! compiler back end.
//!
//! This crate implements the program representation used by the reproduction
//! of *"Exhaustive Optimization Phase Order Space Exploration"* (Kulkarni,
//! Whalley, Tyson, Davidson — CGO 2006). VPO, the Very Portable Optimizer,
//! performs **all** of its optimizations on a single low-level representation
//! called RTLs; because there is only one representation, most phases can be
//! applied repeatedly and in an arbitrary order, which is exactly the
//! property that makes exhaustive phase-order enumeration meaningful.
//!
//! The crate provides:
//!
//! * the IR itself: [`Reg`], [`Expr`], [`Inst`], [`Block`], [`Function`],
//!   [`Program`];
//! * a convenient [`FunctionBuilder`](builder::FunctionBuilder) for
//!   constructing functions programmatically (used heavily in tests);
//! * control-flow utilities: [`mod@cfg`], [`dom`] (dominators), [`loops`]
//!   (natural-loop detection);
//! * dataflow analyses: [`liveness`] (registers, the condition code, and
//!   register-allocatable locals);
//! * the canonical-form machinery of Section 4.2.1 of the paper:
//!   register/label remapping and CRC-based fingerprinting ([`canon`],
//!   [`crc`]).
//!
//! # Example
//!
//! Build the loop of Figure 5 of the paper and fingerprint it:
//!
//! ```
//! use vpo_rtl::builder::FunctionBuilder;
//! use vpo_rtl::{BinOp, Cond, Expr, Width};
//!
//! let mut b = FunctionBuilder::new("sum");
//! let a = b.global("a");
//! let sum = b.reg();
//! b.assign(sum, Expr::Const(0));
//! let base = b.reg();
//! b.assign(base, Expr::Hi(a));
//! b.assign(base, Expr::bin(BinOp::Add, Expr::Reg(base), Expr::Lo(a)));
//! let body = b.new_label();
//! b.start_block(body);
//! let v = b.reg();
//! b.assign(v, Expr::load(Width::Word, Expr::Reg(base)));
//! b.assign(sum, Expr::bin(BinOp::Add, Expr::Reg(sum), Expr::Reg(v)));
//! b.assign(base, Expr::bin(BinOp::Add, Expr::Reg(base), Expr::Const(4)));
//! b.compare(Expr::Reg(base), Expr::Const(4000));
//! b.cond_branch(Cond::Lt, body);
//! b.ret(Some(Expr::Reg(sum)));
//! let f = b.finish();
//!
//! let fp = vpo_rtl::canon::fingerprint(&f);
//! assert_eq!(fp.inst_count, f.inst_count() as u32);
//! ```

pub mod builder;
pub mod canon;
pub mod cfg;
pub mod crc;
pub mod display;
pub mod dom;
pub mod expr;
pub mod function;
pub mod inst;
pub mod liveness;
pub mod loops;
pub mod rng;

pub use expr::{BinOp, Cond, Expr, SymId, UnOp, Width};
pub use function::{Block, FuncFlags, Function, GlobalDef, Label, LocalId, LocalSlot, Program};
pub use inst::Inst;

/// A machine register, either a *pseudo* (temporary produced by naive code
/// generation, existing before the compulsory register-assignment phase) or a
/// *hard* register of the target (StrongARM-like, 16 integer registers).
///
/// The register class is part of every canonical fingerprint, so code before
/// and after register assignment can never be confused for the same function
/// instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg {
    /// The register class (pseudo or hard).
    pub class: RegClass,
    /// The register number within its class.
    pub index: u16,
}

impl Reg {
    /// Creates a pseudo register (a compiler temporary).
    pub fn pseudo(index: u16) -> Self {
        Reg { class: RegClass::Pseudo, index }
    }

    /// Creates a hard (target) register.
    pub fn hard(index: u16) -> Self {
        Reg { class: RegClass::Hard, index }
    }

    /// Returns `true` if this is a pseudo register.
    pub fn is_pseudo(&self) -> bool {
        self.class == RegClass::Pseudo
    }

    /// Returns `true` if this is a hard register.
    pub fn is_hard(&self) -> bool {
        self.class == RegClass::Hard
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            RegClass::Pseudo => write!(f, "t[{}]", self.index),
            RegClass::Hard => write!(f, "r[{}]", self.index),
        }
    }
}

/// The class of a [`Reg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RegClass {
    /// A compiler temporary; exists only before register assignment.
    Pseudo,
    /// A target hardware register.
    Hard,
}
