//! Table-driven CRC-32 (IEEE 802.3 polynomial), as used by the paper to
//! detect identical function instances.
//!
//! The paper cites Peterson & Brown (1961) and notes the property that makes
//! CRC preferable to a plain checksum here: *the order of the bytes affects
//! the result*, so instruction reorderings are not falsely identified.

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data`.
///
/// # Example
///
/// ```
/// // The standard CRC-32 check value.
/// assert_eq!(vpo_rtl::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// An incremental CRC-32 hasher.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finishes and returns the CRC value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello, phase ordering world";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn order_sensitivity() {
        // The property the paper relies on: byte order matters.
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
