//! End-to-end daemon acceptance, against the real binary: start `vpoc
//! serve`, drive a cold function to completion with small per-request
//! budgets, check the finished store is byte-identical to a direct
//! uncapped `vpoc campaign`, SIGKILL the daemon, restart it on the same
//! socket and store, and confirm warm answers survive the crash.

#![cfg(unix)]

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BENCH: &str = "bitcount";
const MAX_NODES: &str = "400";

fn vpoc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vpoc"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpoc_serve_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(store: &Path, socket: &Path) -> Child {
    let child = vpoc()
        .args([
            "serve",
            "--bench",
            BENCH,
            &format!("--store={}", store.display()),
            &format!("--socket={}", socket.display()),
            &format!("--max-nodes={MAX_NODES}"),
            "--budget=20",
            "--jobs=2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    wait_for_socket(socket);
    child
}

fn wait_for_socket(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if UnixStream::connect(socket).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("daemon did not open {} within 30s", socket.display());
}

fn query(socket: &Path, extra: &[&str]) -> (bool, String) {
    let out = vpoc()
        .args(["query", &format!("--socket={}", socket.display())])
        .args(extra)
        .output()
        .unwrap();
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

/// Names of the served functions, via `query --list`.
fn list_names(socket: &Path) -> Vec<String> {
    let (ok, text) = query(socket, &["--list"]);
    assert!(ok, "--list failed:\n{text}");
    text.lines().filter_map(|l| l.split_whitespace().next()).map(str::to_owned).collect()
}

/// Re-queries every function until none reports a resumable frontier.
fn deplete(socket: &Path, names: &[String]) {
    for name in names {
        for round in 0..200 {
            let (ok, text) = query(socket, &[name]);
            assert!(ok, "query {name} failed:\n{text}");
            if !text.contains("suspended at level") {
                break;
            }
            assert!(round < 199, "{name} never completed under repeated queries");
        }
    }
}

#[test]
fn daemon_depletes_cold_queries_matches_campaign_and_survives_sigkill() {
    let dir = tmp_dir("smoke");
    let store = dir.join("daemon.store");
    let socket = dir.join("vpod.sock");
    let reference = dir.join("reference.store");
    for p in [&store, &socket, &reference] {
        std::fs::remove_file(p).ok();
    }

    // The ground truth: one uncapped campaign over the same tasks.
    let out = vpoc()
        .args([
            "campaign",
            "--bench",
            BENCH,
            &format!("--store={}", reference.display()),
            &format!("--max-nodes={MAX_NODES}"),
            "--jobs=2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "campaign failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let campaign_stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let want = std::fs::read(&reference).unwrap();

    let mut daemon = spawn_daemon(&store, &socket);
    let names = list_names(&socket);
    assert!(!names.is_empty(), "daemon serves no functions");
    assert!(names.iter().all(|n| n.starts_with("bitcount::")), "{names:?}");

    // A cold query under a tiny budget answers best-so-far + frontier.
    let (ok, first) = query(&socket, &[&names[0], "--budget=1"]);
    assert!(ok, "{first}");
    assert!(first.contains("cold:"), "first query must be cold:\n{first}");

    // Strictly deepen everything to terminal records.
    deplete(&socket, &names);
    assert_eq!(
        std::fs::read(&store).unwrap(),
        want,
        "depleted daemon store differs from the uncapped campaign's"
    );

    // Warm re-query: answered from the memo, and the Table-3 row is the
    // same line the campaign report printed for that function.
    let (ok, warm) = query(&socket, &[&names[0]]);
    assert!(ok, "{warm}");
    assert!(warm.contains("warm:"), "re-query must be warm:\n{warm}");
    let row = warm
        .lines()
        .find(|l| l.starts_with(&names[0]))
        .expect("warm answer renders the Table-3 row");
    assert!(
        campaign_stdout.contains(row.trim_end()),
        "daemon row not in campaign report:\nrow: {row}\nreport:\n{campaign_stdout}"
    );

    // SIGKILL the daemon mid-service; the socket file is left behind.
    daemon.kill().unwrap();
    daemon.wait().unwrap();
    assert!(socket.exists(), "SIGKILL must leave the stale socket behind");

    // Restart on the same socket and store: warm answers survive, no
    // enumeration re-runs, and the store bytes are untouched.
    let mut daemon = spawn_daemon(&store, &socket);
    let (ok, revived) = query(&socket, &[&names[0]]);
    assert!(ok, "{revived}");
    assert!(revived.contains("warm:"), "restarted daemon must answer warm:\n{revived}");
    assert_eq!(std::fs::read(&store).unwrap(), want, "restart must not disturb the store");

    // Graceful shutdown via the protocol: exit code 0, socket removed.
    let (ok, bye) = query(&socket, &["--shutdown"]);
    assert!(ok, "{bye}");
    assert!(bye.contains("shutting down"), "{bye}");
    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon must exit 0 on shutdown, got {status:?}");
    assert!(!socket.exists(), "graceful shutdown must remove the socket file");
}

#[test]
fn daemon_exits_cleanly_on_sigterm() {
    let dir = tmp_dir("sigterm");
    let store = dir.join("daemon.store");
    let socket = dir.join("vpod.sock");
    for p in [&store, &socket] {
        std::fs::remove_file(p).ok();
    }

    let mut daemon = spawn_daemon(&store, &socket);
    let term = Command::new("kill").args(["-TERM", &daemon.id().to_string()]).status().unwrap();
    assert!(term.success());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            assert!(status.success(), "SIGTERM must exit 0, got {status:?}");
            break;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!socket.exists(), "SIGTERM drain must remove the socket file");
    assert!(store.exists(), "the store must be flushed at startup");
}

#[test]
fn query_without_a_daemon_is_a_clean_error() {
    let dir = tmp_dir("noserver");
    let socket = dir.join("absent.sock");
    std::fs::remove_file(&socket).ok();
    let (ok, text) = query(&socket, &["bitcount::main"]);
    assert!(!ok, "query against no daemon must fail");
    assert!(text.contains("is `vpoc serve` running?"), "{text}");
}
