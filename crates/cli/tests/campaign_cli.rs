//! The `vpoc campaign` acceptance criterion, against the real binary: a
//! campaign killed mid-run (actual SIGKILL, arbitrary timing) and re-run
//! with `--resume` produces a store byte-identical to an uninterrupted
//! run's, for both `--jobs 1` and `--jobs 4`.
//!
//! The store's atomic rewrite-per-checkpoint design makes this robust at
//! *any* kill point: partial writes only ever hit the temp sibling, so
//! whatever survives is a valid store holding a completed subset, and the
//! final bytes are independent of where the run stopped.

use std::path::{Path, PathBuf};
use std::process::Command;

const BENCH: &str = "bitcount";
const MAX_NODES: &str = "400";

fn vpoc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vpoc"))
}

fn campaign_args(store: &Path, jobs: usize) -> Vec<String> {
    vec![
        "campaign".into(),
        "--bench".into(),
        BENCH.into(),
        format!("--store={}", store.display()),
        format!("--jobs={jobs}"),
        format!("--max-nodes={MAX_NODES}"),
    ]
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpoc_cli_campaign_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("campaign.store")
}

fn run_to_completion(store: &Path, jobs: usize) {
    std::fs::remove_file(store).ok();
    let out = vpoc().args(campaign_args(store, jobs)).output().unwrap();
    assert!(out.status.success(), "campaign failed:\n{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn killed_campaign_resumes_to_identical_store() {
    let reference = tmp("reference");
    run_to_completion(&reference, 2);
    let want = std::fs::read(&reference).unwrap();
    std::fs::remove_file(&reference).ok();

    for jobs in [1usize, 4] {
        let store = tmp(&format!("kill_j{jobs}"));
        std::fs::remove_file(&store).ok();

        // Kill the campaign at a few arbitrary points in its run. Some
        // attempts may land before the first checkpoint (no store yet) or
        // after the last (campaign already done) — both are fine; the
        // point is that *wherever* SIGKILL lands, resume converges.
        for attempt in 0..4u64 {
            let mut child = vpoc()
                .args(campaign_args(&store, jobs))
                .arg("--resume")
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .unwrap();
            std::thread::sleep(std::time::Duration::from_millis(20 + 60 * attempt));
            child.kill().ok(); // SIGKILL; a no-op if it already exited
            child.wait().unwrap();
        }

        // Whatever survived the kills, one resumed run finishes the job.
        let out = vpoc().args(campaign_args(&store, jobs)).arg("--resume").output().unwrap();
        assert!(
            out.status.success(),
            "resume failed (jobs={jobs}):\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            std::fs::read(&store).unwrap(),
            want,
            "jobs={jobs}: killed-and-resumed store differs from uninterrupted run"
        );
        std::fs::remove_file(&store).ok();
    }
}

#[test]
fn campaign_reports_an_aggregate_table() {
    let store = tmp("table");
    std::fs::remove_file(&store).ok();
    let out = vpoc().args(campaign_args(&store, 2)).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Function"), "missing Table-3 header:\n{stdout}");
    assert!(stdout.contains("bitcount::"), "missing qualified rows:\n{stdout}");
    assert!(stdout.contains("function(s) recorded"), "missing aggregate footer:\n{stdout}");
    std::fs::remove_file(&store).ok();
}
