//! `--merge-tier` through the real binary: `explore` reports both DAG
//! sizes and the collapse factor, `verify` re-validates semantic merge
//! edges (on both simulator engines, in paranoid mode), `dot` renders
//! the semantic edges dashed, `campaign` persists the semantic
//! counters, and a bogus tier name is rejected with a usable message.

use std::path::PathBuf;
use std::process::{Command, Output};

use phase_order::campaign::store::ResultStore;

fn vpoc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vpoc"))
}

/// Writes the bitcount kernel source to a temp `.mc` file — `explore`
/// and `dot` take files, not `--bench` names.
fn bitcount_mc() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpoc_cli_semantic_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bitcount.mc");
    std::fs::write(&file, mibench::find("bitcount").unwrap().source).unwrap();
    file
}

fn run_ok(args: &[&str]) -> Output {
    let out = vpoc().args(args).output().unwrap();
    assert!(
        out.status.success(),
        "vpoc {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn explore_reports_both_dag_sizes_under_the_semantic_tier() {
    let file = bitcount_mc();
    let path = file.to_str().unwrap();

    let fp = run_ok(&["explore", path, "bit_count"]);
    let fp_out = String::from_utf8_lossy(&fp.stdout).into_owned();
    assert!(!fp_out.contains("semantic:"), "fingerprint tier printed a quotient line:\n{fp_out}");

    let sem = run_ok(&["explore", path, "bit_count", "--merge-tier", "semantic"]);
    let sem_out = String::from_utf8_lossy(&sem.stdout).into_owned();
    let line = sem_out
        .lines()
        .find(|l| l.trim_start().starts_with("semantic:"))
        .unwrap_or_else(|| panic!("no quotient line under --merge-tier semantic:\n{sem_out}"));
    assert!(line.contains("distinct instances"), "{line}");
    assert!(line.contains("fingerprint"), "{line}");
    assert!(line.contains("collapse"), "{line}");
    assert!(line.contains("sem merges"), "{line}");
    // Both tiers print the identical Table-3 row — the semantic tier
    // annotates the same space.
    let row = |s: &str| {
        s.lines().find(|l| l.contains("bit_count")).map(str::to_owned).expect("Table-3 row")
    };
    assert_eq!(row(&fp_out), row(&sem_out), "tiers disagree on the fingerprint row");
}

#[test]
fn verify_revalidates_semantic_merges_paranoid_on_both_engines() {
    let out = run_ok(&[
        "verify",
        "--bench",
        "bitcount",
        "bit_count",
        "--merge-tier",
        "semantic",
        "--paranoid",
        "--battery=2",
        "--sim-engine=both",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("engines agree"), "missing differential line:\n{stdout}");
    assert!(stdout.contains("ok"), "verification not clean:\n{stdout}");
    assert!(stdout.contains("semantic)"), "no semantic paths re-validated:\n{stdout}");
}

#[test]
fn dot_renders_semantic_edges_dashed() {
    let file = bitcount_mc();
    let path = file.to_str().unwrap();
    let fp = run_ok(&["dot", path, "bit_count"]);
    assert!(!String::from_utf8_lossy(&fp.stdout).contains("style=dashed"));
    let sem = run_ok(&["dot", path, "bit_count", "--merge-tier", "semantic"]);
    let dot = String::from_utf8_lossy(&sem.stdout);
    assert!(dot.contains("digraph"), "not a DOT document:\n{dot}");
    assert!(dot.contains("style=dashed"), "semantic edges missing from DOT:\n{dot}");
}

#[test]
fn campaign_persists_semantic_counters() {
    let dir = std::env::temp_dir().join(format!("vpoc_cli_semantic_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("semantic.store");
    std::fs::remove_file(&store).ok();
    run_ok(&[
        "campaign",
        "--bench",
        "bitcount",
        &format!("--store={}", store.display()),
        "--max-nodes=400",
        "--merge-tier",
        "semantic",
        "--paranoid",
    ]);
    let parsed = ResultStore::from_bytes(&std::fs::read(&store).unwrap()).unwrap();
    let merges: u64 = parsed.records.iter().map(|r| r.sem_merges).sum();
    assert!(merges > 0, "semantic campaign recorded no merges");
    assert!(parsed.records.iter().all(|r| r.sem_collisions == 0), "paranoid refuted a merge");
    std::fs::remove_file(&store).ok();
}

#[test]
fn unknown_merge_tier_is_rejected() {
    let file = bitcount_mc();
    let out = vpoc()
        .args(["explore", file.to_str().unwrap(), "--merge-tier", "syntactic"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "bogus tier accepted");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fingerprint") && stderr.contains("semantic"),
        "error message does not name the valid tiers:\n{stderr}"
    );
}
