//! `vpoc serve` — the persistent phase-order memo daemon (vpod).
//!
//! The daemon owns a [`ResultStore`] and answers [`Request`] frames
//! over a Unix domain socket (one request per connection, one response,
//! close). A *warm* query — the store already holds a terminal record —
//! is answered straight from the memo without spawning any enumeration
//! worker. A *cold* or *partially-explored* query runs the campaign
//! driver on that one function under a per-request expansion budget:
//! the result is either a complete record or a suspended one whose
//! frontier checkpoint is persisted in the store, so the next query
//! resumes exactly where this one stopped. A finished store is
//! byte-identical to what an uncapped `vpoc campaign` over the same
//! tasks writes.
//!
//! Admission control caps concurrent enumerations (`--max-active`) and
//! the number of cold requests waiting for a slot (`--max-queue`);
//! requests beyond both get [`Response::Overloaded`]. Warm queries,
//! `--list` and `--telemetry` bypass admission entirely.
//!
//! SIGTERM/SIGINT (or a [`Request::Shutdown`] frame) drain the daemon
//! gracefully: the campaign cancel flag flips, every in-flight search
//! suspends at its last merged level and checkpoints its frontier, the
//! store is flushed, the socket file removed, and the process exits 0.

use std::collections::HashSet;
use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use phase_order::campaign::store::{FunctionRecord, MemoEntry, ResultStore};
use phase_order::campaign::{self, CampaignConfig, FunctionTask};
use phase_order::service::{ListEntry, Request, Response, Served};
use phase_order::telemetry;
use phase_order::wire::{read_frame, write_frame, FrameError};
use vpo_opt::Target;

use crate::args;

/// Default per-request expansion budget for cold queries that do not
/// carry their own (`vpoc serve --budget` overrides it daemon-wide).
const DEFAULT_BUDGET: u64 = 10_000;
/// Default cap on concurrently running enumerations.
const DEFAULT_MAX_ACTIVE: usize = 2;
/// Default cap on cold requests waiting for an enumeration slot.
const DEFAULT_MAX_QUEUE: usize = 16;
/// Accept-loop and admission-wait poll interval.
const POLL: Duration = Duration::from_millis(25);

/// Process-wide shutdown request, set by the signal handler or a
/// [`Request::Shutdown`] frame and polled by the accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that flip [`SHUTDOWN`]. Raw
/// `signal(2)` through the libc std already links — storing to a static
/// atomic is async-signal-safe.
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Admission state: which functions are being enumerated right now and
/// how many cold requests are waiting for a slot.
#[derive(Default)]
struct Admission {
    running: HashSet<usize>,
    queued: usize,
}

/// Shared daemon state, one instance per `serve` invocation.
struct Daemon {
    tasks: Vec<FunctionTask>,
    /// Best-known record per task, in task order (`None` = unexplored).
    records: Mutex<Vec<Option<FunctionRecord>>>,
    admission: Mutex<Admission>,
    max_active: usize,
    max_queue: usize,
    store_path: PathBuf,
    /// Campaign options every request runs under; `budget` is replaced
    /// per request, `cancel` is wired to [`Daemon::cancel`].
    config: CampaignConfig,
    default_budget: u64,
    target: Target,
    /// Cooperative cancel flag handed to every enumeration.
    cancel: Arc<AtomicBool>,
}

impl Daemon {
    /// Task index for a query name (qualified exactly, or a unique bare
    /// function name).
    fn find_task(&self, name: &str) -> Option<usize> {
        self.tasks.iter().position(|t| t.name == name).or_else(|| {
            let mut hits = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.name.rsplit("::").next() == Some(name));
            let first = hits.next()?;
            hits.next().is_none().then_some(first.0)
        })
    }

    /// Writes the whole store (records in task order) — the same bytes
    /// an uncapped `vpoc campaign` over these tasks converges on.
    fn flush(&self, records: &[Option<FunctionRecord>]) -> Result<(), String> {
        let mut store = ResultStore::new(
            &self.config.enumerate,
            self.config.semantic.as_ref(),
            self.config.sem_pruned,
        );
        store.records = records.iter().flatten().cloned().collect();
        store.save(&self.store_path).map_err(|e| e.to_string())
    }
}

pub fn serve_cmd(argv: &[String]) -> Result<(), String> {
    let mut rest = argv.to_vec();
    let store_path =
        args::string(&mut rest, "--store")?.ok_or("serve: --store PATH is required")?;
    let socket = args::string(&mut rest, "--socket")?.ok_or("serve: --socket PATH is required")?;
    let max_active =
        args::value::<usize>(&mut rest, "--max-active")?.unwrap_or(DEFAULT_MAX_ACTIVE).max(1);
    let max_queue = args::value::<usize>(&mut rest, "--max-queue")?.unwrap_or(DEFAULT_MAX_QUEUE);
    let request = args::explore_request(&mut rest, "serve")?;
    let tasks = crate::resolve_tasks(&request, "serve")?;

    let cancel = Arc::new(AtomicBool::new(false));
    let mut config = crate::campaign_config(&request);
    config.cancel = Some(Arc::clone(&cancel));
    let store_path = PathBuf::from(store_path);

    // Adopt an existing store: its records seed the warm memo, its
    // config echo must match ours (a store explored under different
    // bounds would not be comparable).
    let mut records: Vec<Option<FunctionRecord>> = vec![None; tasks.len()];
    if store_path.exists() {
        let prior = ResultStore::load(&store_path).map_err(|e| format!("serve: {e}"))?;
        prior
            .check_config(&config.enumerate, config.semantic.as_ref(), config.sem_pruned)
            .map_err(|e| format!("serve: {e}"))?;
        for rec in prior.records {
            match tasks.iter().position(|t| t.name == rec.name) {
                Some(i) => records[i] = Some(rec),
                None => {
                    return Err(format!(
                        "serve: store records `{}`, which none of the served tasks produce",
                        rec.name
                    ))
                }
            }
        }
    }

    let daemon = Arc::new(Daemon {
        tasks,
        records: Mutex::new(records),
        admission: Mutex::new(Admission::default()),
        max_active,
        max_queue,
        store_path,
        config,
        default_budget: request.budget.unwrap_or(DEFAULT_BUDGET),
        target: Target::default(),
        cancel,
    });
    // Flush eagerly so the store exists (with its config echo) before
    // the first query, and a bad path fails at startup, not mid-serve.
    daemon.flush(&daemon.records.lock().unwrap()).map_err(|e| format!("serve: {e}"))?;

    let sock = Path::new(&socket);
    if sock.exists() {
        if UnixStream::connect(sock).is_ok() {
            return Err(format!("serve: {socket} is already served by a live daemon"));
        }
        // Stale socket from a killed daemon; reclaim it.
        std::fs::remove_file(sock).map_err(|e| format!("serve: removing {socket}: {e}"))?;
    }
    let listener = UnixListener::bind(sock).map_err(|e| format!("serve: {socket}: {e}"))?;
    listener.set_nonblocking(true).map_err(|e| format!("serve: {socket}: {e}"))?;
    SHUTDOWN.store(false, Ordering::SeqCst);
    install_signal_handlers();
    eprintln!(
        "vpod: serving {} function(s) on {socket} (store {}, budget {}, {} active / {} queued max)",
        daemon.tasks.len(),
        daemon.store_path.display(),
        daemon.default_budget,
        daemon.max_active,
        daemon.max_queue,
    );

    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let d = Arc::clone(&daemon);
                handles.push(std::thread::spawn(move || handle(stream, &d)));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("serve: accept on {socket}: {e}")),
        }
        handles.retain(|h| !h.is_finished());
    }

    // Graceful drain: suspend in-flight searches at their last merged
    // level (their handlers flush the checkpoints), then exit cleanly.
    daemon.cancel.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    std::fs::remove_file(sock).ok();
    eprintln!("vpod: checkpointed and shut down");
    Ok(())
}

/// Serves one connection: read a request frame, answer, close. All
/// failure modes — short frames, CRC damage, unknown versions — become
/// a clean error response (or a silent close when nothing arrived).
fn handle(mut stream: UnixStream, d: &Daemon) {
    let response = match read_frame(&mut stream) {
        Ok(payload) => match Request::from_bytes(&payload) {
            Ok(req) => respond(d, req),
            Err(e) => Response::Error { message: e.to_string() },
        },
        Err(FrameError::Closed) => return,
        Err(e) => Response::Error { message: e.to_string() },
    };
    let _ = write_frame(&mut stream, &response.to_bytes());
}

fn respond(d: &Daemon, req: Request) -> Response {
    let tm = telemetry::global();
    tm.serve_requests.inc();
    match req {
        Request::Query { function, budget } => query(d, &function, budget),
        Request::List => {
            let records = d.records.lock().unwrap();
            Response::List {
                entries: d
                    .tasks
                    .iter()
                    .zip(records.iter())
                    .map(|(t, rec)| ListEntry {
                        name: t.name.clone(),
                        state: rec.as_ref().map(|r| MemoEntry::new(r).completeness()),
                    })
                    .collect(),
            }
        }
        Request::Telemetry => Response::Telemetry { json: tm.snapshot().to_json() },
        Request::Shutdown => {
            SHUTDOWN.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
    }
}

fn query(d: &Daemon, function: &str, budget: Option<u64>) -> Response {
    let tm = telemetry::global();
    let Some(i) = d.find_task(function) else {
        let names: Vec<&str> = d.tasks.iter().map(|t| t.name.as_str()).collect();
        return Response::Error {
            message: format!("no function `{function}` (available: {})", names.join(", ")),
        };
    };

    // Warm path: a terminal record answers immediately, bypassing
    // admission — no enumeration worker is spawned.
    {
        let records = d.records.lock().unwrap();
        if let Some(rec) = &records[i] {
            if !MemoEntry::new(rec).is_resumable() {
                tm.serve_warm_hits.inc();
                return Response::Memo { record: Box::new(rec.clone()), served: Served::Warm };
            }
        }
    }

    // Cold path: claim an enumeration slot (or queue for one).
    let mut queued = false;
    loop {
        if d.cancel.load(Ordering::SeqCst) || SHUTDOWN.load(Ordering::SeqCst) {
            if queued {
                d.admission.lock().unwrap().queued -= 1;
            }
            return Response::ShuttingDown;
        }
        let mut adm = d.admission.lock().unwrap();
        if adm.running.len() < d.max_active && !adm.running.contains(&i) {
            if queued {
                adm.queued -= 1;
            }
            adm.running.insert(i);
            break;
        }
        if !queued {
            if adm.queued >= d.max_queue {
                tm.serve_rejected.inc();
                return Response::Overloaded;
            }
            adm.queued += 1;
            queued = true;
        }
        drop(adm);
        std::thread::sleep(POLL);
    }

    let response = run_cold(d, i, budget);
    d.admission.lock().unwrap().running.remove(&i);
    response
}

/// Runs (or deepens) one function's enumeration under the request's
/// budget, persists the outcome, and renders the memo response. The
/// caller holds the admission slot for task `i`.
fn run_cold(d: &Daemon, i: usize, budget: Option<u64>) -> Response {
    let tm = telemetry::global();
    // Re-check warmth under the slot: a queued duplicate may find the
    // answer already terminal.
    let prior = d.records.lock().unwrap()[i].clone();
    if let Some(rec) = &prior {
        if !MemoEntry::new(rec).is_resumable() {
            tm.serve_warm_hits.inc();
            return Response::Memo { record: Box::new(rec.clone()), served: Served::Warm };
        }
    }

    tm.serve_cold_runs.inc();
    let mut config = d.config.clone();
    config.budget = Some(budget.unwrap_or(d.default_budget));
    match campaign::explore_function(d.tasks[i].clone(), &d.target, &config, prior) {
        Ok(outcome) => match outcome.record {
            Some(record) => {
                let mut records = d.records.lock().unwrap();
                records[i] = Some(record.clone());
                if let Err(e) = d.flush(&records) {
                    return Response::Error { message: e };
                }
                drop(records);
                Response::Memo {
                    record: Box::new(record),
                    served: Served::Cold { expanded: outcome.expanded },
                }
            }
            // Cancelled before the first checkpoint with no prior state.
            None => Response::ShuttingDown,
        },
        Err(e) => Response::Error { message: e.to_string() },
    }
}
