//! `vpoc query` — client side of the memo daemon protocol.
//!
//! Connects to a `vpoc serve` socket, sends one [`Request`] frame,
//! reads the [`Response`] frame, and renders it — memo answers through
//! the same typed [`MemoEntry`] view the campaign report uses, so a
//! daemon answer and a direct `vpoc explore` row read identically.

use std::os::unix::net::UnixStream;

use phase_order::campaign::store::{Completeness, MemoEntry};
use phase_order::service::{ProtocolError, Request, Response, Served, PROTOCOL_VERSION};
use phase_order::stats::FunctionRow;
use phase_order::wire::{read_frame, write_frame};

use crate::args;

pub fn query_cmd(argv: &[String]) -> Result<(), String> {
    let mut rest = argv.to_vec();
    let socket = args::string(&mut rest, "--socket")?.ok_or("query: --socket PATH is required")?;
    let budget = args::value::<u64>(&mut rest, "--budget")?;
    let list = args::switch(&mut rest, "--list");
    let telemetry = args::switch(&mut rest, "--telemetry");
    let shutdown = args::switch(&mut rest, "--shutdown");
    args::reject_unknown_flags(&rest, "query")?;
    if [list, telemetry, shutdown].iter().filter(|b| **b).count() > 1 {
        return Err("query: --list, --telemetry and --shutdown are mutually exclusive".into());
    }

    let request = if list {
        Request::List
    } else if telemetry {
        Request::Telemetry
    } else if shutdown {
        Request::Shutdown
    } else {
        let function =
            rest.first().ok_or("query: missing function (or --list / --telemetry / --shutdown)")?;
        if rest.len() > 1 {
            return Err(format!("query: unexpected argument `{}`", rest[1]));
        }
        Request::Query { function: function.clone(), budget }
    };

    let response = roundtrip(&socket, &request)?;
    render(&response)
}

/// One frame out, one frame back.
fn roundtrip(socket: &str, request: &Request) -> Result<Response, String> {
    let mut stream = UnixStream::connect(socket)
        .map_err(|e| format!("query: {socket}: {e} (is `vpoc serve` running?)"))?;
    write_frame(&mut stream, &request.to_bytes()).map_err(|e| format!("query: {socket}: {e}"))?;
    let payload = read_frame(&mut stream).map_err(|e| format!("query: {socket}: {e}"))?;
    Response::from_bytes(&payload).map_err(|e| match e {
        // A version skew is an operational situation (daemon from an
        // older build still serving), not a corrupt frame — name both
        // ends so the operator knows which process to upgrade.
        ProtocolError::Version { got } => format!(
            "query: {socket}: daemon speaks protocol version {got}, this client speaks \
             {PROTOCOL_VERSION}; restart the daemon from the same build as the client"
        ),
        e => format!("query: {socket}: {e}"),
    })
}

fn render(response: &Response) -> Result<(), String> {
    match response {
        Response::Memo { record, served } => {
            let entry = MemoEntry::new(record);
            match served {
                Served::Warm => println!("warm: answered from the memo store"),
                Served::Cold { expanded } => {
                    println!("cold: expanded {expanded} parent instance(s) this request")
                }
            }
            println!("{}", FunctionRow::header());
            println!("{}", entry.table3_row().render());
            match entry.completeness() {
                Completeness::Complete => {
                    if let (Some(seq), Some(insts)) = (entry.optimal_ordering(), entry.best_insts())
                    {
                        println!("optimal ordering: {seq} ({insts} instructions)");
                    }
                }
                Completeness::Truncated { level } => {
                    println!("truncated at level {level} (permanent under the daemon's bounds)")
                }
                Completeness::Frontier { level } => {
                    println!("suspended at level {level} — best-so-far above; re-query to deepen")
                }
            }
            Ok(())
        }
        Response::List { entries } => {
            for e in entries {
                let state = match &e.state {
                    None => "unexplored".to_string(),
                    Some(c) => c.to_string(),
                };
                println!("{:<40} {state}", e.name);
            }
            Ok(())
        }
        Response::Telemetry { json } => {
            println!("{json}");
            Ok(())
        }
        Response::Error { message } => Err(format!("query: daemon error: {message}")),
        Response::Overloaded => {
            Err("query: daemon overloaded (admission queue is full); retry later".into())
        }
        Response::ShuttingDown => {
            println!("daemon is shutting down");
            Ok(())
        }
    }
}
