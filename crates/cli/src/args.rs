//! Shared flag parsing for the `vpoc` subcommands.
//!
//! Every subcommand strips its flags out of the argument list with these
//! helpers (so positionals can be read by index afterwards), and all of
//! them accept both the spaced (`--flag VALUE`) and the stuck
//! (`--flag=VALUE`) spelling.
//!
//! The `--jobs` convention is shared across subcommands: absent = serial,
//! `0` = one worker per CPU, `N` = `N` workers — [`resolve_jobs`] maps
//! that onto [`phase_order::Config::jobs`] (where `0` means serial).

use std::str::FromStr;

use phase_order::request::{ExploreRequest, MergeTier, Selector};
use phase_order::SemanticConfig;

/// Strips the first match of any alias in `names` (spaced or `=` form)
/// out of `args`, returning its raw value.
fn take_raw(args: &mut Vec<String>, names: &[&str]) -> Result<Option<String>, String> {
    let mut value = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = std::mem::take(args).into_iter();
    while let Some(a) = it.next() {
        if names.contains(&a.as_str()) {
            value = Some(it.next().ok_or(format!("{} needs a value", names[0]))?);
        } else if let Some(v) =
            names.iter().find_map(|n| a.strip_prefix(n).and_then(|t| t.strip_prefix('=')))
        {
            value = Some(v.to_owned());
        } else {
            rest.push(a);
        }
    }
    *args = rest;
    Ok(value)
}

/// Extracts `--flag VALUE` / `--flag=VALUE`, parsed as `T`.
pub fn value<T: FromStr>(args: &mut Vec<String>, flag: &str) -> Result<Option<T>, String> {
    match take_raw(args, &[flag])? {
        Some(v) => Ok(Some(v.parse().map_err(|_| format!("bad {flag} value `{v}`"))?)),
        None => Ok(None),
    }
}

/// Extracts a string-valued flag (`--flag NAME` / `--flag=NAME`).
pub fn string(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    take_raw(args, &[flag])
}

/// Extracts a boolean switch (`--flag`), returning whether it was present.
pub fn switch(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Extracts `--jobs N` / `-j N` / `--jobs=N`: `None` = serial,
/// `Some(0)` = one worker per CPU, `Some(n)` = `n` workers.
pub fn jobs(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    match take_raw(args, &["--jobs", "-j"])? {
        Some(v) => Ok(Some(v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?)),
        None => Ok(None),
    }
}

/// Maps the CLI `--jobs` convention onto [`phase_order::Config::jobs`]
/// (`0` = serial engine, `N` = `N` workers).
pub fn resolve_jobs(jobs: Option<usize>) -> usize {
    match jobs {
        None => 0,
        Some(0) => phase_order::jobs_per_cpu(),
        Some(n) => n,
    }
}

/// Parses the unified exploration request shared by every exploring
/// subcommand (`explore`, `verify`, `campaign`, `dot`, `serve`).
///
/// Consumes the remaining argument list entirely: the shared flags
/// (`--jobs/-j`, `--max-nodes`, `--merge-tier`, `--paranoid`,
/// `--battery`, `--seed`, `--budget`, `--bench`, `--all-benches`), then
/// the selector and optional `[function]` positionals. Command-specific
/// flags must be stripped *before* calling this — anything left over is
/// rejected as an unknown flag, and extra positionals are errors too.
pub fn explore_request(args: &mut Vec<String>, cmd: &str) -> Result<ExploreRequest, String> {
    let jobs = jobs(args)?;
    let max_nodes = value::<usize>(args, "--max-nodes")?;
    let battery = value::<usize>(args, "--battery")?;
    let seed = value::<u64>(args, "--seed")?;
    let budget = value::<u64>(args, "--budget")?;
    let bench = string(args, "--bench")?;
    let all_benches = switch(args, "--all-benches");
    let tier = match string(args, "--merge-tier")?.as_deref() {
        None => MergeTier::default(),
        Some(t) => MergeTier::parse(t).map_err(|e| format!("--merge-tier: {e}"))?,
    };
    let paranoid = switch(args, "--paranoid");
    reject_unknown_flags(args, cmd)?;

    let (selector, function, used) = if all_benches {
        if bench.is_some() {
            return Err(format!("{cmd}: --all-benches conflicts with --bench"));
        }
        (Selector::AllBenches, args.first().cloned(), 1)
    } else if let Some(name) = bench {
        (Selector::Bench(name), args.first().cloned(), 1)
    } else {
        let path =
            args.first().ok_or(format!("{cmd}: missing file (or --bench NAME/--all-benches)"))?;
        (Selector::File(path.into()), args.get(1).cloned(), 2)
    };
    if args.len() > used {
        return Err(format!("{cmd}: unexpected argument `{}`", args[used]));
    }

    let mut request = ExploreRequest::new(selector);
    request.function = function;
    request.config.jobs = resolve_jobs(jobs);
    if let Some(n) = max_nodes {
        request.config.max_nodes = n;
    }
    request.config.paranoid = paranoid;
    request.tier = tier;
    let sem = SemanticConfig::default();
    request.semantic = SemanticConfig {
        battery: battery.unwrap_or(sem.battery),
        seed: seed.unwrap_or(sem.seed),
        ..sem
    };
    request.budget = budget;
    request.validate().map_err(|e| format!("{cmd}: {e}"))?;
    Ok(request)
}

/// Rejects leftover `--flags` after a subcommand extracted everything it
/// understands, so typos fail loudly instead of parsing as positionals.
pub fn reject_unknown_flags(args: &[String], cmd: &str) -> Result<(), String> {
    for a in args {
        if a.starts_with("--") || (a.starts_with('-') && a.len() > 1) {
            return Err(format!("{cmd}: unknown flag `{a}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn value_takes_spaced_and_stuck_forms() {
        let mut a = v(&["a.mc", "--max-nodes", "99", "f"]);
        assert_eq!(value::<usize>(&mut a, "--max-nodes").unwrap(), Some(99));
        assert_eq!(a, v(&["a.mc", "f"]));
        let mut a = v(&["--max-nodes=4000000"]);
        assert_eq!(value::<usize>(&mut a, "--max-nodes").unwrap(), Some(4_000_000));
        assert!(a.is_empty());
        assert!(value::<usize>(&mut v(&["--max-nodes"]), "--max-nodes").is_err());
        assert!(value::<usize>(&mut v(&["--max-nodes=x"]), "--max-nodes").is_err());
    }

    #[test]
    fn battery_and_seed_parse_via_value() {
        let mut a = v(&["--battery", "8", "--seed=7"]);
        assert_eq!(value::<usize>(&mut a, "--battery").unwrap(), Some(8));
        assert_eq!(value::<u64>(&mut a, "--seed").unwrap(), Some(7));
        assert!(a.is_empty());
        assert!(value::<u64>(&mut v(&["--seed=pi"]), "--seed").is_err());
    }

    #[test]
    fn string_takes_bench_names() {
        let mut a = v(&["--bench", "sha", "sha_update"]);
        assert_eq!(string(&mut a, "--bench").unwrap(), Some("sha".into()));
        assert_eq!(a, v(&["sha_update"]));
        let mut a = v(&["--bench=fft"]);
        assert_eq!(string(&mut a, "--bench").unwrap(), Some("fft".into()));
        assert!(string(&mut v(&["--bench"]), "--bench").is_err());
    }

    #[test]
    fn switch_detects_presence() {
        let mut a = v(&["x", "--resume", "y"]);
        assert!(switch(&mut a, "--resume"));
        assert_eq!(a, v(&["x", "y"]));
        assert!(!switch(&mut a, "--resume"));
    }

    #[test]
    fn jobs_accepts_all_spellings() {
        let mut a = v(&["a.mc", "--jobs", "4"]);
        assert_eq!(jobs(&mut a).unwrap(), Some(4));
        assert_eq!(a, v(&["a.mc"]));
        assert_eq!(jobs(&mut v(&["-j", "2"])).unwrap(), Some(2));
        assert_eq!(jobs(&mut v(&["--jobs=0"])).unwrap(), Some(0));
        assert_eq!(jobs(&mut v(&["a.mc"])).unwrap(), None);
        assert!(jobs(&mut v(&["--jobs"])).is_err());
        assert!(jobs(&mut v(&["--jobs", "x"])).is_err());
    }

    #[test]
    fn resolve_jobs_maps_the_cli_convention() {
        assert_eq!(resolve_jobs(None), 0);
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(Some(0)) >= 1, "0 means one worker per CPU");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(reject_unknown_flags(&v(&["a.mc", "f"]), "explore").is_ok());
        assert!(reject_unknown_flags(&v(&["--bogus"]), "explore").is_err());
        assert!(reject_unknown_flags(&v(&["-x"]), "explore").is_err());
    }
}
