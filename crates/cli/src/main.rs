//! `vpoc` — command-line driver for the VPO-style compiler and the
//! phase-order exploration engine.
//!
//! ```text
//! vpoc compile  <file.mc> [--seq LETTERS | --batch | --naive] [--finalize | --emit-asm]
//! vpoc run      <file.mc> <function> [args...]        # compile (batch) and execute
//! vpoc explore  <file.mc> [function]                  # enumerate the space(s)
//! vpoc dot      <file.mc> <function>                  # space as Graphviz
//! vpoc phases                                         # list the 15 phases
//! ```
//!
//! `--seq LETTERS` applies an explicit phase ordering, e.g. `--seq skcshu`
//! (the letter designations of Table 1).

use std::process::ExitCode;

use phase_order::enumerate::{enumerate, Config};
use phase_order::stats::FunctionRow;
use vpo_opt::batch::batch_compile;
use vpo_opt::{attempt, PhaseId, Target};
use vpo_sim::Machine;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("vpoc: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  vpoc compile <file.mc> [--seq LETTERS | --batch]");
            eprintln!("  vpoc run     <file.mc> <function> [int args...]");
            eprintln!("  vpoc explore <file.mc> [function]");
            eprintln!("  vpoc dot     <file.mc> <function>");
            eprintln!("  vpoc phases");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).ok_or("missing command")?;
    match cmd {
        "phases" => {
            for p in PhaseId::ALL {
                println!("{}  {}", p.letter(), p.name());
            }
            Ok(())
        }
        "compile" => compile_cmd(&args[1..]),
        "run" => run_cmd(&args[1..]),
        "explore" => explore_cmd(&args[1..]),
        "dot" => dot_cmd(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load(path: &str) -> Result<vpo_rtl::Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    vpo_frontend::compile(&src).map_err(|e| format!("{path}: {e}"))
}

fn parse_seq(letters: &str) -> Result<Vec<PhaseId>, String> {
    letters
        .chars()
        .map(|c| PhaseId::from_letter(c).ok_or(format!("unknown phase letter `{c}`")))
        .collect()
}

fn compile_cmd(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("compile: missing file")?;
    let mut program = load(path)?;
    let target = Target::default();
    let finalize = args.iter().any(|a| a == "--finalize");
    let emit_asm = args.iter().any(|a| a == "--emit-asm");
    let mode = args
        .get(1)
        .map(String::as_str)
        .filter(|m| *m != "--finalize" && *m != "--emit-asm")
        .unwrap_or("--batch");
    for f in &mut program.functions {
        match mode {
            "--batch" => {
                let stats = batch_compile(f, &target);
                eprintln!(
                    "; {}: {} attempted, {} active: {}",
                    f.name,
                    stats.attempted,
                    stats.active,
                    stats.sequence.iter().map(|p| p.letter()).collect::<String>()
                );
            }
            "--naive" => {}
            "--seq" => {
                let letters = args.get(2).ok_or("compile: --seq needs letters")?;
                for p in parse_seq(letters)? {
                    attempt(f, p, &target);
                }
            }
            other => return Err(format!("compile: unknown mode `{other}`")),
        }
        if !emit_asm {
            if finalize {
                println!("{}", vpo_opt::finalize::fix_entry_exit(f, &target));
            } else {
                println!("{f}");
            }
        }
    }
    if emit_asm {
        let asm = vpo_opt::emit::emit_program(&program, &target)
            .map_err(|e| e.to_string())?;
        println!("{asm}");
    }
    Ok(())
}

fn run_cmd(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run: missing file")?;
    let func = args.get(1).ok_or("run: missing function name")?;
    let call_args: Vec<i32> = args[2..]
        .iter()
        .map(|a| a.parse().map_err(|_| format!("bad integer argument `{a}`")))
        .collect::<Result<_, _>>()?;
    let program = load(path)?;
    let target = Target::default();
    let mut optimized = program
        .function(func)
        .ok_or(format!("no function `{func}`"))?
        .clone();
    batch_compile(&mut optimized, &target);

    let mut naive = Machine::new(&program);
    let expected = naive.call(func, &call_args).map_err(|e| e.to_string())?;
    let mut opt = Machine::new(&program);
    let got = opt.call_instance(&optimized, &call_args).map_err(|e| e.to_string())?;
    if expected != got {
        return Err(format!(
            "MISCOMPILATION: naive={expected}, optimized={got}"
        ));
    }
    println!("{func}({call_args:?}) = {got}");
    println!(
        "dynamic instructions: naive {} -> optimized {}",
        naive.dynamic_insts(),
        opt.dynamic_insts()
    );
    Ok(())
}

fn explore_cmd(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("explore: missing file")?;
    let program = load(path)?;
    let target = Target::default();
    let filter = args.get(1);
    println!("{}", FunctionRow::header());
    for f in &program.functions {
        if let Some(name) = filter {
            if &f.name != name {
                continue;
            }
        }
        let e = enumerate(f, &target, &Config::default());
        println!("{}", FunctionRow::new(f.name.clone(), f, &e).render());
    }
    Ok(())
}

fn dot_cmd(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("dot: missing file")?;
    let func = args.get(1).ok_or("dot: missing function name")?;
    let program = load(path)?;
    let f = program.function(func).ok_or(format!("no function `{func}`"))?;
    let e = enumerate(f, &Target::default(), &Config::default());
    println!("{}", e.space.to_dot());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seq_round_trips() {
        let seq = parse_seq("skch").unwrap();
        assert_eq!(
            seq,
            vec![PhaseId::InsnSelect, PhaseId::RegAlloc, PhaseId::Cse, PhaseId::DeadAssign]
        );
        assert!(parse_seq("xyz").is_err());
    }

    #[test]
    fn end_to_end_commands() {
        let dir = std::env::temp_dir().join("vpoc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.mc");
        std::fs::write(&file, "int triple(int x) { return x * 3; }").unwrap();
        let path = file.to_str().unwrap().to_owned();
        run(&["compile".into(), path.clone()]).unwrap();
        run(&["compile".into(), path.clone(), "--batch".into(), "--finalize".into()]).unwrap();
        run(&["compile".into(), path.clone(), "--batch".into(), "--emit-asm".into()]).unwrap();
        run(&["compile".into(), path.clone(), "--seq".into(), "sqk".into()]).unwrap();
        run(&["run".into(), path.clone(), "triple".into(), "14".into()]).unwrap();
        run(&["explore".into(), path.clone()]).unwrap();
        run(&["dot".into(), path, "triple".into()]).unwrap();
        run(&["phases".into()]).unwrap();
        assert!(run(&["bogus".into()]).is_err());
    }
}
