//! `vpoc` — command-line driver for the VPO-style compiler and the
//! phase-order exploration engine.
//!
//! ```text
//! vpoc compile  <file.mc> [--seq LETTERS | --batch | --naive] [--finalize | --emit-asm]
//! vpoc run      <file.mc> <function> [args...]        # compile (batch) and execute
//! vpoc explore  <file.mc> [function] [--jobs N]       # enumerate the space(s)
//! vpoc verify   <file.mc>|--bench NAME [function]     # differential oracle
//! vpoc dot      <file.mc> <function> [--jobs N]       # space as Graphviz
//! vpoc phases                                         # list the 15 phases
//! ```
//!
//! `--seq LETTERS` applies an explicit phase ordering, e.g. `--seq skcshu`
//! (the letter designations of Table 1). `--jobs N` enumerates each
//! function's space with N worker threads (`--jobs 0` = one per CPU;
//! the default is serial) — the resulting space is identical to the
//! serial engine's for any job count.
//!
//! `verify` enumerates each function's space and runs the differential
//! equivalence oracle over it: every distinct instance is rematerialized
//! and executed on a seeded input battery, checking that all orderings
//! preserve behaviour and that fingerprint-merged paths are genuinely
//! identical. `--bench NAME` verifies a built-in MiBench kernel set
//! instead of a file; `--max-nodes N` bounds the enumeration,
//! `--battery N` and `--seed S` shape the input battery.

use std::process::ExitCode;

use phase_order::enumerate::{enumerate, enumerate_parallel, Config};
use phase_order::oracle::{self, OracleConfig};
use phase_order::stats::FunctionRow;
use vpo_opt::batch::batch_compile;
use vpo_opt::{attempt, PhaseId, Target};
use vpo_sim::Machine;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("vpoc: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  vpoc compile <file.mc> [--seq LETTERS | --batch]");
            eprintln!("  vpoc run     <file.mc> <function> [int args...]");
            eprintln!("  vpoc explore <file.mc> [function] [--jobs N]");
            eprintln!("  vpoc verify  <file.mc>|--bench NAME [function] [--jobs N]");
            eprintln!("               [--max-nodes N] [--battery N] [--seed S]");
            eprintln!("  vpoc dot     <file.mc> <function> [--jobs N]");
            eprintln!("  vpoc phases");
            eprintln!();
            eprintln!("  --jobs N   enumerate/verify with N worker threads (0 = one per");
            eprintln!("             CPU); results are identical for any job count");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).ok_or("missing command")?;
    match cmd {
        "phases" => {
            for p in PhaseId::ALL {
                println!("{}  {}", p.letter(), p.name());
            }
            Ok(())
        }
        "compile" => compile_cmd(&args[1..]),
        "run" => run_cmd(&args[1..]),
        "explore" => explore_cmd(&args[1..]),
        "verify" => verify_cmd(&args[1..]),
        "dot" => dot_cmd(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load(path: &str) -> Result<vpo_rtl::Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    vpo_frontend::compile(&src).map_err(|e| format!("{path}: {e}"))
}

fn parse_seq(letters: &str) -> Result<Vec<PhaseId>, String> {
    letters
        .chars()
        .map(|c| PhaseId::from_letter(c).ok_or(format!("unknown phase letter `{c}`")))
        .collect()
}

/// Extracts a `--jobs N` flag, returning the remaining arguments and the
/// enumeration entry point it selects: `None` means the serial engine,
/// `Some(n)` the parallel engine with `n` workers (`0` = one per CPU).
fn parse_jobs(args: &[String]) -> Result<(Vec<String>, Option<usize>), String> {
    let mut rest = Vec::new();
    let mut jobs = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" || a == "-j" {
            let n = it.next().ok_or("--jobs needs a thread count")?;
            jobs = Some(n.parse().map_err(|_| format!("bad --jobs value `{n}`"))?);
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            jobs = Some(n.parse().map_err(|_| format!("bad --jobs value `{n}`"))?);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, jobs))
}

/// Enumerates with the engine `--jobs` selected.
fn enumerate_with_jobs(
    f: &vpo_rtl::Function,
    target: &Target,
    jobs: Option<usize>,
) -> phase_order::Enumeration {
    match jobs {
        None => enumerate(f, target, &Config::default()),
        Some(n) => enumerate_parallel(f, target, &Config { jobs: n, ..Config::default() }),
    }
}

fn compile_cmd(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("compile: missing file")?;
    let mut program = load(path)?;
    let target = Target::default();
    let finalize = args.iter().any(|a| a == "--finalize");
    let emit_asm = args.iter().any(|a| a == "--emit-asm");
    let mode = args
        .get(1)
        .map(String::as_str)
        .filter(|m| *m != "--finalize" && *m != "--emit-asm")
        .unwrap_or("--batch");
    for f in &mut program.functions {
        match mode {
            "--batch" => {
                let stats = batch_compile(f, &target);
                eprintln!(
                    "; {}: {} attempted, {} active: {}",
                    f.name,
                    stats.attempted,
                    stats.active,
                    stats.sequence.iter().map(|p| p.letter()).collect::<String>()
                );
            }
            "--naive" => {}
            "--seq" => {
                let letters = args.get(2).ok_or("compile: --seq needs letters")?;
                for p in parse_seq(letters)? {
                    attempt(f, p, &target);
                }
            }
            other => return Err(format!("compile: unknown mode `{other}`")),
        }
        if !emit_asm {
            if finalize {
                println!("{}", vpo_opt::finalize::fix_entry_exit(f, &target));
            } else {
                println!("{f}");
            }
        }
    }
    if emit_asm {
        let asm = vpo_opt::emit::emit_program(&program, &target).map_err(|e| e.to_string())?;
        println!("{asm}");
    }
    Ok(())
}

fn run_cmd(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run: missing file")?;
    let func = args.get(1).ok_or("run: missing function name")?;
    let call_args: Vec<i32> = args[2..]
        .iter()
        .map(|a| a.parse().map_err(|_| format!("bad integer argument `{a}`")))
        .collect::<Result<_, _>>()?;
    let program = load(path)?;
    let target = Target::default();
    let mut optimized = program.function(func).ok_or(format!("no function `{func}`"))?.clone();
    batch_compile(&mut optimized, &target);

    let mut naive = Machine::new(&program);
    let expected = naive.call(func, &call_args).map_err(|e| e.to_string())?;
    let mut opt = Machine::new(&program);
    let got = opt.call_instance(&optimized, &call_args).map_err(|e| e.to_string())?;
    if expected != got {
        return Err(format!("MISCOMPILATION: naive={expected}, optimized={got}"));
    }
    println!("{func}({call_args:?}) = {got}");
    println!(
        "dynamic instructions: naive {} -> optimized {}",
        naive.dynamic_insts(),
        opt.dynamic_insts()
    );
    Ok(())
}

fn explore_cmd(args: &[String]) -> Result<(), String> {
    let (args, jobs) = parse_jobs(args)?;
    let path = args.first().ok_or("explore: missing file")?;
    let program = load(path)?;
    let target = Target::default();
    let filter = args.get(1);
    println!("{}", FunctionRow::header());
    for f in &program.functions {
        if let Some(name) = filter {
            if &f.name != name {
                continue;
            }
        }
        let e = enumerate_with_jobs(f, &target, jobs);
        println!("{}", FunctionRow::new(f.name.clone(), f, &e).render());
    }
    Ok(())
}

/// Extracts a `--flag N` / `--flag=N` integer option, returning the
/// remaining arguments and the parsed value.
fn parse_opt<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<(Vec<String>, Option<T>), String> {
    let mut rest = Vec::new();
    let mut value = None;
    let prefix = format!("{flag}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let raw = if a == flag {
            Some(it.next().ok_or(format!("{flag} needs a value"))?.as_str())
        } else {
            a.strip_prefix(&prefix)
        };
        match raw {
            Some(v) => {
                value = Some(v.parse().map_err(|_| format!("bad {flag} value `{v}`"))?);
            }
            None => rest.push(a.clone()),
        }
    }
    Ok((rest, value))
}

fn verify_cmd(args: &[String]) -> Result<(), String> {
    let (args, jobs) = parse_jobs(args)?;
    let (args, max_nodes) = parse_opt::<usize>(&args, "--max-nodes")?;
    let (args, battery) = parse_opt::<usize>(&args, "--battery")?;
    let (args, seed) = parse_opt::<u64>(&args, "--seed")?;
    let (mut args, bench) = {
        // `--bench NAME` takes a string, not an integer.
        let mut rest = Vec::new();
        let mut bench = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--bench" {
                bench = Some(it.next().ok_or("--bench needs a benchmark name")?.clone());
            } else if let Some(n) = a.strip_prefix("--bench=") {
                bench = Some(n.to_owned());
            } else {
                rest.push(a.clone());
            }
        }
        (rest, bench)
    };

    let program = match &bench {
        Some(name) => {
            let b = mibench::all().into_iter().find(|b| b.name == *name).ok_or(format!(
                "no benchmark `{name}` (try bitcount, dijkstra, fft, jpeg, sha, stringsearch)"
            ))?;
            args.insert(0, String::new()); // keep the [function] filter in args[1]
            b.compile().map_err(|e| format!("{name}: {e}"))?
        }
        None => load(args.first().ok_or("verify: missing file (or --bench NAME)")?)?,
    };
    let filter = args.get(1);

    let target = Target::default();
    let enum_config = Config {
        max_nodes: max_nodes.unwrap_or(Config::default().max_nodes),
        jobs: jobs.unwrap_or(1),
        ..Config::default()
    };
    let oracle_config = OracleConfig {
        battery: battery.unwrap_or(OracleConfig::default().battery),
        seed: seed.unwrap_or(OracleConfig::default().seed),
        jobs: jobs.unwrap_or(1),
        ..OracleConfig::default()
    };

    let mut findings = 0usize;
    for f in &program.functions {
        if let Some(name) = filter {
            if !name.is_empty() && &f.name != name {
                continue;
            }
        }
        let (e, report) =
            oracle::verify_function(&program, f, &target, &enum_config, &oracle_config);
        let tag = if e.outcome.is_complete() { "" } else { " [space truncated]" };
        println!("{}{tag}", report.summary());
        for finding in &report.findings {
            println!("  !! {finding:?}");
        }
        findings += report.findings.len();
    }
    if findings > 0 {
        return Err(format!("verification FAILED with {findings} finding(s)"));
    }
    Ok(())
}

fn dot_cmd(args: &[String]) -> Result<(), String> {
    let (args, jobs) = parse_jobs(args)?;
    let path = args.first().ok_or("dot: missing file")?;
    let func = args.get(1).ok_or("dot: missing function name")?;
    let program = load(path)?;
    let f = program.function(func).ok_or(format!("no function `{func}`"))?;
    let e = enumerate_with_jobs(f, &Target::default(), jobs);
    println!("{}", e.space.to_dot());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seq_round_trips() {
        let seq = parse_seq("skch").unwrap();
        assert_eq!(
            seq,
            vec![PhaseId::InsnSelect, PhaseId::RegAlloc, PhaseId::Cse, PhaseId::DeadAssign]
        );
        assert!(parse_seq("xyz").is_err());
    }

    #[test]
    fn end_to_end_commands() {
        let dir = std::env::temp_dir().join("vpoc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.mc");
        std::fs::write(&file, "int triple(int x) { return x * 3; }").unwrap();
        let path = file.to_str().unwrap().to_owned();
        run(&["compile".into(), path.clone()]).unwrap();
        run(&["compile".into(), path.clone(), "--batch".into(), "--finalize".into()]).unwrap();
        run(&["compile".into(), path.clone(), "--batch".into(), "--emit-asm".into()]).unwrap();
        run(&["compile".into(), path.clone(), "--seq".into(), "sqk".into()]).unwrap();
        run(&["run".into(), path.clone(), "triple".into(), "14".into()]).unwrap();
        run(&["explore".into(), path.clone()]).unwrap();
        run(&["explore".into(), path.clone(), "--jobs".into(), "2".into()]).unwrap();
        run(&["explore".into(), path.clone(), "--jobs=0".into()]).unwrap();
        run(&["verify".into(), path.clone()]).unwrap();
        run(&["verify".into(), path.clone(), "--jobs".into(), "2".into()]).unwrap();
        run(&[
            "verify".into(),
            path.clone(),
            "triple".into(),
            "--battery=2".into(),
            "--seed=7".into(),
            "--max-nodes=500".into(),
        ])
        .unwrap();
        run(&["dot".into(), path.clone(), "triple".into()]).unwrap();
        run(&["dot".into(), path.clone(), "triple".into(), "-j".into(), "4".into()]).unwrap();
        run(&["phases".into()]).unwrap();
        assert!(run(&["bogus".into()]).is_err());
        assert!(run(&["explore".into(), path.clone(), "--jobs".into()]).is_err());
        assert!(run(&["verify".into(), path.clone(), "--battery".into()]).is_err());
        assert!(run(&["verify".into(), path.clone(), "--seed=pi".into()]).is_err());
        assert!(run(&["verify".into(), "--bench".into(), "nope".into()]).is_err());
        assert!(run(&["explore".into(), path, "--jobs".into(), "x".into()]).is_err());
    }

    #[test]
    fn verify_bench_kernel() {
        // A single small MiBench function end to end through the oracle.
        run(&[
            "verify".into(),
            "--bench".into(),
            "bitcount".into(),
            "bit_count".into(),
            "--max-nodes=2000".into(),
            "--battery=2".into(),
        ])
        .unwrap();
    }

    #[test]
    fn parse_opt_extracts_values() {
        let (rest, v) = parse_opt::<usize>(
            &["a.mc".into(), "--max-nodes".into(), "99".into(), "f".into()],
            "--max-nodes",
        )
        .unwrap();
        assert_eq!(rest, vec!["a.mc".to_owned(), "f".to_owned()]);
        assert_eq!(v, Some(99));
        let (_, v) = parse_opt::<u64>(&["--seed=5".into()], "--seed").unwrap();
        assert_eq!(v, Some(5));
        assert!(parse_opt::<usize>(&["--battery=x".into()], "--battery").is_err());
    }

    #[test]
    fn parse_jobs_extracts_flag() {
        let (rest, jobs) =
            parse_jobs(&["a.mc".into(), "--jobs".into(), "4".into(), "f".into()]).unwrap();
        assert_eq!(rest, vec!["a.mc".to_owned(), "f".to_owned()]);
        assert_eq!(jobs, Some(4));
        let (rest, jobs) = parse_jobs(&["a.mc".into()]).unwrap();
        assert_eq!(rest, vec!["a.mc".to_owned()]);
        assert_eq!(jobs, None);
    }
}
