//! `vpoc` — command-line driver for the VPO-style compiler and the
//! phase-order exploration engine.
//!
//! ```text
//! vpoc compile  <file.mc> [--seq LETTERS | --batch | --naive] [--finalize | --emit-asm]
//! vpoc run      <file.mc> <function> [args...]        # compile (batch) and execute
//! vpoc explore  <file.mc> [function] [--jobs N]       # enumerate the space(s)
//! vpoc verify   <file.mc>|--bench NAME [function]     # differential oracle
//! vpoc campaign <file.mc>|--bench NAME|--all-benches  # resumable multi-function run
//! vpoc audit-quotient <file.mc>|--bench NAME          # pruned-vs-annotation loss audit
//! vpoc dot      <file.mc> <function> [--jobs N]       # space as Graphviz
//! vpoc phases                                         # list the 15 phases
//! ```
//!
//! `--seq LETTERS` applies an explicit phase ordering, e.g. `--seq skcshu`
//! (the letter designations of Table 1). `--jobs N` enumerates each
//! function's space with N worker threads (`--jobs 0` = one per CPU;
//! the default is serial) — the resulting space is identical to the
//! serial engine's for any job count.
//!
//! `verify` enumerates each function's space and runs the differential
//! equivalence oracle over it: every distinct instance is rematerialized
//! and executed on a seeded input battery, checking that all orderings
//! preserve behaviour and that fingerprint-merged paths are genuinely
//! identical. `--bench NAME` verifies a built-in MiBench kernel set
//! instead of a file; `--max-nodes N` bounds the enumeration,
//! `--battery N` and `--seed S` shape the input battery.
//!
//! The simulating subcommands (`run`, `verify`) accept `--sim-engine
//! interp|threaded|both`: `threaded` (the default) is the pre-lowered
//! direct-threaded engine, `interp` the tree-walking reference, and
//! `both` runs the work on each engine and errors unless the reports are
//! bit-identical — the sim differential gate. (`explore` and `campaign`
//! never simulate, so they take no engine flag.)
//!
//! `campaign` explores **every** function of a file, benchmark, or the
//! whole suite over one shared worker pool, checkpointing each completed
//! function to `--store PATH`. A killed campaign re-run with `--resume`
//! skips the stored functions and converges on a store byte-identical to
//! an uninterrupted run's; `--max-functions N` stops after N fresh
//! functions (a deterministic stand-in for an interruption). The final
//! report is the aggregate Table-3 summary over all stored records.
//!
//! `explore`, `verify` and `campaign` all accept `--metrics PATH`: the
//! global [`phase_order::telemetry`] registry is reset before the work
//! and its snapshot written to `PATH` as deterministic-schema JSON
//! afterwards (see DESIGN.md §9).

mod args;
#[cfg(unix)]
mod client;
#[cfg(unix)]
mod serve;

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use phase_order::audit;
use phase_order::campaign::store::{Completeness, MemoEntry};
use phase_order::campaign::{self, CampaignConfig, FunctionTask};
use phase_order::enumerate::{enumerate, enumerate_semantic, enumerate_semantic_pruned, Config};
use phase_order::oracle::{self, OracleConfig};
use phase_order::request::{ExploreRequest, MergeTier, Selector};
use phase_order::stats::FunctionRow;
use vpo_opt::batch::batch_compile;
use vpo_opt::{attempt, PhaseId, Target};
use vpo_sim::{Machine, SimEngine};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("vpoc: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  vpoc compile  <file.mc> [--seq LETTERS | --batch]");
            eprintln!("  vpoc run      <file.mc> <function> [int args...] [--sim-engine E]");
            eprintln!("  vpoc explore  <file.mc> [function] [--jobs N] [--max-nodes N]");
            eprintln!("                [--merge-tier T] [--paranoid] [--metrics PATH]");
            eprintln!("  vpoc verify   <file.mc>|--bench NAME [function] [--jobs N]");
            eprintln!("                [--max-nodes N] [--battery N] [--seed S] [--metrics PATH]");
            eprintln!("                [--merge-tier T] [--paranoid]");
            eprintln!("                [--sim-engine interp|threaded|both]");
            eprintln!("  vpoc campaign <file.mc>|--bench NAME|--all-benches [function]");
            eprintln!("                [--store PATH] [--resume] [--jobs N] [--max-nodes N]");
            eprintln!("                [--max-functions N] [--budget N] [--merge-tier T]");
            eprintln!("                [--paranoid] [--metrics PATH]");
            eprintln!("  vpoc serve    <file.mc>|--bench NAME|--all-benches --store PATH");
            eprintln!("                --socket PATH [--budget N] [--jobs N] [--max-active N]");
            eprintln!("                [--max-queue N] [--merge-tier T] [--paranoid]");
            eprintln!("  vpoc query    --socket PATH <function> [--budget N]");
            eprintln!("  vpoc query    --socket PATH --list|--telemetry|--shutdown");
            eprintln!("  vpoc audit-quotient <file.mc>|--bench NAME [function] [--jobs N]");
            eprintln!("                [--max-nodes N] [--battery N] [--seed S] [--metrics PATH]");
            eprintln!("  vpoc dot      <file.mc> <function> [--jobs N] [--merge-tier T]");
            eprintln!("  vpoc phases");
            eprintln!();
            eprintln!("  --jobs N       enumerate/verify with N worker threads (0 = one per");
            eprintln!("                 CPU); results are identical for any job count");
            eprintln!("  --merge-tier T merge instances by `fingerprint` (default; §4.2.1's");
            eprintln!("                 canonical-form identity), by `semantic` (behavioral");
            eprintln!("                 signature: seeded battery + dynamic counts + structure),");
            eprintln!("                 or by `semantic-pruned` (skip expanding signature hits");
            eprintln!("                 whose one-step successors are subsumed by their class");
            eprintln!("                 representative's; audit the loss with audit-quotient)");
            eprintln!("  --paranoid     double-check every merge: byte-compare fingerprint");
            eprintln!("                 hits, escalate signature hits to an extended battery");
            eprintln!("  --metrics PATH write a telemetry snapshot of the run as JSON");
            eprintln!("  --sim-engine E simulate with `threaded` (default), `interp` (the");
            eprintln!("                 reference), or `both` (differential gate: error");
            eprintln!("                 unless the engines agree bit-identically)");
            eprintln!("  --budget N     suspend each function's search after N merged parent");
            eprintln!("                 expansions (checkpointing its frontier for resume);");
            eprintln!("                 for `query`, the per-request exploration budget");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let cmd = argv.first().map(String::as_str).ok_or("missing command")?;
    match cmd {
        "phases" => {
            for p in PhaseId::ALL {
                println!("{}  {}", p.letter(), p.name());
            }
            Ok(())
        }
        "compile" => compile_cmd(&argv[1..]),
        "run" => run_cmd(&argv[1..]),
        "explore" => explore_cmd(&argv[1..]),
        "verify" => verify_cmd(&argv[1..]),
        "campaign" => campaign_cmd(&argv[1..]),
        "audit-quotient" => audit_quotient_cmd(&argv[1..]),
        #[cfg(unix)]
        "serve" => serve::serve_cmd(&argv[1..]),
        #[cfg(unix)]
        "query" => client::query_cmd(&argv[1..]),
        #[cfg(not(unix))]
        "serve" | "query" => Err(format!("{cmd}: only available on unix platforms")),
        "dot" => dot_cmd(&argv[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load(path: &str) -> Result<vpo_rtl::Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    vpo_frontend::compile(&src).map_err(|e| format!("{path}: {e}"))
}

fn load_bench(name: &str) -> Result<vpo_rtl::Program, String> {
    let b = mibench::find(name).ok_or_else(|| {
        let names: Vec<&str> = mibench::all().iter().map(|b| b.name).collect();
        format!("no benchmark `{name}` (try {})", names.join(", "))
    })?;
    b.compile().map_err(|e| format!("{name}: {e}"))
}

/// Errors out when a `[function]` filter names no function of the
/// program — a silently empty report would read as success.
fn require_function(program: &vpo_rtl::Program, name: &str, cmd: &str) -> Result<(), String> {
    if program.functions.iter().any(|f| f.name == name) {
        return Ok(());
    }
    let names: Vec<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();
    Err(format!("{cmd}: no function `{name}` (available: {})", names.join(", ")))
}

/// Resolves a request's selector to the single program the
/// one-program-at-a-time subcommands (`explore`, `verify`, `dot`) work
/// on, checking the `[function]` filter names a real function.
fn resolve_program(request: &ExploreRequest, cmd: &str) -> Result<vpo_rtl::Program, String> {
    let program = match &request.selector {
        Selector::File(path) => load(&path.to_string_lossy())?,
        Selector::Bench(name) => load_bench(name)?,
        Selector::AllBenches => {
            return Err(format!("{cmd}: --all-benches only applies to campaign and serve"))
        }
    };
    if let Some(name) = &request.function {
        require_function(&program, name, cmd)?;
    }
    Ok(program)
}

/// Resolves a request's selector to the campaign/serve task list: the
/// whole suite, one benchmark, or every function of a file. Suite and
/// benchmark tasks get benchmark-qualified names so a store can span
/// programs without clashes; every task carries its program so the
/// semantic tier can simulate instances. A `[function]` filter matches
/// a qualified name exactly or any task's bare function name; matching
/// nothing is an error.
fn resolve_tasks(request: &ExploreRequest, cmd: &str) -> Result<Vec<FunctionTask>, String> {
    let program_tasks = |p: vpo_rtl::Program, qualify: Option<&str>| -> Vec<FunctionTask> {
        let p = Arc::new(p);
        p.functions
            .iter()
            .map(|f| FunctionTask {
                name: match qualify {
                    Some(q) => format!("{q}::{}", f.name),
                    None => f.name.clone(),
                },
                func: f.clone(),
                program: Some(Arc::clone(&p)),
            })
            .collect()
    };
    let mut tasks = match &request.selector {
        Selector::AllBenches => {
            let mut tasks = Vec::new();
            for b in mibench::all() {
                let p = b.compile().map_err(|e| format!("{}: {e}", b.name))?;
                tasks.extend(program_tasks(p, Some(b.name)));
            }
            tasks
        }
        Selector::Bench(name) => program_tasks(load_bench(name)?, Some(name)),
        Selector::File(path) => program_tasks(load(&path.to_string_lossy())?, None),
    };
    if let Some(name) = &request.function {
        let matches =
            |t: &FunctionTask| t.name == *name || t.name.rsplit("::").next() == Some(name.as_str());
        if !tasks.iter().any(matches) {
            let names: Vec<&str> = tasks.iter().map(|t| t.name.as_str()).collect();
            return Err(format!("{cmd}: no function `{name}` (available: {})", names.join(", ")));
        }
        tasks.retain(matches);
    }
    Ok(tasks)
}

/// Maps a request onto the campaign driver's options (shared by
/// `campaign` and the daemon; `resume`/`stop_after`/`cancel` stay at
/// their defaults for the caller to fill in).
fn campaign_config(request: &ExploreRequest) -> CampaignConfig {
    CampaignConfig {
        enumerate: Config { jobs: 0, ..request.config.clone() },
        jobs: request.config.jobs,
        semantic: request.semantic_config(),
        sem_pruned: request.tier == MergeTier::SemanticPruned,
        budget: request.budget,
        ..CampaignConfig::default()
    }
}

/// Handles `--metrics PATH` for the exploring subcommands: resets the
/// global telemetry registry when the flag is present (so the snapshot
/// covers exactly this invocation's work) and returns the path.
fn metrics_begin(rest: &mut Vec<String>) -> Result<Option<String>, String> {
    let path = args::string(rest, "--metrics")?;
    if path.is_some() {
        phase_order::telemetry::global().reset();
    }
    Ok(path)
}

/// Writes the telemetry snapshot to `path` (no-op without `--metrics`).
fn metrics_end(path: Option<&str>) -> Result<(), String> {
    if let Some(path) = path {
        phase_order::telemetry::global()
            .snapshot()
            .write(Path::new(path))
            .map_err(|e| format!("--metrics {path}: {e}"))?;
    }
    Ok(())
}

/// The `--sim-engine` choices: one engine, or the differential gate.
#[derive(Clone, Copy)]
enum SimChoice {
    One(SimEngine),
    Both,
}

fn parse_sim_engine(rest: &mut Vec<String>) -> Result<SimChoice, String> {
    Ok(match args::string(rest, "--sim-engine")?.as_deref() {
        None | Some("threaded") => SimChoice::One(SimEngine::Threaded),
        Some("interp") => SimChoice::One(SimEngine::Interp),
        Some("both") => SimChoice::Both,
        Some(other) => {
            return Err(format!(
                "--sim-engine: unknown engine `{other}` (expected interp, threaded or both)"
            ))
        }
    })
}

fn parse_seq(letters: &str) -> Result<Vec<PhaseId>, String> {
    letters
        .chars()
        .map(|c| PhaseId::from_letter(c).ok_or(format!("unknown phase letter `{c}`")))
        .collect()
}

fn compile_cmd(argv: &[String]) -> Result<(), String> {
    let path = argv.first().ok_or("compile: missing file")?;
    let mut program = load(path)?;
    let target = Target::default();
    let finalize = argv.iter().any(|a| a == "--finalize");
    let emit_asm = argv.iter().any(|a| a == "--emit-asm");
    let mode = argv
        .get(1)
        .map(String::as_str)
        .filter(|m| *m != "--finalize" && *m != "--emit-asm")
        .unwrap_or("--batch");
    for f in &mut program.functions {
        match mode {
            "--batch" => {
                let stats = batch_compile(f, &target);
                eprintln!(
                    "; {}: {} attempted, {} active: {}",
                    f.name,
                    stats.attempted,
                    stats.active,
                    stats.sequence.iter().map(|p| p.letter()).collect::<String>()
                );
            }
            "--naive" => {}
            "--seq" => {
                let letters = argv.get(2).ok_or("compile: --seq needs letters")?;
                for p in parse_seq(letters)? {
                    attempt(f, p, &target);
                }
            }
            other => return Err(format!("compile: unknown mode `{other}`")),
        }
        if !emit_asm {
            if finalize {
                println!("{}", vpo_opt::finalize::fix_entry_exit(f, &target));
            } else {
                println!("{f}");
            }
        }
    }
    if emit_asm {
        let asm = vpo_opt::emit::emit_program(&program, &target).map_err(|e| e.to_string())?;
        println!("{asm}");
    }
    Ok(())
}

fn run_cmd(argv: &[String]) -> Result<(), String> {
    let mut rest = argv.to_vec();
    let sim_engine = parse_sim_engine(&mut rest)?;
    let path = rest.first().ok_or("run: missing file")?;
    let func = rest.get(1).ok_or("run: missing function name")?;
    let call_args: Vec<i32> = rest[2..]
        .iter()
        .map(|a| a.parse().map_err(|_| format!("bad integer argument `{a}`")))
        .collect::<Result<_, _>>()?;
    let program = load(path)?;
    let target = Target::default();
    let mut optimized = program.function(func).ok_or(format!("no function `{func}`"))?.clone();
    batch_compile(&mut optimized, &target);

    let engines: &[SimEngine] = match sim_engine {
        SimChoice::One(SimEngine::Interp) => &[SimEngine::Interp],
        SimChoice::One(SimEngine::Threaded) => &[SimEngine::Threaded],
        SimChoice::Both => &[SimEngine::Interp, SimEngine::Threaded],
    };
    let mut prev: Option<(i32, u64, u64)> = None;
    for &engine in engines {
        let mut naive = Machine::new(&program);
        naive.set_engine(engine);
        let expected = naive.call(func, &call_args).map_err(|e| e.to_string())?;
        let mut opt = Machine::new(&program);
        opt.set_engine(engine);
        let got = opt.call_instance(&optimized, &call_args).map_err(|e| e.to_string())?;
        if expected != got {
            return Err(format!("MISCOMPILATION: naive={expected}, optimized={got}"));
        }
        let this = (got, naive.dynamic_insts(), opt.dynamic_insts());
        if let Some(p) = prev {
            if p != this {
                return Err(format!(
                    "sim-engine differential FAILED: interp {p:?} != threaded {this:?}"
                ));
            }
            println!("engines agree: interp == threaded");
        }
        prev = Some(this);
        if engine == *engines.last().unwrap() {
            println!("{func}({call_args:?}) = {got}");
            println!(
                "dynamic instructions: naive {} -> optimized {}",
                naive.dynamic_insts(),
                opt.dynamic_insts()
            );
        }
    }
    Ok(())
}

fn explore_cmd(argv: &[String]) -> Result<(), String> {
    let mut rest = argv.to_vec();
    let metrics = metrics_begin(&mut rest)?;
    let request = args::explore_request(&mut rest, "explore")?;
    let program = resolve_program(&request, "explore")?;
    let target = Target::default();
    let config = &request.config;
    println!("{}", FunctionRow::header());
    for f in &program.functions {
        if let Some(name) = &request.function {
            if &f.name != name {
                continue;
            }
        }
        // The fingerprint-tier Table-3 row is always reported. Under
        // `--merge-tier semantic` one enumeration produces both views —
        // the semantic tier annotates the identical space — and the
        // quotient line follows with both DAG sizes and the collapse
        // factor.
        let e = match request.tier {
            MergeTier::Fingerprint => enumerate(f, &target, config),
            MergeTier::Semantic => {
                enumerate_semantic(&program, f, &target, config, &request.semantic)
            }
            MergeTier::SemanticPruned => {
                enumerate_semantic_pruned(&program, f, &target, config, &request.semantic)
            }
        };
        println!("{}", FunctionRow::new(f.name.clone(), f, &e).render());
        if request.tier.is_semantic() {
            let (fp_n, sem_n) = (e.space.len(), e.space.sem_class_count());
            let collapse = fp_n as f64 / sem_n.max(1) as f64;
            println!(
                "  semantic: {sem_n} distinct instances (fingerprint {fp_n}, \
                 collapse {collapse:.2}x, {} sem merges, {} collisions, {} escalations)",
                e.stats.sem_merges, e.stats.sem_collisions, e.stats.sem_escalations,
            );
        }
        if request.tier == MergeTier::SemanticPruned {
            println!(
                "  pruned: {} subtrees skipped by subsumption, {} mask fallbacks \
                 (audit the loss with `vpoc audit-quotient`)",
                e.stats.sem_prunes, e.stats.sem_mask_fallbacks,
            );
        }
    }
    metrics_end(metrics.as_deref())
}

fn verify_cmd(argv: &[String]) -> Result<(), String> {
    let mut rest = argv.to_vec();
    let sim_engine = parse_sim_engine(&mut rest)?;
    let metrics = metrics_begin(&mut rest)?;
    let request = args::explore_request(&mut rest, "verify")?;
    let program = resolve_program(&request, "verify")?;

    let target = Target::default();
    // The signature battery mirrors the verification battery (both come
    // from the request's semantic options), so a semantic merge is
    // re-validated on the evidence it was accepted on. The oracle's job
    // convention differs from the enumeration's (`0` = one per CPU,
    // `1` = serial vs `0` = serial), hence the translation.
    let oracle_config = OracleConfig {
        battery: request.semantic.battery,
        seed: request.semantic.seed,
        jobs: if request.config.jobs == 0 { 1 } else { request.config.jobs },
        ..OracleConfig::default()
    };

    let mut findings = 0usize;
    for f in &program.functions {
        if let Some(name) = &request.function {
            if &f.name != name {
                continue;
            }
        }
        let e = match request.tier {
            MergeTier::Fingerprint => enumerate(f, &target, &request.config),
            MergeTier::Semantic => {
                enumerate_semantic(&program, f, &target, &request.config, &request.semantic)
            }
            MergeTier::SemanticPruned => {
                enumerate_semantic_pruned(&program, f, &target, &request.config, &request.semantic)
            }
        };
        let report = match sim_engine {
            SimChoice::One(engine) => oracle::verify(
                &program,
                f,
                &e,
                &target,
                &OracleConfig { engine, ..oracle_config.clone() },
            ),
            SimChoice::Both => {
                // Verify the same space on each engine and demand
                // bit-identical reports — the sim differential gate.
                let threaded = oracle::verify(
                    &program,
                    f,
                    &e,
                    &target,
                    &OracleConfig { engine: SimEngine::Threaded, ..oracle_config.clone() },
                );
                let interp = oracle::verify(
                    &program,
                    f,
                    &e,
                    &target,
                    &OracleConfig { engine: SimEngine::Interp, ..oracle_config.clone() },
                );
                if interp != threaded {
                    return Err(format!(
                        "sim-engine differential FAILED on `{}`: the interpreter and \
                         threaded engines produced different reports",
                        f.name
                    ));
                }
                println!("{}: engines agree (interp == threaded)", f.name);
                threaded
            }
        };
        let tag = if e.outcome.is_complete() { "" } else { " [space truncated]" };
        println!("{}{tag}", report.summary());
        for finding in &report.findings {
            println!("  !! {finding:?}");
        }
        findings += report.findings.len();
    }
    metrics_end(metrics.as_deref())?;
    if findings > 0 {
        return Err(format!("verification FAILED with {findings} finding(s)"));
    }
    Ok(())
}

/// Streams campaign progress to stderr: a live status line on terminals,
/// and a completion line per function always.
struct Progress {
    live: bool,
}

impl Progress {
    fn from_env() -> Progress {
        use std::io::IsTerminal;
        Progress { live: std::io::stderr().is_terminal() }
    }

    fn status(&self, line: &str) {
        if self.live {
            use std::io::Write;
            eprint!("\r{line:<78}");
            let _ = std::io::stderr().flush();
        }
    }
}

impl campaign::Observer for Progress {
    fn function_started(&self, index: usize, total: usize, name: &str) {
        self.status(&format!("[{}/{total}] exploring {name}...", index + 1));
    }

    fn level_completed(&self, name: &str, level: u32, frontier: usize, nodes: usize) {
        self.status(&format!("  {name}: level {level}, frontier {frontier}, {nodes} instances"));
    }

    fn function_done(&self, index: usize, total: usize, record: &campaign::store::FunctionRecord) {
        self.report(index, total, record);
    }

    fn function_suspended(
        &self,
        index: usize,
        total: usize,
        record: &campaign::store::FunctionRecord,
    ) {
        self.report(index, total, record);
    }
}

impl Progress {
    /// Completion/suspension line, rendered through the typed memo view
    /// so the CLI and the daemon describe records identically.
    fn report(&self, index: usize, total: usize, record: &campaign::store::FunctionRecord) {
        if self.live {
            eprint!("\r{:<78}\r", "");
        }
        let entry = MemoEntry::new(record);
        let status = match entry.completeness() {
            Completeness::Complete => {
                format!("{} instances, {} leaves", record.fn_instances, record.leaves)
            }
            state => state.to_string(),
        };
        eprintln!("[{}/{total}] {}: {status}", index + 1, entry.name());
    }
}

fn campaign_cmd(argv: &[String]) -> Result<(), String> {
    let mut rest = argv.to_vec();
    let max_functions = args::value::<usize>(&mut rest, "--max-functions")?;
    let store = args::string(&mut rest, "--store")?;
    let resume = args::switch(&mut rest, "--resume");
    let metrics = metrics_begin(&mut rest)?;
    let request = args::explore_request(&mut rest, "campaign")?;
    let tasks = resolve_tasks(&request, "campaign")?;

    let mut config = campaign_config(&request);
    config.resume = resume;
    config.stop_after = max_functions;
    let total = tasks.len();
    let target = Target::default();
    let progress = Progress::from_env();
    let summary =
        campaign::run(tasks, &target, store.as_deref().map(Path::new), &config, &progress)
            .map_err(|e| format!("campaign: {e}"))?;

    // The aggregate Table-3 report over everything in the store.
    println!("{}", FunctionRow::header());
    let mut complete = 0usize;
    let mut instances = 0u64;
    let mut attempted = 0u64;
    let mut diffs: Vec<f64> = Vec::new();
    for rec in &summary.records {
        let row = rec.to_row();
        println!("{}", row.render());
        if rec.complete {
            complete += 1;
            instances += rec.fn_instances;
            attempted += rec.attempted_phases;
        }
        if let Some(d) = row.code_diff_percent() {
            diffs.push(d);
        }
    }
    println!(
        "{} of {total} function(s) recorded ({} resumed, {} explored this run), \
         {complete} complete, {} truncated",
        summary.records.len(),
        summary.resumed,
        summary.explored,
        summary.records.len() - complete,
    );
    if summary.suspended > 0 || summary.deepened > 0 {
        println!(
            "{} suspended at a budget frontier, {} deepened from one \
             ({} parent expansions this run); re-run with --resume to continue",
            summary.suspended, summary.deepened, summary.expanded,
        );
    }
    println!(
        "totals over complete functions: {instances} distinct instances, \
         {attempted} attempted phases"
    );
    if !diffs.is_empty() {
        println!(
            "average leaf code-size spread: {:.1}%",
            diffs.iter().sum::<f64>() / diffs.len() as f64
        );
    }
    if summary.interrupted {
        println!(
            "campaign interrupted after {} function(s); re-run with --resume to continue",
            summary.explored
        );
    }
    metrics_end(metrics.as_deref())
}

fn dot_cmd(argv: &[String]) -> Result<(), String> {
    let mut rest = argv.to_vec();
    let request = args::explore_request(&mut rest, "dot")?;
    let func = request.function.clone().ok_or("dot: missing function name")?;
    let program = resolve_program(&request, "dot")?;
    let f = program.function(&func).expect("checked above");
    let target = Target::default();
    let e = match request.tier {
        MergeTier::Fingerprint => enumerate(f, &target, &request.config),
        MergeTier::Semantic => {
            enumerate_semantic(&program, f, &target, &request.config, &request.semantic)
        }
        MergeTier::SemanticPruned => {
            enumerate_semantic_pruned(&program, f, &target, &request.config, &request.semantic)
        }
    };
    println!("{}", e.space.to_dot());
    Ok(())
}

fn audit_quotient_cmd(argv: &[String]) -> Result<(), String> {
    let mut rest = argv.to_vec();
    let metrics = metrics_begin(&mut rest)?;
    let request = args::explore_request(&mut rest, "audit-quotient")?;
    let program = resolve_program(&request, "audit-quotient")?;
    let target = Target::default();

    println!(
        "{:<16} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>6} {:>6}  verdict",
        "function",
        "ann_n",
        "prun_n",
        "saved",
        "ann_c",
        "lost",
        "prune",
        "fall",
        "s_drft",
        "d_drft",
    );
    let mut unsound = 0usize;
    let mut audited = 0usize;
    for f in &program.functions {
        if let Some(name) = &request.function {
            if &f.name != name {
                continue;
            }
        }
        let a = audit::audit_function(&program, f, &target, &request.config, &request.semantic);
        // An annotation tier truncated by --max-nodes where the pruned
        // tier completes is the mode paying off, not a soundness signal;
        // the row says so instead of faking drift numbers.
        let verdict = if !a.comparable() {
            match (a.ann_complete, a.pruned_complete) {
                (false, true) => "incomparable (annotation truncated; pruned completed)",
                (true, false) => "incomparable (pruned truncated)",
                _ => "incomparable (both truncated)",
            }
        } else if a.unsound() {
            unsound += 1;
            "UNSOUND"
        } else {
            "sound"
        };
        audited += 1;
        println!(
            "{:<16} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>6} {:>6}  {verdict}",
            a.name,
            a.ann_nodes,
            a.pruned_nodes,
            a.node_savings(),
            a.ann_classes,
            a.classes_lost(),
            a.prunes,
            a.mask_fallbacks,
            if a.comparable() { a.static_drift().to_string() } else { "-".into() },
            if a.comparable() { a.dynamic_drift().to_string() } else { "-".into() },
        );
    }
    if audited == 0 {
        return Err(match &request.function {
            Some(name) => format!("audit-quotient: no function named `{name}`"),
            None => "audit-quotient: no functions to audit".into(),
        });
    }
    metrics_end(metrics.as_deref())?;
    if unsound > 0 {
        return Err(format!(
            "audit-quotient: {unsound} function(s) with unsound prunes — a skipped \
             subtree held a strictly better leaf"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seq_round_trips() {
        let seq = parse_seq("skch").unwrap();
        assert_eq!(
            seq,
            vec![PhaseId::InsnSelect, PhaseId::RegAlloc, PhaseId::Cse, PhaseId::DeadAssign]
        );
        assert!(parse_seq("xyz").is_err());
    }

    #[test]
    fn end_to_end_commands() {
        let dir = std::env::temp_dir().join("vpoc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.mc");
        std::fs::write(&file, "int triple(int x) { return x * 3; }").unwrap();
        let path = file.to_str().unwrap().to_owned();
        run(&["compile".into(), path.clone()]).unwrap();
        run(&["compile".into(), path.clone(), "--batch".into(), "--finalize".into()]).unwrap();
        run(&["compile".into(), path.clone(), "--batch".into(), "--emit-asm".into()]).unwrap();
        run(&["compile".into(), path.clone(), "--seq".into(), "sqk".into()]).unwrap();
        run(&["run".into(), path.clone(), "triple".into(), "14".into()]).unwrap();
        run(&["explore".into(), path.clone()]).unwrap();
        run(&["explore".into(), path.clone(), "--jobs".into(), "2".into()]).unwrap();
        run(&["explore".into(), path.clone(), "--jobs=0".into()]).unwrap();
        run(&["explore".into(), path.clone(), "triple".into()]).unwrap();
        run(&["explore".into(), path.clone(), "--merge-tier".into(), "semantic-pruned".into()])
            .unwrap();
        run(&["verify".into(), path.clone(), "--merge-tier=semantic-pruned".into()]).unwrap();
        run(&["audit-quotient".into(), path.clone()]).unwrap();
        run(&["dot".into(), path.clone(), "triple".into(), "--merge-tier=semantic-pruned".into()])
            .unwrap();
        assert!(run(&["audit-quotient".into(), path.clone(), "nonesuch".into()]).is_err());
        run(&["verify".into(), path.clone()]).unwrap();
        run(&["verify".into(), path.clone(), "--jobs".into(), "2".into()]).unwrap();
        run(&[
            "verify".into(),
            path.clone(),
            "triple".into(),
            "--battery=2".into(),
            "--seed=7".into(),
            "--max-nodes=500".into(),
        ])
        .unwrap();
        run(&[
            "run".into(),
            path.clone(),
            "triple".into(),
            "14".into(),
            "--sim-engine=interp".into(),
        ])
        .unwrap();
        run(&[
            "run".into(),
            path.clone(),
            "triple".into(),
            "14".into(),
            "--sim-engine=both".into(),
        ])
        .unwrap();
        run(&["verify".into(), path.clone(), "--sim-engine".into(), "interp".into()]).unwrap();
        run(&["verify".into(), path.clone(), "--sim-engine=both".into()]).unwrap();
        run(&["dot".into(), path.clone(), "triple".into()]).unwrap();
        run(&["dot".into(), path.clone(), "triple".into(), "-j".into(), "4".into()]).unwrap();
        run(&["phases".into()]).unwrap();
        assert!(run(&["bogus".into()]).is_err());
        assert!(run(&["verify".into(), path.clone(), "--sim-engine=qemu".into()]).is_err());
        assert!(run(&["explore".into(), path.clone(), "--jobs".into()]).is_err());
        assert!(run(&["explore".into(), path.clone(), "--bogus".into()]).is_err());
        assert!(run(&["verify".into(), path.clone(), "--battery".into()]).is_err());
        assert!(run(&["verify".into(), path.clone(), "--seed=pi".into()]).is_err());
        assert!(run(&["verify".into(), "--bench".into(), "nope".into()]).is_err());
        assert!(run(&["explore".into(), path, "--jobs".into(), "x".into()]).is_err());
    }

    #[test]
    fn unknown_function_filters_are_errors() {
        let dir = std::env::temp_dir().join("vpoc_test_filter");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.mc");
        std::fs::write(&file, "int triple(int x) { return x * 3; }").unwrap();
        let path = file.to_str().unwrap().to_owned();
        for cmd in ["explore", "verify", "campaign", "dot"] {
            let err = run(&[cmd.into(), path.clone(), "nonesuch".into()]).unwrap_err();
            assert!(err.contains("no function `nonesuch`"), "{cmd}: {err}");
            assert!(err.contains("triple"), "{cmd} must list available functions: {err}");
        }
    }

    #[test]
    fn metrics_flag_writes_a_snapshot() {
        let dir = std::env::temp_dir().join("vpoc_test_metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("m.mc");
        std::fs::write(&file, "int quad(int x) { return x * 4; }").unwrap();
        let path = file.to_str().unwrap().to_owned();
        let out = dir.join("metrics.json");
        std::fs::remove_file(&out).ok();
        run(&["explore".into(), path, format!("--metrics={}", out.display())]).unwrap();
        // Concurrent tests share the global registry, so assert only the
        // schema and metric inventory here — exact determinism of the
        // counters is pinned by perfsuite and the phase-order tests.
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"schema\": \"phase-order-telemetry-v1\""), "{json}");
        assert!(json.contains("\"enumerate.nodes_inserted\""), "{json}");
        assert!(json.contains("\"enumerate.level_wall_ns\""), "{json}");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn verify_bench_kernel() {
        // A single small MiBench function end to end through the oracle.
        run(&[
            "verify".into(),
            "--bench".into(),
            "bitcount".into(),
            "bit_count".into(),
            "--max-nodes=2000".into(),
            "--battery=2".into(),
        ])
        .unwrap();
    }

    #[test]
    fn campaign_end_to_end_with_resume() {
        let dir = std::env::temp_dir().join("vpoc_test_campaign");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("two.mc");
        std::fs::write(
            &file,
            "int twice(int x) { return x + x; }\nint diff(int a, int b) { return a - b; }",
        )
        .unwrap();
        let path = file.to_str().unwrap().to_owned();
        let store = dir.join("two.store");
        std::fs::remove_file(&store).ok();
        let store_arg = format!("--store={}", store.display());

        // Interrupt after one function, then resume to completion.
        run(&["campaign".into(), path.clone(), store_arg.clone(), "--max-functions=1".into()])
            .unwrap();
        run(&["campaign".into(), path.clone(), store_arg.clone(), "--resume".into()]).unwrap();
        let resumed = std::fs::read(&store).unwrap();

        // The uninterrupted run must produce the same bytes.
        let full = dir.join("full.store");
        std::fs::remove_file(&full).ok();
        run(&[
            "campaign".into(),
            path.clone(),
            format!("--store={}", full.display()),
            "--jobs".into(),
            "2".into(),
        ])
        .unwrap();
        assert_eq!(std::fs::read(&full).unwrap(), resumed);

        // Re-running without --resume on an existing store is an error.
        assert!(run(&["campaign".into(), path.clone(), store_arg]).is_err());
        // A campaign needs no store at all.
        run(&["campaign".into(), path, "--max-nodes=500".into()]).unwrap();
        std::fs::remove_file(&store).ok();
        std::fs::remove_file(&full).ok();
    }
}
