//! Checks the weighted interaction formulas on a hand-built DAG with
//! known expected probabilities (the Figure 7 example, extended with
//! dormant-phase annotations).

use phase_order::interaction::InteractionAnalysis;
use phase_order::space::{Node, SearchSpace};
use vpo_opt::PhaseId;
use vpo_rtl::canon::Fingerprint;
use vpo_rtl::FuncFlags;

const A: PhaseId = PhaseId::BranchChain; // 'b', index 0 — call it "a"
const B: PhaseId = PhaseId::Cse; // 'c', index 1 — call it "b"
const C: PhaseId = PhaseId::Unreachable; // 'd', index 2 — call it "c"

fn node(seed: u32) -> Node {
    Node {
        fp: Fingerprint { inst_count: seed, byte_sum: seed as u64, crc: seed },
        flags: FuncFlags::default(),
        level: 0,
        inst_count: seed + 10,
        cf_sig: seed as u64,
        active_mask: 0,
        children: Vec::new(),
        sem_children: Vec::new(),
        pruned_children: Vec::new(),
        discovered_from: None,
        pruned: false,
        weight: 0,
    }
}

fn mask(phases: &[PhaseId]) -> u16 {
    phases.iter().map(|p| 1u16 << p.index()).sum()
}

/// Build:
///   root --A--> x (B active)      x --B--> leaf1
///   root --B--> y (nothing)      (leaf)
/// with A,B active at root; C dormant everywhere.
///
/// Weights: leaf1 = 1, x = 1, y = 1, root = 2.
fn build() -> SearchSpace {
    let mut s = SearchSpace::new();
    let root = s.insert(node(0));
    let x = s.insert(node(1));
    let y = s.insert(node(2));
    let leaf1 = s.insert(node(3));
    s.node_mut(root).active_mask = mask(&[A, B]);
    s.node_mut(root).children = vec![(A, x), (B, y)];
    s.node_mut(x).active_mask = mask(&[B]);
    s.node_mut(x).children = vec![(B, leaf1)];
    s.node_mut(x).discovered_from = Some((root, A));
    s.node_mut(y).discovered_from = Some((root, B));
    s.node_mut(leaf1).discovered_from = Some((x, B));
    s.compute_weights().unwrap();
    s
}

#[test]
fn enabling_probabilities_match_hand_computation() {
    let s = build();
    let mut ia = InteractionAnalysis::new();
    ia.add_space(&s);
    // C is dormant at root and stays dormant over every edge:
    // dormant->dormant transitions on edges A (w=1), B (w=1), and x--B (w=1).
    assert_eq!(ia.enabling_probability(C, A), Some(0.0));
    assert_eq!(ia.enabling_probability(C, B), Some(0.0));
    // B is active at root, so edge root--A--x sees B active->active
    // (x has B active): not an enabling sample. On edge x--B--leaf1 the
    // phase B is the edge label itself (skipped). So A never *enables* B
    // anywhere — but B was never dormant before A either: no samples.
    assert_eq!(ia.enabling_probability(B, A), None);
    // A is active at root; on edge root--B--y (w=1) A transitions
    // active->dormant (y has nothing active): disabling, probability 1.
    assert_eq!(ia.disabling_probability(A, B), Some(1.0));
    // Self-disabling: edge root--A--x has A dormant at x => 1.0;
    // root--B--y and x--B--leaf1 both have B dormant after => 1.0.
    assert_eq!(ia.disabling_probability(A, A), Some(1.0));
    assert_eq!(ia.disabling_probability(B, B), Some(1.0));
}

#[test]
fn start_probability_is_root_weighted() {
    let s = build();
    let mut ia = InteractionAnalysis::new();
    ia.add_space(&s);
    // Root weight 2; A and B active at root, C not.
    assert_eq!(ia.start_probability(A), Some(1.0));
    assert_eq!(ia.start_probability(B), Some(1.0));
    assert_eq!(ia.start_probability(C), Some(0.0));

    // Adding a second space (weight 1 root, only A active) shifts the
    // weighted average: A stays 1.0, B drops to 2/3.
    let mut s2 = SearchSpace::new();
    let root = s2.insert(node(0));
    let x = s2.insert(node(1));
    s2.node_mut(root).active_mask = mask(&[A]);
    s2.node_mut(root).children = vec![(A, x)];
    s2.node_mut(x).discovered_from = Some((root, A));
    s2.compute_weights().unwrap();
    ia.add_space(&s2);
    assert_eq!(ia.start_probability(A), Some(1.0));
    assert!((ia.start_probability(B).unwrap() - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn independence_requires_both_orders() {
    // Diamond where A and B commute: root--A--x--B--z and root--B--y--A--z.
    let mut s = SearchSpace::new();
    let root = s.insert(node(0));
    let x = s.insert(node(1));
    let y = s.insert(node(2));
    let z = s.insert(node(3));
    s.node_mut(root).active_mask = mask(&[A, B]);
    s.node_mut(root).children = vec![(A, x), (B, y)];
    s.node_mut(x).active_mask = mask(&[B]);
    s.node_mut(x).children = vec![(B, z)];
    s.node_mut(y).active_mask = mask(&[A]);
    s.node_mut(y).children = vec![(A, z)];
    s.node_mut(x).discovered_from = Some((root, A));
    s.node_mut(y).discovered_from = Some((root, B));
    s.node_mut(z).discovered_from = Some((x, B));
    s.compute_weights().unwrap();
    let mut ia = InteractionAnalysis::new();
    ia.add_space(&s);
    assert_eq!(ia.independence_probability(A, B), Some(1.0));
    assert_eq!(ia.independence_probability(B, A), Some(1.0));
    // A pair never consecutively active has no samples.
    assert_eq!(ia.independence_probability(A, C), None);

    // A non-commuting diamond: two different grandchildren.
    let mut s2 = SearchSpace::new();
    let root = s2.insert(node(0));
    let x = s2.insert(node(1));
    let y = s2.insert(node(2));
    let z1 = s2.insert(node(3));
    let z2 = s2.insert(node(4));
    s2.node_mut(root).active_mask = mask(&[A, B]);
    s2.node_mut(root).children = vec![(A, x), (B, y)];
    s2.node_mut(x).active_mask = mask(&[B]);
    s2.node_mut(x).children = vec![(B, z1)];
    s2.node_mut(y).active_mask = mask(&[A]);
    s2.node_mut(y).children = vec![(A, z2)];
    s2.node_mut(x).discovered_from = Some((root, A));
    s2.node_mut(y).discovered_from = Some((root, B));
    s2.node_mut(z1).discovered_from = Some((x, B));
    s2.node_mut(z2).discovered_from = Some((y, A));
    s2.compute_weights().unwrap();
    let mut ia2 = InteractionAnalysis::new();
    ia2.add_space(&s2);
    assert_eq!(ia2.independence_probability(A, B), Some(0.0));
}
