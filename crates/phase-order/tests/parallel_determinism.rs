//! The contract of `enumerate` under `Config::jobs`: for any job count,
//! the space it returns is **identical** to the serial engine's — node
//! ids and count, leaf count, weights, per-node `active_mask`s, edges,
//! and every statistics counter except wall-clock time. Verified here on
//! real MiBench kernels (the enumeration workload of Table 3), not just
//! on toy sources.

use phase_order::enumerate::{enumerate, Config};
use phase_order::Enumeration;
use vpo_opt::Target;

/// Three medium-size suite kernels: big enough for multi-hundred-node
/// spaces with wide levels, small enough to enumerate repeatedly.
fn kernels() -> Vec<(String, vpo_rtl::Function)> {
    let mut out = Vec::new();
    for b in mibench::all() {
        let p = b.compile().unwrap();
        for f in p.functions {
            if (25..=60).contains(&f.inst_count()) {
                out.push((format!("{}::{}", b.name, f.name), f));
            }
        }
    }
    out.truncate(3);
    assert_eq!(out.len(), 3, "suite no longer has three medium kernels");
    out
}

fn assert_identical(name: &str, jobs: usize, serial: &Enumeration, par: &Enumeration) {
    assert_eq!(par.outcome, serial.outcome, "{name} jobs={jobs}: outcome");
    assert_eq!(par.space.len(), serial.space.len(), "{name} jobs={jobs}: node count");
    assert_eq!(par.space.leaf_count(), serial.space.leaf_count(), "{name} jobs={jobs}: leaf count");
    assert_eq!(
        par.stats.attempted_phases, serial.stats.attempted_phases,
        "{name} jobs={jobs}: attempted phases"
    );
    assert_eq!(
        par.stats.active_attempts, serial.stats.active_attempts,
        "{name} jobs={jobs}: active attempts"
    );
    assert_eq!(
        par.stats.phases_applied, serial.stats.phases_applied,
        "{name} jobs={jobs}: phases applied"
    );
    assert_eq!(par.stats.collisions, serial.stats.collisions, "{name} jobs={jobs}: collisions");
    for (id, n) in serial.space.iter() {
        let m = par.space.node(id);
        assert_eq!(m.fp, n.fp, "{name} jobs={jobs}: fingerprint of {id}");
        assert_eq!(m.flags, n.flags, "{name} jobs={jobs}: flags of {id}");
        assert_eq!(m.level, n.level, "{name} jobs={jobs}: level of {id}");
        assert_eq!(m.active_mask, n.active_mask, "{name} jobs={jobs}: active mask of {id}");
        assert_eq!(m.children, n.children, "{name} jobs={jobs}: edges of {id}");
        assert_eq!(m.weight, n.weight, "{name} jobs={jobs}: weight of {id}");
        assert_eq!(
            m.discovered_from, n.discovered_from,
            "{name} jobs={jobs}: discovery edge of {id}"
        );
    }
}

#[test]
fn parallel_enumeration_is_bit_identical_to_serial() {
    let target = Target::default();
    let config = Config { max_nodes: 100_000, max_level_width: 50_000, ..Config::default() };
    for (name, f) in kernels() {
        let serial = enumerate(&f, &target, &config);
        assert!(serial.space.len() > 10, "{name}: kernel space too small to be interesting");
        for jobs in [1usize, 2, 8] {
            let par = enumerate(&f, &target, &Config { jobs, ..config.clone() });
            assert_identical(&name, jobs, &serial, &par);
        }
    }
}

#[test]
fn parallel_enumeration_matches_under_truncation() {
    // The deterministic merge must reproduce the serial engine's exact
    // truncation point when a bound aborts the search mid-level.
    let target = Target::default();
    let (name, f) = kernels().swap_remove(0);
    let config = Config { max_nodes: 40, ..Config::default() };
    let serial = enumerate(&f, &target, &config);
    assert!(!serial.outcome.is_complete(), "{name}: cap of 40 nodes should truncate");
    assert!(serial.space.len() <= 40, "{name}: cap overshot");
    for jobs in [2usize, 8] {
        let par = enumerate(&f, &target, &Config { jobs, ..config.clone() });
        assert_identical(&name, jobs, &serial, &par);
    }
}
