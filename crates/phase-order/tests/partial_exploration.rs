//! Partial-exploration acceptance: a budget-capped campaign plus N
//! resume sessions is byte-identical to a single uncapped run — for
//! serial and parallel pools, for both merge tiers — and the node
//! counters prove that no stored prefix is ever re-expanded (each
//! distinct instance is expanded exactly once over a function's
//! lifetime, however many sessions that spans).

use std::path::PathBuf;
use std::sync::Arc;

use phase_order::campaign::store::{MemoEntry, ResultStore};
use phase_order::campaign::{run, CampaignConfig, FunctionTask, NullObserver};
use phase_order::enumerate::Config;
use phase_order::SemanticConfig;
use vpo_opt::Target;

const SOURCE: &str = r#"
    int add(int a, int b) { return a + b + a; }
    int tri(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }
    int pick(int a, int b) { if (a > b) return a - b; return b - a; }
"#;

/// The two loop-free functions only: big enough to outlast a small
/// budget, small enough for the paranoid semantic battery to stay fast.
const SMALL_SOURCE: &str = r#"
    int add(int a, int b) { return a + b + a; }
    int pick(int a, int b) { if (a > b) return a - b; return b - a; }
"#;

fn tasks_from(src: &str) -> Vec<FunctionTask> {
    let program = Arc::new(vpo_frontend::compile(src).unwrap());
    program
        .functions
        .iter()
        .map(|f| FunctionTask {
            name: f.name.clone(),
            func: f.clone(),
            program: Some(Arc::clone(&program)),
        })
        .collect()
}

fn tasks() -> Vec<FunctionTask> {
    tasks_from(SOURCE)
}

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpoc_partial_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("campaign.store")
}

/// Runs budget-capped sessions (first fresh, then `--resume`) until the
/// store holds no resumable record, returning (bytes, total expanded,
/// sessions).
fn deplete(
    path: &PathBuf,
    base: &CampaignConfig,
    budget: u64,
    make: fn() -> Vec<FunctionTask>,
) -> (Vec<u8>, u64, usize) {
    std::fs::remove_file(path).ok();
    let target = Target::default();
    let total_tasks = make().len();
    let mut expanded = 0u64;
    let mut sessions = 0usize;
    loop {
        let config = CampaignConfig { budget: Some(budget), resume: path.exists(), ..base.clone() };
        let s = run(make(), &target, Some(path), &config, &NullObserver).unwrap();
        expanded += s.expanded;
        sessions += 1;
        assert!(sessions < 500, "budgeted sessions must converge");
        let done = s.records.len() == total_tasks
            && s.records.iter().all(|r| !MemoEntry::new(r).is_resumable());
        if done {
            break;
        }
    }
    (std::fs::read(path).unwrap(), expanded, sessions)
}

#[test]
fn budgeted_sessions_match_uncapped_for_all_job_counts() {
    let target = Target::default();
    let reference = tmp_store("fp_reference");
    std::fs::remove_file(&reference).ok();
    let full = run(
        tasks(),
        &target,
        Some(&reference),
        &CampaignConfig { jobs: 2, ..CampaignConfig::default() },
        &NullObserver,
    )
    .unwrap();
    let want = std::fs::read(&reference).unwrap();
    std::fs::remove_file(&reference).ok();
    let total_nodes: u64 = full.records.iter().map(|r| r.fn_instances).sum();
    assert_eq!(full.expanded, total_nodes, "uncapped run expands each instance exactly once");

    for jobs in [0usize, 2, 8] {
        let path = tmp_store(&format!("fp_j{jobs}"));
        let base = CampaignConfig { jobs, ..CampaignConfig::default() };
        let (bytes, expanded, sessions) = deplete(&path, &base, 2, tasks);
        assert!(sessions > 1, "jobs={jobs}: a budget of 2 must force suspension");
        assert_eq!(
            expanded, total_nodes,
            "jobs={jobs}: sessions together must expand each instance exactly once \
             (more would mean a stored prefix was re-expanded)"
        );
        assert_eq!(bytes, want, "jobs={jobs}: depleted store differs from uncapped run");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn budgeted_sessions_match_uncapped_under_semantic_paranoid_tier() {
    let target = Target::default();
    let base = CampaignConfig {
        enumerate: Config { paranoid: true, ..Config::default() },
        semantic: Some(SemanticConfig { battery: 2, ..SemanticConfig::default() }),
        jobs: 2,
        ..CampaignConfig::default()
    };
    let small = || tasks_from(SMALL_SOURCE);
    let reference = tmp_store("sem_reference");
    std::fs::remove_file(&reference).ok();
    run(small(), &target, Some(&reference), &base, &NullObserver).unwrap();
    let want = std::fs::read(&reference).unwrap();
    std::fs::remove_file(&reference).ok();

    // One serial depletion suffices here: job-count invariance is pinned
    // by the fingerprint-tier test above, this one pins the semantic and
    // paranoid state rebuild across suspensions.
    let path = tmp_store("sem_budgeted");
    let (bytes, _, sessions) =
        deplete(&path, &CampaignConfig { jobs: 0, ..base.clone() }, 4, small);
    assert!(sessions > 1, "a budget of 4 must force suspension");
    assert_eq!(
        bytes, want,
        "semantic+paranoid restore must rebuild signatures and paranoid bytes exactly"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn explore_function_deepens_strictly_through_store_round_trips() {
    use phase_order::campaign::explore_function;

    let target = Target::default();
    let task = tasks().remove(1); // `tri`: a loop, so a multi-level space
    let config = CampaignConfig::default();
    let want = explore_function(task.clone(), &target, &config, None)
        .unwrap()
        .record
        .expect("uncapped run yields a record");
    assert!(want.complete);

    // Drive the same function in budgeted requests, round-tripping the
    // record through store bytes between steps — exactly what a daemon
    // restart does between queries.
    let budgeted = CampaignConfig { budget: Some(2), ..CampaignConfig::default() };
    let mut prior = None;
    let mut expanded = 0u64;
    let mut last_level = 0u32;
    let mut steps = 0usize;
    loop {
        let outcome = explore_function(task.clone(), &target, &budgeted, prior).unwrap();
        let record = outcome.record.expect("budgeted requests always checkpoint");
        steps += 1;
        assert!(steps < 200, "budgeted requests must converge");
        let entry = MemoEntry::new(&record);
        if entry.is_resumable() {
            assert!(outcome.expanded > 0, "a cold request must make progress");
            let level = record.frontier.as_ref().unwrap().level;
            assert!(
                level > last_level || last_level == 0,
                "each request must deepen the frontier (was {last_level}, now {level})"
            );
            last_level = level;
        }
        expanded += outcome.expanded;

        // Store round trip: persist, reload, continue from the copy.
        let mut store = ResultStore::new(&budgeted.enumerate, None, false);
        store.records = vec![record.clone()];
        let reloaded = ResultStore::from_bytes(&store.to_bytes()).unwrap();
        let copy = reloaded.find(&task.name).unwrap().clone();
        assert_eq!(copy, record, "records survive store bytes unchanged");

        if !MemoEntry::new(&record).is_resumable() {
            assert_eq!(record, want, "depleted record must equal the uncapped one");
            break;
        }
        prior = Some(copy);
    }
    assert!(steps > 1, "budget 2 must split the search across requests");
    assert_eq!(expanded, want.fn_instances, "requests together expand each instance exactly once");

    // Warm: a terminal prior answers with no expansion at all.
    let warm = explore_function(task, &target, &budgeted, Some(want.clone())).unwrap();
    assert_eq!(warm.expanded, 0);
    assert_eq!(warm.record.unwrap(), want);
}
