//! The one determinism surface not pinned by `parallel_determinism`:
//! everything *derived* from an enumerated space. For any `Config::jobs`
//! the spaces are bit-identical, so the Tables 4–6 probabilities
//! (Section 5) and the probabilistic batch compiler driven by them
//! (Section 6) must be too — compared here via `f64::to_bits`, not an
//! epsilon, across `jobs` ∈ {0, 2, 4} on two MiBench kernels.

use phase_order::enumerate::{enumerate, Config};
use phase_order::interaction::InteractionAnalysis;
use phase_order::prob::{probabilistic_compile, ProbTables};
use vpo_opt::{PhaseId, Target};
use vpo_rtl::canon;

const JOB_COUNTS: [usize; 3] = [0, 2, 4];

/// The two pinned kernels (also the perfsuite's small pair).
fn kernels() -> Vec<(String, vpo_rtl::Function)> {
    [("bitcount", "bit_count"), ("fft", "reverse_bits")]
        .into_iter()
        .map(|(bench, func)| {
            let p = mibench::find(bench).expect("pinned benchmark exists").compile().unwrap();
            let f = p.function(func).expect("pinned kernel exists").clone();
            (format!("{bench}::{func}"), f)
        })
        .collect()
}

/// Builds the interaction analysis over both kernels at one job count.
fn analysis(jobs: usize) -> InteractionAnalysis {
    let target = Target::default();
    let config = Config { jobs, ..Config::default() };
    let mut ia = InteractionAnalysis::new();
    for (name, f) in kernels() {
        let e = enumerate(&f, &target, &config);
        assert!(e.outcome.is_complete(), "{name} must enumerate completely");
        ia.add_space(&e.space);
    }
    ia
}

fn bits(p: Option<f64>) -> Option<u64> {
    p.map(f64::to_bits)
}

#[test]
fn tables_4_to_6_probabilities_are_bit_identical_across_job_counts() {
    let serial = analysis(0);
    for jobs in &JOB_COUNTS[1..] {
        let par = analysis(*jobs);
        assert_eq!(par.function_count(), serial.function_count(), "jobs={jobs}");
        for y in PhaseId::ALL {
            assert_eq!(
                bits(par.start_probability(y)),
                bits(serial.start_probability(y)),
                "jobs={jobs}: start probability of {y:?}"
            );
            assert_eq!(
                par.overall_activity(y).to_bits(),
                serial.overall_activity(y).to_bits(),
                "jobs={jobs}: overall activity of {y:?}"
            );
            for x in PhaseId::ALL {
                assert_eq!(
                    bits(par.enabling_probability(y, x)),
                    bits(serial.enabling_probability(y, x)),
                    "jobs={jobs}: Table 4 P({y:?} enabled by {x:?})"
                );
                assert_eq!(
                    bits(par.disabling_probability(y, x)),
                    bits(serial.disabling_probability(y, x)),
                    "jobs={jobs}: Table 5 P({y:?} disabled by {x:?})"
                );
                assert_eq!(
                    bits(par.independence_probability(y, x)),
                    bits(serial.independence_probability(y, x)),
                    "jobs={jobs}: Table 6 P({y:?} independent of {x:?})"
                );
            }
        }
    }
}

#[test]
fn prob_tables_are_bit_identical_across_job_counts() {
    let serial = ProbTables::from_analysis(&analysis(0));
    for jobs in &JOB_COUNTS[1..] {
        let par = ProbTables::from_analysis(&analysis(*jobs));
        for (i, (a, b)) in par.start.iter().zip(&serial.start).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "jobs={jobs}: start[{i}]");
        }
        for (i, (a, b)) in par.bias.iter().zip(&serial.bias).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "jobs={jobs}: bias[{i}]");
        }
        for (i, (ra, rb)) in par.enabling.iter().zip(&serial.enabling).enumerate() {
            for (j, (a, b)) in ra.iter().zip(rb).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "jobs={jobs}: enabling[{i}][{j}]");
            }
        }
        for (i, (ra, rb)) in par.disabling.iter().zip(&serial.disabling).enumerate() {
            for (j, (a, b)) in ra.iter().zip(rb).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "jobs={jobs}: disabling[{i}][{j}]");
            }
        }
    }
}

#[test]
fn probabilistic_compile_output_is_bit_identical_across_job_counts() {
    let target = Target::default();
    let serial_tables = ProbTables::from_analysis(&analysis(0));
    let mut reference = Vec::new();
    for (name, f) in kernels() {
        let mut g = f.clone();
        let stats = probabilistic_compile(&mut g, &target, &serial_tables);
        reference.push((name, stats, canon::canonical_bytes(&g)));
    }
    for jobs in &JOB_COUNTS[1..] {
        let tables = ProbTables::from_analysis(&analysis(*jobs));
        for ((name, want_stats, want_bytes), (_, f)) in reference.iter().zip(kernels()) {
            let mut g = f.clone();
            let stats = probabilistic_compile(&mut g, &target, &tables);
            assert_eq!(stats.sequence, want_stats.sequence, "jobs={jobs}: {name} phase sequence");
            assert_eq!(stats.attempted, want_stats.attempted, "jobs={jobs}: {name} attempted");
            assert_eq!(stats.active, want_stats.active, "jobs={jobs}: {name} active");
            assert_eq!(
                &canon::canonical_bytes(&g),
                want_bytes,
                "jobs={jobs}: {name} compiled code differs"
            );
        }
    }
}
