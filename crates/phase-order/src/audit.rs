//! Quotient-loss audit (`vpoc audit-quotient`): runs the annotation and
//! pruned semantic tiers side by side on a function whose full DAG is
//! enumerable, quantifying exactly what subsumption pruning trades away
//! — signature classes reachable only through pruned subtrees, node and
//! wall savings — and what it must never trade away: the optimal leaf.
//!
//! Class loss is *expected*: behavioral signatures include dynamic
//! profiles, so a pruned subtree can contain classes found nowhere else,
//! and skipping it makes them unreachable. That loss is a reported
//! quantity, not a defect. The soundness property the audit gates on is
//! optimum preservation — the pruned tier's best discovered instance
//! ([`BestInstance`]) must match the annotation tier's in static code
//! size *and* in dynamic instruction count over a shared input battery
//! (DESIGN §4.2.2). Any drift is an unsound prune and fails the audit.

use std::time::Duration;

use vpo_opt::Target;
use vpo_rtl::{Function, Program};
use vpo_sim::Machine;

use crate::enumerate::{
    enumerate_semantic, enumerate_semantic_pruned, rematerialize, sequence_letters, Config,
    Enumeration,
};
use crate::oracle::{self, OracleConfig};
use crate::semantic::SemanticConfig;

/// One tier's code-size optimum: the minimum-static-size instance over
/// *all* discovered instances (stopping early is a valid ordering, and
/// the smallest instance frequently sits at an interior node where a
/// code-growing phase is still active), ties broken by the smallest
/// dynamic instruction count over the shared audit battery. The pruned
/// search explores a sub-DAG of the annotation search, so its optimum
/// can only drift upward — and zero drift means the optimal instance
/// was discovered despite the pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestInstance {
    /// Active phase sequence reaching the instance, in paper letters.
    pub sequence: String,
    /// Static instruction count of the instance.
    pub inst_count: u32,
    /// Dynamic instructions summed over the audit battery inputs.
    pub dynamic: u64,
}

/// Side-by-side comparison of the pruned tier against the annotation
/// tier on one function, produced by [`audit_function`].
#[derive(Debug, Clone)]
pub struct QuotientAudit {
    /// Function name.
    pub name: String,
    /// Whether the annotation-tier search completed within bounds.
    pub ann_complete: bool,
    /// Whether the pruned-tier search completed within bounds.
    pub pruned_complete: bool,
    /// Nodes in the annotation-tier space (equals the fingerprint
    /// tier's node count — annotation never drops nodes).
    pub ann_nodes: usize,
    /// Nodes in the pruned-tier space (pruned placeholders included).
    pub pruned_nodes: usize,
    /// Signature classes in the annotation-tier space.
    pub ann_classes: usize,
    /// Signature classes in the pruned-tier space.
    pub pruned_classes: usize,
    /// Subtrees skipped by subsumption ([`crate::enumerate::SearchStats::sem_prunes`]).
    pub prunes: u64,
    /// Signature-matched candidates expanded anyway because their mask
    /// was not subsumed ([`crate::enumerate::SearchStats::sem_mask_fallbacks`]).
    pub mask_fallbacks: u64,
    /// Wall-clock of the annotation-tier search.
    pub ann_wall: Duration,
    /// Wall-clock of the pruned-tier search.
    pub pruned_wall: Duration,
    /// Annotation-tier optimum over all discovered instances (`None`
    /// only for an empty space, which cannot happen: the root is always
    /// discovered).
    pub ann_best: Option<BestInstance>,
    /// Pruned-tier optimum over all discovered instances.
    pub pruned_best: Option<BestInstance>,
}

impl QuotientAudit {
    /// Signature classes reachable only through pruned subtrees.
    pub fn classes_lost(&self) -> usize {
        self.ann_classes.saturating_sub(self.pruned_classes)
    }

    /// Nodes the pruned tier never materialized.
    pub fn node_savings(&self) -> usize {
        self.ann_nodes.saturating_sub(self.pruned_nodes)
    }

    /// Static code-size drift of the pruned optimum relative to the
    /// annotation optimum (positive = pruning lost the optimum).
    pub fn static_drift(&self) -> i64 {
        match (&self.pruned_best, &self.ann_best) {
            (Some(p), Some(a)) => i64::from(p.inst_count) - i64::from(a.inst_count),
            _ => 0,
        }
    }

    /// Dynamic instruction-count drift of the pruned optimum over the
    /// shared battery.
    pub fn dynamic_drift(&self) -> i64 {
        match (&self.pruned_best, &self.ann_best) {
            (Some(p), Some(a)) => p.dynamic as i64 - a.dynamic as i64,
            _ => 0,
        }
    }

    /// Whether the optima are comparable: both searches completed. A
    /// truncated annotation tier has no ground truth to audit against
    /// (the pruned tier completing where annotation truncates is the
    /// *point* of the mode, not a violation).
    pub fn comparable(&self) -> bool {
        self.ann_complete && self.pruned_complete
    }

    /// An unsound prune: the searches are comparable and the pruned
    /// optimum drifted from the annotation optimum, statically or
    /// dynamically — some skipped subtree held a strictly better leaf.
    pub fn unsound(&self) -> bool {
        self.comparable()
            && (self.static_drift() != 0
                || self.dynamic_drift() != 0
                || self.pruned_best.is_some() != self.ann_best.is_some())
    }
}

fn best_instance(
    e: &Enumeration,
    program: &Program,
    root: &Function,
    target: &Target,
    inputs: &[Vec<i32>],
    oc: &OracleConfig,
) -> Option<BestInstance> {
    let min = e.space.iter().map(|(_, n)| n.inst_count).min()?;
    let mut m = Machine::with_mem_size(program, oc.mem_size);
    m.set_engine(oc.engine);
    // Every static-min instance is executed, so the dynamic tie-break
    // is independent of node numbering — which differs between the two
    // spaces even where the instances coincide.
    let mut best: Option<BestInstance> = None;
    for (id, n) in e.space.iter().filter(|(_, n)| n.inst_count == min) {
        let f = rematerialize(root, target, &e.space, id);
        let dynamic = m.run_battery(&f, inputs, oc.fuel).iter().map(|(_, d)| d).sum();
        if best.as_ref().is_none_or(|b| dynamic < b.dynamic) {
            best = Some(BestInstance {
                sequence: sequence_letters(&e.space.discovery_sequence(id)),
                inst_count: n.inst_count,
                dynamic,
            });
        }
    }
    best
}

/// Runs [`enumerate_semantic`] and [`enumerate_semantic_pruned`] on `f`
/// and compares them. The dynamic counts of both optima are measured on
/// the *same* battery — built once from the unoptimized baseline with
/// the signature tier's parameters — so a nonzero
/// [`QuotientAudit::dynamic_drift`] can only come from the leaves
/// differing, never from input skew. Ticks the `audit.functions` and
/// `audit.unsound_prunes` telemetry counters.
pub fn audit_function(
    program: &Program,
    f: &Function,
    target: &Target,
    config: &Config,
    sem_config: &SemanticConfig,
) -> QuotientAudit {
    let oc = OracleConfig {
        battery: sem_config.battery,
        seed: sem_config.seed,
        fuel: sem_config.fuel,
        mem_size: sem_config.mem_size,
        ..OracleConfig::default()
    };
    let (inputs, _, _) = oracle::build_battery(program, f, &oc);

    let ann = enumerate_semantic(program, f, target, config, sem_config);
    let pruned = enumerate_semantic_pruned(program, f, target, config, sem_config);

    let audit = QuotientAudit {
        name: f.name.clone(),
        ann_complete: ann.outcome.is_complete(),
        pruned_complete: pruned.outcome.is_complete(),
        ann_nodes: ann.space.len(),
        pruned_nodes: pruned.space.len(),
        ann_classes: ann.space.sem_class_count(),
        pruned_classes: pruned.space.sem_class_count(),
        prunes: pruned.stats.sem_prunes,
        mask_fallbacks: pruned.stats.sem_mask_fallbacks,
        ann_wall: ann.stats.elapsed,
        pruned_wall: pruned.stats.elapsed,
        ann_best: best_instance(&ann, program, f, target, &inputs, &oc),
        pruned_best: best_instance(&pruned, program, f, target, &inputs, &oc),
    };
    let t = crate::telemetry::global();
    t.audit_functions.inc();
    if audit.unsound() {
        t.audit_unsound_prunes.inc();
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_is_sound_and_reports_savings_on_a_loop_kernel() {
        let program = mibench::find("bitcount").unwrap().compile().unwrap();
        let f = program.function("bit_count").unwrap().clone();
        let a = audit_function(
            &program,
            &f,
            &Target::default(),
            &Config::default(),
            &SemanticConfig::default(),
        );
        assert!(a.comparable());
        assert!(!a.unsound(), "subsumption pruning lost the optimum: {a:?}");
        assert_eq!(a.static_drift(), 0);
        assert_eq!(a.dynamic_drift(), 0);
        assert!(a.prunes > 0, "a loop kernel must exercise the prune path");
        assert!(a.pruned_nodes < a.ann_nodes, "pruning must shrink the space");
        // Classes may be lost (dynamic profiles live in pruned subtrees)
        // but never gained.
        assert!(a.pruned_classes <= a.ann_classes);
    }

    #[test]
    fn drift_signs_follow_the_pruned_minus_annotation_convention() {
        let base = BestInstance { sequence: "s".into(), inst_count: 10, dynamic: 100 };
        let worse = BestInstance { sequence: "c".into(), inst_count: 12, dynamic: 140 };
        let a = QuotientAudit {
            name: "t".into(),
            ann_complete: true,
            pruned_complete: true,
            ann_nodes: 10,
            pruned_nodes: 8,
            ann_classes: 6,
            pruned_classes: 5,
            prunes: 2,
            mask_fallbacks: 1,
            ann_wall: Duration::ZERO,
            pruned_wall: Duration::ZERO,
            ann_best: Some(base.clone()),
            pruned_best: Some(worse),
        };
        assert_eq!(a.static_drift(), 2);
        assert_eq!(a.dynamic_drift(), 40);
        assert!(a.unsound());
        assert_eq!(a.classes_lost(), 1);
        assert_eq!(a.node_savings(), 2);

        // Identical optima: sound.
        let sound = QuotientAudit { pruned_best: Some(base.clone()), ..a.clone() };
        assert!(!sound.unsound());

        // Truncated annotation tier: not comparable, hence never unsound.
        let truncated = QuotientAudit { ann_complete: false, ..a };
        assert!(!truncated.comparable());
        assert!(!truncated.unsound());
    }
}
