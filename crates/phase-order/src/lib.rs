//! Exhaustive optimization phase order space exploration.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Exhaustive Optimization Phase Order Space Exploration*, Kulkarni,
//! Whalley, Tyson, Davidson — CGO 2006): it enumerates **all function
//! instances** a compiler can produce by reordering its optimization
//! phases, then mines the resulting space.
//!
//! * [`mod@enumerate`] — the level-order search of Section 4, with the two
//!   pruning techniques that make it tractable: *dormant phase detection*
//!   (Section 4.1) and *identical function instance detection* via
//!   canonical fingerprints (Section 4.2), plus the prefix-sharing
//!   evaluation enhancements of Section 4.3 (Figure 6).
//! * [`space`] — the resulting weighted DAG of distinct function instances
//!   (Figure 7), with node weights counting the distinct active sequences
//!   through each node.
//! * [`stats`] — the per-function search-space statistics of Table 3.
//! * [`interaction`] — the enabling / disabling / independence probability
//!   analyses of Tables 4, 5 and 6 (Section 5).
//! * [`prob`] — the probabilistic batch compiler of Section 6 (Figure 8),
//!   which uses those probabilities to dynamically choose the next phase
//!   and cuts compilation time to roughly a third of the conventional
//!   batch loop at comparable code quality (Table 7).
//! * [`oracle`] — the differential equivalence oracle: every distinct
//!   instance in an enumerated space is executed on a seeded input battery
//!   and checked against the unoptimized baseline, every fingerprint-merged
//!   duplicate is rematerialized and checked for byte-identical behaviour,
//!   and per-leaf dynamic instruction counts locate the best ordering
//!   (Section 7's measure).
//! * [`semantic`] — the second, *behavioral* merge tier
//!   (`--merge-tier semantic`): fingerprint-fresh instances are keyed by
//!   a behavioral signature (the oracle's seeded battery executed on the
//!   threaded simulator — observation plus dynamic count per entry —
//!   combined with a cheap structural key) and merged when signatures
//!   match, with paranoid mode escalating every hit to a differential
//!   re-execution over an extended battery before accepting it.
//! * [`search`] — the non-exhaustive searches of the surrounding
//!   literature (random, hill climbing, genetic), with the fingerprint
//!   redundancy detection of the authors' companion work, evaluated here
//!   against exhaustive ground truth.
//! * [`campaign`] — the resumable multi-function campaign driver: one
//!   work-stealing worker pool explores every function of a program (or
//!   a whole benchmark suite), checkpointing each completed function to
//!   an on-disk result store ([`campaign::store`]) so an interrupted
//!   campaign resumes exactly where it stopped, and streaming progress
//!   through the [`campaign::Observer`] trait.
//! * [`telemetry`] — the lock-free metrics registry wired through all of
//!   the above: nodes expanded, fingerprint-cache hits, prunes, steal
//!   counts, level wall times, store flush latency…, snapshotted to a
//!   deterministic-schema JSON document (`vpoc … --metrics <path>`) and
//!   gated against a pinned baseline by the `perfsuite` harness.
//!
//! # Example
//!
//! Exhaustively enumerate a small function's phase-order space:
//!
//! ```
//! use phase_order::enumerate::{enumerate, Config};
//! use vpo_opt::Target;
//!
//! let program = vpo_frontend::compile(
//!     "int square(int x) { return x * x; }",
//! ).unwrap();
//! let e = enumerate(&program.functions[0], &Target::default(), &Config::default());
//! assert!(e.outcome.is_complete());
//! // Several distinct function instances exist, far fewer than the 15^n
//! // attempted orderings.
//! assert!(e.space.len() > 1);
//! ```

pub mod audit;
pub mod campaign;
pub mod enumerate;
pub mod interaction;
pub mod oracle;
pub mod prob;
pub mod request;
pub mod search;
pub mod semantic;
pub mod service;
pub mod space;
pub mod stats;
pub mod telemetry;
pub mod wire;

pub use enumerate::{
    enumerate, enumerate_semantic, enumerate_semantic_pruned, jobs_per_cpu, Config, Engine,
    Enumeration, ReplayMode, SearchOutcome,
};
pub use semantic::{SemanticConfig, SemanticContext, Signature, StructuralKey};
pub use space::{NodeId, SearchSpace};

/// Seedable pseudo-random number generation (re-exported from `vpo-rtl`,
/// its home since the front-end fuzzer also needs seeding; the historical
/// `phase_order::rng` path keeps working).
pub use vpo_rtl::rng;
