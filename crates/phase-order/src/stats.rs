//! Per-function search-space statistics — the rows of Table 3.

use vpo_rtl::cfg::Cfg;
use vpo_rtl::loops::loop_count;
use vpo_rtl::Function;

use crate::enumerate::Enumeration;

/// One row of the paper's Table 3.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionRow {
    /// Function name (with its benchmark tag where applicable).
    pub name: String,
    /// Instructions in the unoptimized function (`Insts`).
    pub insts: usize,
    /// Basic blocks (`Blk`).
    pub blocks: usize,
    /// Conditional + unconditional transfers of control (`Brch`).
    pub branches: usize,
    /// Natural loops (`Loop`).
    pub loops: usize,
    /// Distinct function instances (`Fn inst`), `None` when the search was
    /// too big (the paper's `N/A`).
    pub fn_instances: Option<usize>,
    /// Optimization phases attempted (`Attempt Phases`).
    pub attempted_phases: Option<u64>,
    /// Largest active phase sequence length (`Len`).
    pub max_seq_len: Option<u32>,
    /// Distinct control flows (`CF`).
    pub control_flows: Option<usize>,
    /// Leaf function instances (`Leaf`).
    pub leaves: Option<usize>,
    /// Leaf code-size maximum (`Codesize Max.`).
    pub code_max: Option<u32>,
    /// Leaf code-size minimum (`Codesize Min.`).
    pub code_min: Option<u32>,
}

impl FunctionRow {
    /// Builds a row from a function and its enumeration result.
    pub fn new(name: impl Into<String>, f: &Function, e: &Enumeration) -> Self {
        let cfg = Cfg::build(f);
        let complete = e.outcome.is_complete();
        let (code_min, code_max) = match e.space.leaf_code_size_range() {
            Some((lo, hi)) if complete => (Some(lo), Some(hi)),
            _ => (None, None),
        };
        FunctionRow {
            name: name.into(),
            insts: f.inst_count(),
            blocks: f.blocks.len(),
            branches: f.branch_count(),
            loops: loop_count(&cfg),
            fn_instances: complete.then_some(e.space.len()),
            attempted_phases: complete.then_some(e.stats.attempted_phases),
            max_seq_len: complete.then_some(e.space.max_active_sequence_length()),
            control_flows: complete.then_some(e.space.distinct_control_flows()),
            leaves: complete.then_some(e.space.leaf_count()),
            code_max,
            code_min,
        }
    }

    /// Percentage code-size difference between the worst and best leaf
    /// (`% Diff` — "the maximum difference in code size that is possible
    /// due to different phase orderings").
    pub fn code_diff_percent(&self) -> Option<f64> {
        match (self.code_max, self.code_min) {
            (Some(max), Some(min)) if min > 0 => Some((max - min) as f64 * 100.0 / min as f64),
            _ => None,
        }
    }

    /// Formats the row roughly as in the paper's table (columns separated
    /// by whitespace; `N/A` for incomplete searches).
    pub fn render(&self) -> String {
        fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
            v.as_ref().map(|x| x.to_string()).unwrap_or_else(|| "N/A".into())
        }
        format!(
            "{:<22} {:>6} {:>4} {:>4} {:>4} {:>9} {:>11} {:>4} {:>5} {:>6} {:>6} {:>6} {:>7}",
            self.name,
            self.insts,
            self.blocks,
            self.branches,
            self.loops,
            opt(&self.fn_instances),
            opt(&self.attempted_phases),
            opt(&self.max_seq_len),
            opt(&self.control_flows),
            opt(&self.leaves),
            opt(&self.code_max),
            opt(&self.code_min),
            self.code_diff_percent().map(|d| format!("{d:.1}")).unwrap_or_else(|| "N/A".into()),
        )
    }

    /// The table header matching [`FunctionRow::render`].
    pub fn header() -> String {
        format!(
            "{:<22} {:>6} {:>4} {:>4} {:>4} {:>9} {:>11} {:>4} {:>5} {:>6} {:>6} {:>6} {:>7}",
            "Function",
            "Insts",
            "Blk",
            "Brch",
            "Loop",
            "FnInst",
            "AttemptPh",
            "Len",
            "CF",
            "Leaf",
            "Max",
            "Min",
            "%Diff"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, Config};
    use vpo_opt::Target;

    #[test]
    fn row_from_small_function() {
        let p = vpo_frontend::compile(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
        )
        .unwrap();
        let f = &p.functions[0];
        let e = enumerate(f, &Target::default(), &Config::default());
        let row = FunctionRow::new("f(t)", f, &e);
        assert_eq!(row.loops, 1);
        assert!(row.fn_instances.unwrap() > 5);
        assert!(row.attempted_phases.unwrap() > row.fn_instances.unwrap() as u64);
        assert!(row.code_max.unwrap() >= row.code_min.unwrap());
        assert!(row.code_diff_percent().unwrap() >= 0.0);
        let line = row.render();
        assert!(line.contains("f(t)"));
        assert!(!line.contains("N/A"));
        assert_eq!(
            FunctionRow::header().split_whitespace().count(),
            line.split_whitespace().count()
        );
    }

    #[test]
    fn incomplete_searches_render_na() {
        let p = vpo_frontend::compile(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i * i; return s; }",
        )
        .unwrap();
        let f = &p.functions[0];
        let e =
            enumerate(f, &Target::default(), &Config { max_level_width: 1, ..Config::default() });
        let row = FunctionRow::new("f(t)", f, &e);
        assert_eq!(row.fn_instances, None);
        assert!(row.render().contains("N/A"));
    }
}
