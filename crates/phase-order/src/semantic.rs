//! Semantic-equivalence merge tier for enumeration.
//!
//! The paper's space collapse (§4.2.1) is purely *syntactic*: two
//! instances merge only when their canonical fingerprints are
//! byte-identical. Wang et al.'s "Beyond the Phase Ordering Problem"
//! observes that the interesting quotient is *semantic* — instances that
//! behave identically are interchangeable for every downstream question
//! the space answers, so collapsing on behavior shrinks the DAG further
//! and upgrades "optimal ordering found" to "optimal code w.r.t.
//! phases".
//!
//! This module implements the behavioral signature behind the second
//! merge tier:
//!
//! * a **structural key** — function flags, block count, instruction
//!   count and distinct-register footprint — that is free to compute and
//!   bounds the collision probability of the behavioral part (two
//!   instances must agree on all four before their batteries are even
//!   compared);
//! * a **battery signature** — the oracle's seeded input battery
//!   executed on the simulator, recording per entry the observation
//!   (return value + globals CRC, or the trap) *and the dynamic
//!   instruction count*. The dynamic count is essential: every instance
//!   in a space is semantically equivalent to the baseline by
//!   construction, so observations alone discriminate nothing — what
//!   distinguishes members of one space is how much they *cost*, and the
//!   per-entry dynamic count captures exactly that (it is also what
//!   keeps the optimal-leaf report identical under either tier).
//!
//! Under the *annotation* tier (`--merge-tier semantic`) a signature hit
//! does **not** stop exploration: the merged instance is still inserted
//! and expanded, because signature equality is *not* a congruence under
//! phase application — two behaviorally identical instances are
//! different code, and phases can take them to different classes, so
//! pruning the subtree would silently lose instances (and potentially
//! the optimal leaf). The tier is instead an exact *quotient annotation*
//! over the fingerprint space: the node set and `children` edges are
//! bit-identical under either tier, merged nodes carry a `sem_children`
//! edge to their class representative, and the "distinct instances" a
//! semantic Table 3 reports is the class count.
//!
//! The *pruned* tier (`--merge-tier semantic-pruned`,
//! [`SemanticContext::enable_pruning`]) strengthens the merge criterion
//! enough to skip expansion: a signature hit is pruned only when the
//! candidate's **realized active-phase set** is subsumed by its
//! already-expanded representative's — every phase that actually fires
//! on the candidate must have a child at the representative landing in
//! the same behavioral class as the candidate's own result for that
//! phase ([`SemanticContext::subsumes`], a one-step lookahead). The
//! level barrier makes the representative's edge list exact: merges run
//! serially after every earlier-level node has been expanded, so a
//! same-level representative has no children yet and never subsumes;
//! likewise a candidate with no active phase is a genuine leaf and is
//! kept visible rather than pruned. A candidate that passes is recorded
//! as a pruned node (inserted, never expanded) and its subtree is
//! charged to the representative's; where only the signature matches,
//! the candidate falls back to annotation-tier expansion and is counted
//! as a mask fallback. `vpoc audit-quotient` measures the exact class
//! loss of this criterion against the annotation tier as ground truth.
//!
//! Merging instances whose signatures match is sound for every report
//! the quotient produces *if* equal signatures imply equal behavior and
//! cost. That implication is probabilistic (the battery is finite), so:
//!
//! * **paranoid mode** escalates every signature hit to a full
//!   differential re-execution over an *extended* battery — overflow
//!   edges (`i32::MAX`, `i32::MIN`, ±2³⁰) and full-range seeded draws
//!   that the deliberately-small base battery never reaches — and
//!   rejects the merge (the candidate stays a fresh node) unless every
//!   *observation* matches some established representative of the class
//!   (cost at extreme inputs is not compared: input-dependent trip
//!   counts legitimately diverge there, and the cost half of the claim
//!   is settled by the base battery);
//! * the differential oracle ([`crate::oracle`]) re-validates every
//!   accepted semantic merge after the fact, exactly as it re-derives
//!   fingerprint merges.
//!
//! Signature computation and lookup happen at *merge time*, which is
//! serial and in frontier order even under parallel enumeration — the
//! semantic tier therefore inherits the bit-identical-for-any-job-count
//! guarantee of the fingerprint tier unchanged.

use std::collections::HashMap;
use std::sync::Arc;

use vpo_opt::facts::Facts;
use vpo_opt::{attempt, PhaseId, Target};
use vpo_rtl::rng::Rng;
use vpo_rtl::{Expr, FuncFlags, Function, Program, Reg};
use vpo_sim::{Machine, SimEngine, SimError};

use crate::oracle::{self, OracleConfig};
use crate::space::NodeId;

/// Options for the semantic merge tier.
///
/// The battery parameters deliberately mirror [`OracleConfig`]'s
/// defaults so that the signature battery and the oracle's verification
/// battery are the *same inputs* — a semantic merge accepted during
/// enumeration is then re-validated by `vpoc verify` on exactly the
/// evidence it was accepted on (plus the extended battery in paranoid
/// mode).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SemanticConfig {
    /// Number of base-battery inputs (see [`OracleConfig::battery`]).
    pub battery: usize,
    /// Seed for battery generation (see [`OracleConfig::seed`]).
    pub seed: u64,
    /// Dynamic-instruction budget per signature simulation.
    pub fuel: u64,
    /// Memory-image size per signature simulation.
    pub mem_size: usize,
}

impl Default for SemanticConfig {
    fn default() -> Self {
        let o = OracleConfig::default();
        SemanticConfig { battery: o.battery, seed: o.seed, fuel: o.fuel, mem_size: o.mem_size }
    }
}

/// One battery entry's outcome: the observation (return value + globals
/// CRC, or the trap) and the run's dynamic instruction count.
pub type BatteryEntry = (Result<(i32, u32), SimError>, u64);

/// One extended-battery entry's outcome: observation only. Escalation
/// re-litigates the *behavioral* half of a signature hit; the cost
/// profile is definitional on the base battery (it is what the
/// signature probes), so two variants with equal base-battery cost and
/// equal extended-battery behavior stay merged in either mode — which
/// keeps the quotient paranoid-invariant on sound spaces.
pub type Observation = Result<(i32, u32), SimError>;

/// The cheap structural component of a signature. Two instances whose
/// structural keys differ are never battery-compared at all, which both
/// bounds the collision probability of the CRC-bearing behavioral part
/// and keeps classes honest: a semantic class only ever contains
/// instances of identical size, shape and register footprint, so the
/// class representative's static properties (code size, Table 3 rows)
/// speak for every member.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StructuralKey {
    /// Phase-ordering flags — instances with different milestone flags
    /// have different legal futures and must never merge.
    pub flags: FuncFlags,
    /// Basic-block count.
    pub blocks: u32,
    /// Instruction count.
    pub insts: u32,
    /// Number of distinct registers read or written.
    pub regs: u32,
}

impl StructuralKey {
    /// Computes the key with a single pass over the function.
    pub fn of(f: &Function) -> StructuralKey {
        let mut regs: Vec<Reg> = Vec::new();
        let mut insts = 0u32;
        for b in &f.blocks {
            for i in &b.insts {
                insts += 1;
                if let Some(d) = i.def() {
                    regs.push(d);
                }
                i.visit_exprs(&mut |e| {
                    e.visit(&mut |e| {
                        if let Expr::Reg(r) = e {
                            regs.push(*r);
                        }
                    });
                });
            }
        }
        regs.sort_unstable();
        regs.dedup();
        StructuralKey {
            flags: f.flags,
            blocks: f.blocks.len() as u32,
            insts,
            regs: regs.len() as u32,
        }
    }
}

/// The behavioral signature: structural key plus the full base-battery
/// outcome vector. Kept as the complete tuple (not a lossy hash) so the
/// only way two different behaviors collide is a CRC collision in the
/// globals digest itself — the same exposure the fingerprint tier
/// already accepts, and the one paranoid mode exists to catch.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Structural component.
    pub structure: StructuralKey,
    /// Per-battery-entry observations and dynamic counts.
    pub battery: Vec<BatteryEntry>,
}

/// Outcome of presenting a fingerprint-fresh instance to the semantic
/// tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Signature matched an established class (and survived escalation,
    /// in paranoid mode): merge into this representative node.
    Merge(NodeId),
    /// No acceptable class: the instance becomes a fresh node.
    /// `collided` is set when a signature hit was *rejected* by paranoid
    /// escalation — the battery collided on genuinely different code.
    Fresh {
        /// Paranoid escalation refuted a signature hit.
        collided: bool,
    },
}

/// An established class representative.
struct ClassRep {
    /// The space node all signature-equal instances merge into.
    node: NodeId,
    /// The representative's function — retained only in paranoid mode,
    /// where escalation re-executes it on the extended battery.
    func: Option<Arc<Function>>,
    /// Lazily computed extended-battery observations (paranoid mode).
    ext: Option<Vec<Observation>>,
}

/// Per-function semantic merge state: the shared simulator (its lowered
/// block cache stays warm across every signature in the space), the two
/// batteries, and the class table.
pub struct SemanticContext<'p> {
    machine: Machine<'p>,
    fuel: u64,
    paranoid: bool,
    prune: bool,
    /// Base battery: the oracle's baseline-clean seeded inputs.
    base: Vec<Vec<i32>>,
    /// Extended battery for paranoid escalation: overflow edges and
    /// full-range draws, *not* filtered for baseline cleanliness (the
    /// comparison is candidate-vs-representative, so traps count too).
    ext: Vec<Vec<i32>>,
    classes: HashMap<Signature, Vec<ClassRep>>,
    /// Every inserted node's class representative (founders map to
    /// themselves) — the lookup behind the pruned tier's one-step
    /// subsumption check ([`SemanticContext::subsumes`]).
    node_rep: HashMap<NodeId, NodeId>,
}

impl<'p> SemanticContext<'p> {
    /// Builds the context for enumerating `f` within `program`.
    /// `paranoid` enables escalation (and representative retention).
    pub fn new(
        program: &'p Program,
        f: &Function,
        config: &SemanticConfig,
        paranoid: bool,
    ) -> SemanticContext<'p> {
        let oc = OracleConfig {
            battery: config.battery,
            seed: config.seed,
            fuel: config.fuel,
            mem_size: config.mem_size,
            ..OracleConfig::default()
        };
        let (base, _baseline, _dyn) = oracle::build_battery(program, f, &oc);
        let ext = extended_battery(f.params.len(), config);
        let mut machine = Machine::with_mem_size(program, config.mem_size);
        machine.set_engine(SimEngine::Threaded);
        SemanticContext {
            machine,
            fuel: config.fuel,
            paranoid,
            prune: false,
            base,
            ext,
            classes: HashMap::new(),
            node_rep: HashMap::new(),
        }
    }

    /// Whether escalation is enabled.
    pub fn paranoid(&self) -> bool {
        self.paranoid
    }

    /// Switches the context into the *pruned* tier: signature hits whose
    /// phase mask is subsumed by their representative's are not expanded
    /// (see the module docs for the criterion and its audit).
    pub fn enable_pruning(&mut self) {
        self.prune = true;
    }

    /// Whether subsumption pruning is enabled.
    pub fn pruning(&self) -> bool {
        self.prune
    }

    /// The base battery inputs (the signature's behavioral evidence).
    pub fn base_inputs(&self) -> &[Vec<i32>] {
        &self.base
    }

    /// The extended battery inputs used by paranoid escalation.
    pub fn ext_inputs(&self) -> &[Vec<i32>] {
        &self.ext
    }

    /// Computes the behavioral signature of a function instance.
    pub fn signature(&mut self, f: &Function) -> Signature {
        let battery = self.machine.run_battery(f, &self.base, self.fuel);
        Signature { structure: StructuralKey::of(f), battery }
    }

    /// Resolves a fingerprint-fresh instance against the class table.
    /// Returns the outcome plus the number of escalations performed
    /// (0 or 1 — one `resolve` escalates at most once, comparing the
    /// candidate's extended battery against every representative).
    pub fn resolve(&mut self, sig: &Signature, f: &Function) -> (Resolution, u64) {
        let Some(reps) = self.classes.get(sig) else {
            return (Resolution::Fresh { collided: false }, 0);
        };
        if !self.paranoid {
            // Single-tier acceptance: outside paranoid mode a class has
            // exactly one representative.
            return (Resolution::Merge(reps[0].node), 0);
        }
        let cand_ext = self.run_extended(f);
        // Borrow dance: compute any missing representative extended
        // batteries first, then compare.
        let missing: Vec<usize> = self
            .classes
            .get(sig)
            .unwrap()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.ext.is_none())
            .map(|(i, _)| i)
            .collect();
        for i in missing {
            let rf = self.classes.get(sig).unwrap()[i]
                .func
                .clone()
                .expect("paranoid class representatives retain their function");
            let obs = self.run_extended(&rf);
            self.classes.get_mut(sig).unwrap()[i].ext = Some(obs);
        }
        for rep in self.classes.get(sig).unwrap() {
            let rep_ext = rep.ext.as_ref().expect("extended battery computed above");
            if *rep_ext == cand_ext {
                return (Resolution::Merge(rep.node), 1);
            }
        }
        (Resolution::Fresh { collided: true }, 1)
    }

    /// Registers a freshly inserted node as a representative of its
    /// signature class. `func` is retained only in paranoid mode.
    pub fn register(&mut self, sig: Signature, node: NodeId, func: &Arc<Function>) {
        let func = self.paranoid.then(|| Arc::clone(func));
        self.node_rep.insert(node, node);
        self.classes.entry(sig).or_default().push(ClassRep { node, func, ext: None });
    }

    /// Records that `node` was inserted as a merge into `rep`'s class —
    /// the bookkeeping [`SemanticContext::subsumes`] needs to map a
    /// representative's child back to that child's own class.
    pub fn record_merge(&mut self, node: NodeId, rep: NodeId) {
        self.node_rep.insert(node, rep);
    }

    /// The pruned tier's subsumption check, run at the merge site once a
    /// candidate's signature has matched a representative's: a *one-step
    /// lookahead* over the candidate's realized successors. Every phase
    /// that actually fires on the candidate must have a child at the
    /// representative (`rep_children`, its exact expanded edge list) that
    /// lands in the **same behavioral class** as the candidate's own
    /// result for that phase. Signature equality is not a congruence
    /// under phase application — a phase both instances fire can take
    /// them to different classes — so a static mask comparison is not
    /// enough; the lookahead checks where the successors really land.
    ///
    /// A representative with no children (same level and not yet
    /// expanded, or itself final) never subsumes, and a candidate with
    /// no active phase is a genuine leaf, kept visible rather than
    /// pruned (skipping it saves no work). The check runs serially at
    /// the level-barrier merge, so it inherits the bit-identical-for-
    /// any-job-count guarantee; its cost is one phase application per
    /// potentially-active phase plus one battery run per *active* one —
    /// the same work expanding the candidate would have spent, traded
    /// for skipping the candidate's entire subtree.
    pub fn subsumes(
        &mut self,
        cand: &Function,
        rep_children: &[(PhaseId, NodeId)],
        target: &Target,
    ) -> bool {
        if rep_children.is_empty() {
            return false;
        }
        let facts = Facts::of(cand);
        let mut any_active = false;
        for phase in PhaseId::ALL {
            if !phase.can_be_active(&facts) {
                continue;
            }
            let mut step = cand.clone();
            if !attempt(&mut step, phase, target).active {
                continue;
            }
            any_active = true;
            // The representative never fired this phase: its expansion
            // has no successor to stand in for the candidate's.
            let Some(&(_, child)) = rep_children.iter().find(|&&(p, _)| p == phase) else {
                return false;
            };
            let Some(&rep_of_child) = self.node_rep.get(&child) else {
                return false;
            };
            let sig = self.signature(&step);
            let Some(reps) = self.classes.get(&sig) else {
                return false;
            };
            if !reps.iter().any(|r| r.node == rep_of_child) {
                return false;
            }
        }
        any_active
    }

    /// Number of established classes (distinct signatures; paranoid
    /// collisions add representatives, not classes).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Differential comparison of two function instances' observations
    /// over the extended battery — the escalation predicate, exposed
    /// for the adversarial test batteries. Compares behavior only (see
    /// [`Observation`]): dynamic counts at extreme inputs can diverge
    /// between genuinely equivalent variants (input-dependent trip
    /// counts), and the cost half of the merge claim is already settled
    /// by the base-battery signature.
    pub fn differential(&mut self, a: &Function, b: &Function) -> bool {
        self.run_extended(a) == self.run_extended(b)
    }

    /// Runs the extended battery, keeping observations only.
    fn run_extended(&mut self, f: &Function) -> Vec<Observation> {
        self.machine.run_battery(f, &self.ext, self.fuel).into_iter().map(|(o, _)| o).collect()
    }
}

/// Builds the paranoid-escalation battery: deterministic overflow edges
/// the base battery's bounded draws (±2M) can never produce, then
/// full-range seeded draws. Inputs are *not* filtered against the
/// baseline — a trap is as good an observation as a value when the
/// question is "do these two instances agree?".
fn extended_battery(arity: usize, config: &SemanticConfig) -> Vec<Vec<i32>> {
    if arity == 0 {
        return vec![Vec::new()];
    }
    let mut inputs: Vec<Vec<i32>> = vec![
        vec![i32::MAX; arity],
        vec![i32::MIN; arity],
        (0..arity).map(|i| if i % 2 == 0 { i32::MAX } else { i32::MIN }).collect(),
        vec![1 << 30; arity],
        vec![-(1 << 30); arity],
        (0..arity).map(|i| [i32::MAX - 1, 1 << 20, -(1 << 28), 3][i % 4]).collect(),
    ];
    let mut rng = Rng::seed_from_u64(config.seed ^ 0x5E3A_0EC7);
    for _ in 0..config.battery.max(1) * 4 {
        inputs.push((0..arity).map(|_| rng.gen_range_i32(i32::MIN..i32::MAX)).collect());
    }
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adversarial sources: each holds a pair `f`/`g` hand-built to agree
    /// on the base battery — same observations, same dynamic counts, same
    /// structural key — while diverging on the extended battery. These
    /// are exactly the collisions the paranoid escalation ladder exists
    /// to reject.
    const ADVERSARIAL_PAIRS: &[(&str, &str)] = &[
        // Seed-dependent branch: the bounded base draws (±2M) never take
        // the big-input arm, where the two functions return differently.
        (
            "seed-dependent branch",
            "int f(int a) { if (a > 3000000) return a + 7; return a + 1; }
             int g(int a) { if (a > 3000000) return a + 9; return a + 1; }",
        ),
        // Overflow edge: a/2 and a/4 land on the same side of the guard
        // for every base-range input, but i32::MAX separates them.
        (
            "overflow-edge divide",
            "int f(int a) { if (a / 2 < 600000000) return 1; return 0; }
             int g(int a) { if (a / 4 < 600000000) return 1; return 0; }",
        ),
        // Global-aliasing writes: the cold arm stores different values to
        // a global, visible only through the globals CRC on big inputs.
        (
            "global-aliasing writes",
            "int g0;
             int f(int a) { if (a > 3000000) { g0 = 1; } else { g0 = 2; } return a; }
             int g(int a) { if (a > 3000000) { g0 = 3; } else { g0 = 2; } return a; }",
        ),
    ];

    fn pair(src: &str) -> (Program, Function, Function) {
        let program = vpo_frontend::compile(src).unwrap();
        let f = program.function("f").unwrap().clone();
        let g = program.function("g").unwrap().clone();
        (program, f, g)
    }

    #[test]
    fn structural_key_counts_shape() {
        let program =
            vpo_frontend::compile("int f(int a, int b) { if (a > b) return a - b; return b - a; }")
                .unwrap();
        let f = program.function("f").unwrap();
        let k = StructuralKey::of(f);
        assert!(k.blocks >= 3, "branchy function has several blocks: {k:?}");
        assert!(k.insts > 0 && k.regs > 0);
        assert_eq!(k, StructuralKey::of(f));
    }

    #[test]
    fn signature_is_deterministic_across_contexts() {
        let program = vpo_frontend::compile("int f(int a) { return a * 3 + 1; }").unwrap();
        let f = program.function("f").unwrap();
        let config = SemanticConfig::default();
        let s1 = SemanticContext::new(&program, f, &config, false).signature(f);
        let s2 = SemanticContext::new(&program, f, &config, false).signature(f);
        assert_eq!(s1, s2);
    }

    #[test]
    fn signature_distinguishes_cost_not_just_behavior() {
        // Same input/output behavior, different code: the structural key
        // (and the per-entry dynamic counts) must keep them apart.
        let program = vpo_frontend::compile(
            "int f(int a) { return a + a; }
             int g(int a) { int t; t = a + a; return t + 0; }",
        )
        .unwrap();
        let f = program.function("f").unwrap();
        let g = program.function("g").unwrap();
        let mut ctx = SemanticContext::new(&program, f, &SemanticConfig::default(), false);
        assert_ne!(ctx.signature(f), ctx.signature(g));
    }

    #[test]
    fn extended_battery_reaches_overflow_edges() {
        let config = SemanticConfig::default();
        let ext = extended_battery(2, &config);
        assert!(ext.contains(&vec![i32::MAX, i32::MAX]));
        assert!(ext.contains(&vec![i32::MIN, i32::MIN]));
        assert_eq!(ext.len(), 6 + config.battery.max(1) * 4);
        // Zero-arity functions still get one (empty) entry.
        assert_eq!(extended_battery(0, &config), vec![Vec::<i32>::new()]);
    }

    #[test]
    fn adversarial_pairs_collide_on_base_battery_and_diverge_extended() {
        for (name, src) in ADVERSARIAL_PAIRS {
            let (program, f, g) = pair(src);
            let mut ctx = SemanticContext::new(&program, &f, &SemanticConfig::default(), true);
            // The pair is a genuine base-battery collision…
            assert_eq!(ctx.signature(&f), ctx.signature(&g), "{name}: base batteries differ");
            // …and the extended battery separates it.
            assert!(!ctx.differential(&f, &g), "{name}: extended battery failed to separate");
        }
    }

    #[test]
    fn pruning_flag_is_off_until_enabled() {
        let program = vpo_frontend::compile("int f(int a) { return a + 1; }").unwrap();
        let f = program.function("f").unwrap();
        let mut ctx = SemanticContext::new(&program, f, &SemanticConfig::default(), false);
        assert!(!ctx.pruning());
        ctx.enable_pruning();
        assert!(ctx.pruning());
    }

    #[test]
    fn paranoid_escalation_rejects_adversarial_merges() {
        for (name, src) in ADVERSARIAL_PAIRS {
            let (program, f, g) = pair(src);
            let config = SemanticConfig::default();
            // Without escalation the collision silently merges — this is
            // the unsoundness paranoid mode exists to reject.
            let mut lax = SemanticContext::new(&program, &f, &config, false);
            let sig_f = lax.signature(&f);
            lax.register(sig_f, NodeId(0), &Arc::new(f.clone()));
            let sig_g = lax.signature(&g);
            assert_eq!(lax.resolve(&sig_g, &g), (Resolution::Merge(NodeId(0)), 0), "{name}");
            // With escalation the hit is re-executed on the extended
            // battery and refused.
            let mut ctx = SemanticContext::new(&program, &f, &config, true);
            let sig_f = ctx.signature(&f);
            ctx.register(sig_f, NodeId(0), &Arc::new(f.clone()));
            let sig_g = ctx.signature(&g);
            assert_eq!(
                ctx.resolve(&sig_g, &g),
                (Resolution::Fresh { collided: true }, 1),
                "{name}: escalation accepted a collision"
            );
            // The refuted candidate founds a second representative of the
            // same signature class; an exact copy of it now merges into
            // that representative, not the first.
            ctx.register(sig_g.clone(), NodeId(1), &Arc::new(g.clone()));
            assert_eq!(
                ctx.resolve(&sig_g, &g),
                (Resolution::Merge(NodeId(1)), 1),
                "{name}: second representative not matched"
            );
            assert_eq!(ctx.class_count(), 1, "{name}: collision must not add a class");
        }
    }
}
