//! Run-wide telemetry: a lock-free registry of atomic counters, gauges
//! and fixed-bucket histograms wired through the enumeration core, the
//! campaign driver and the oracle.
//!
//! The ROADMAP's north star is an engine that runs "as fast as the
//! hardware allows" — which is unfalsifiable without numbers. This
//! module provides the numbers, under two hard constraints:
//!
//! * **Negligible overhead.** Every metric is a plain `AtomicU64`
//!   updated with `Relaxed` ordering; the hot instrumentation points sit
//!   at *merge* granularity (one parent expansion ≈ fifteen phase
//!   applications, each a function clone plus a fixpoint run), so the
//!   registry adds a handful of uncontended atomic adds per ~10⁵ ns of
//!   real work. No locks, no allocation, no branching on a "metrics
//!   enabled" flag — the registry is always on.
//! * **Deterministic schema, flagged determinism.** A snapshot always
//!   contains the same metrics in the same order with the same JSON
//!   shape. Each metric is additionally marked `deterministic`: counters
//!   of *logical* events (nodes inserted, phases attempted, fingerprint
//!   hits…) are bit-identical for any job count and machine and are
//!   gated exactly by the perf baseline harness; wall-clock histograms
//!   and scheduling artifacts (steal counts) are not, and are reported
//!   for observability only.
//!
//! The registry is a process-wide singleton ([`global`]) so the
//! enumeration core needs no API change to be instrumented; harnesses
//! that measure several workloads in one process ([`Telemetry::reset`])
//! zero it between runs. Snapshots serialize to a versioned JSON
//! document ([`Snapshot::to_json`], schema `phase-order-telemetry-v1`)
//! that `vpoc --metrics <path>` writes and the `perfsuite` comparator
//! consumes.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds in nanoseconds: powers of four from
/// 1 µs (2¹⁰ ns) to ~4.3 s (2³² ns), plus an implicit overflow bucket.
/// One fixed latency scale for every histogram keeps the schema
/// deterministic and snapshots trivially comparable.
pub const HIST_BOUNDS_NS: [u64; 12] = [
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
];

/// Bucket count: one per bound plus the overflow bucket.
pub const HIST_BUCKETS: usize = HIST_BOUNDS_NS.len() + 1;

/// A monotonically increasing event count.
pub struct Counter {
    name: &'static str,
    deterministic: bool,
    value: AtomicU64,
}

impl Counter {
    const fn new(name: &'static str, deterministic: bool) -> Counter {
        Counter { name, deterministic, value: AtomicU64::new(0) }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time value: set to the latest observation, or raised to a
/// running maximum (peak tracking).
pub struct Gauge {
    name: &'static str,
    deterministic: bool,
    value: AtomicU64,
}

impl Gauge {
    const fn new(name: &'static str, deterministic: bool) -> Gauge {
        Gauge { name, deterministic, value: AtomicU64::new(0) }
    }

    /// Overwrites the gauge with `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if larger (peak tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket latency histogram over [`HIST_BOUNDS_NS`]. Histograms
/// record wall time, so they are never deterministic.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        let i = HIST_BOUNDS_NS.iter().position(|&b| ns <= b).unwrap_or(HIST_BOUNDS_NS.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one observed duration.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// The full metric inventory. Fields group by subsystem; names carry the
/// same `subsystem.metric` prefix in snapshots.
pub struct Telemetry {
    // -- enumeration core (shared by `enumerate` and the campaign) --
    /// Enumerations started via [`crate::enumerate()`].
    pub searches: Counter,
    /// Enumerations that hit a `max_nodes`/`max_level_width` bound.
    pub searches_truncated: Counter,
    /// Levels merged (both engines and the campaign barrier).
    pub levels: Counter,
    /// Parent expansions merged (one per frontier instance per level).
    pub parents_expanded: Counter,
    /// Optimization phases attempted, dormant ones included.
    pub phases_attempted: Counter,
    /// Attempts that changed the representation.
    pub active_attempts: Counter,
    /// Attempts pruned as dormant (Section 4.1).
    pub dormant_prunes: Counter,
    /// Active attempts merged into an existing node — the identical-
    /// instance prunes of Section 4.2 (fingerprint-cache hits).
    pub fingerprint_hits: Counter,
    /// Attempts proven dormant by a `Facts` prefilter before running the
    /// phase — a subset of `dormant_prunes` that cost neither a clone nor
    /// a phase execution. Counted at merge time, so it is deterministic
    /// for any job count (even under truncation).
    pub prefilter_dormant: Counter,
    /// Distinct instances inserted (fingerprint-cache misses).
    pub nodes_inserted: Counter,
    /// Warm scratch-buffer restores: attempts whose candidate was
    /// materialized into an already-populated per-worker scratch
    /// `Function` (no fresh clone). Scheduling-dependent: worker counts
    /// and discovery stealing change how often buffers start cold.
    pub scratch_reuse_hits: Counter,
    /// Canonical bytes serialized into an already-warm canonicalizer
    /// buffer (allocation-free fingerprints). Scheduling-dependent for
    /// the same reason as `scratch_reuse_hits`.
    pub canon_bytes_reused: Counter,
    /// Fingerprint-fresh instances merged by the semantic tier
    /// (`--merge-tier semantic`): their signature matched an established
    /// class. Counted at merge time, deterministic for any job count.
    pub sem_merge_hits: Counter,
    /// Signature hits rejected by paranoid escalation — the battery
    /// collided on behaviorally different code (expected 0).
    pub sem_sig_collisions: Counter,
    /// Signature hits escalated to extended-battery differential
    /// re-execution (paranoid mode only).
    pub sem_escalations: Counter,
    /// Merged instances whose expansion the pruned tier skipped
    /// (signature matched *and* active-phase mask subsumed by the
    /// representative's; always 0 outside `--merge-tier
    /// semantic-pruned`). Counted at merge time, deterministic for any
    /// job count.
    pub sem_subsumption_prunes: Counter,
    /// Merged instances the pruned tier expanded anyway because the
    /// mask was not subsumed — the recorded `sem_pruned_unsound_skip`
    /// candidates. Deterministic for any job count.
    pub sem_mask_fallbacks: Counter,
    /// Peak frontier width seen by any level of any search.
    pub peak_frontier: Gauge,
    /// Wall time per merged level (`enumerate` engines only; campaign
    /// levels interleave across functions and have no single wall time).
    pub level_wall_ns: Histogram,

    // -- campaign driver --
    /// Functions taken off a campaign task list.
    pub campaign_functions_started: Counter,
    /// Functions fully explored (or truncated) and recorded.
    pub campaign_functions_completed: Counter,
    /// Recorded functions whose search was truncated by a bound.
    pub campaign_functions_truncated: Counter,
    /// Searches suspended at a level boundary with their frontier
    /// persisted (budget exhausted or campaign cancelled) — how many
    /// depends on the per-request budget, so not gated.
    pub campaign_functions_suspended: Counter,
    /// Searches restored from a persisted frontier and deepened.
    pub campaign_functions_deepened: Counter,
    /// Parent expansions claimed from the shared pool.
    pub campaign_claims: Counter,
    /// Claims served from a function other than the earliest in-flight
    /// one — lanes stolen by later functions (scheduling-dependent).
    pub campaign_steals: Counter,
    /// Checkpoint rewrites of the result store.
    pub store_flushes: Counter,
    /// Size of the last flushed store, in bytes.
    pub store_bytes: Gauge,
    /// Wall time per store flush (serialize + write + rename).
    pub store_flush_wall_ns: Histogram,

    // -- memo service (`vpoc serve`) --
    /// Requests accepted off the socket (any type).
    pub serve_requests: Counter,
    /// Queries answered from the memo without spawning workers.
    pub serve_warm_hits: Counter,
    /// Queries that ran (or deepened) an enumeration.
    pub serve_cold_runs: Counter,
    /// Queries rejected by admission control (queue full).
    pub serve_rejected: Counter,

    // -- differential oracle --
    /// Distinct instances executed on the battery.
    pub oracle_instances: Counter,
    /// Fingerprint-merged paths rematerialized and re-checked.
    pub oracle_merged_paths: Counter,
    /// Total simulator executions.
    pub oracle_simulations: Counter,
    /// Battery inputs accepted (baseline runs cleanly).
    pub oracle_battery_inputs: Counter,
    /// Verification failures reported.
    pub oracle_findings: Counter,

    // -- quotient loss audit (`vpoc audit-quotient`) --
    /// Functions audited (pruned and annotation tiers run side by side).
    pub audit_functions: Counter,
    /// Behavioral classes reachable only through pruned subtrees —
    /// unsound prunes (expected 0).
    pub audit_unsound_prunes: Counter,
}

/// A borrowed reference to any metric, for uniform iteration.
pub enum MetricRef<'a> {
    /// A [`Counter`].
    Counter(&'a Counter),
    /// A [`Gauge`].
    Gauge(&'a Gauge),
    /// A [`Histogram`].
    Histogram(&'a Histogram),
}

impl Telemetry {
    const fn new() -> Telemetry {
        Telemetry {
            searches: Counter::new("enumerate.searches", true),
            searches_truncated: Counter::new("enumerate.searches_truncated", true),
            levels: Counter::new("enumerate.levels", true),
            parents_expanded: Counter::new("enumerate.parents_expanded", true),
            phases_attempted: Counter::new("enumerate.phases_attempted", true),
            active_attempts: Counter::new("enumerate.active_attempts", true),
            dormant_prunes: Counter::new("enumerate.dormant_prunes", true),
            fingerprint_hits: Counter::new("enumerate.fingerprint_hits", true),
            prefilter_dormant: Counter::new("enumerate.prefilter_dormant", true),
            nodes_inserted: Counter::new("enumerate.nodes_inserted", true),
            scratch_reuse_hits: Counter::new("enumerate.scratch_reuse_hits", false),
            canon_bytes_reused: Counter::new("enumerate.canon_bytes_reused", false),
            sem_merge_hits: Counter::new("enumerate.sem_merge_hits", true),
            sem_sig_collisions: Counter::new("enumerate.sem_sig_collisions", true),
            sem_escalations: Counter::new("enumerate.sem_escalations", true),
            sem_subsumption_prunes: Counter::new("enumerate.sem_subsumption_prunes", true),
            sem_mask_fallbacks: Counter::new("enumerate.sem_mask_fallbacks", true),
            peak_frontier: Gauge::new("enumerate.peak_frontier", true),
            level_wall_ns: Histogram::new("enumerate.level_wall_ns"),
            campaign_functions_started: Counter::new("campaign.functions_started", true),
            campaign_functions_completed: Counter::new("campaign.functions_completed", true),
            campaign_functions_truncated: Counter::new("campaign.functions_truncated", true),
            campaign_functions_suspended: Counter::new("campaign.functions_suspended", false),
            campaign_functions_deepened: Counter::new("campaign.functions_deepened", false),
            campaign_claims: Counter::new("campaign.claims", true),
            campaign_steals: Counter::new("campaign.steals", false),
            store_flushes: Counter::new("campaign.store_flushes", true),
            store_bytes: Gauge::new("campaign.store_bytes", true),
            store_flush_wall_ns: Histogram::new("campaign.store_flush_wall_ns"),
            serve_requests: Counter::new("serve.requests", false),
            serve_warm_hits: Counter::new("serve.warm_hits", false),
            serve_cold_runs: Counter::new("serve.cold_runs", false),
            serve_rejected: Counter::new("serve.rejected", false),
            oracle_instances: Counter::new("oracle.instances", true),
            oracle_merged_paths: Counter::new("oracle.merged_paths", true),
            oracle_simulations: Counter::new("oracle.simulations", true),
            oracle_battery_inputs: Counter::new("oracle.battery_inputs", true),
            oracle_findings: Counter::new("oracle.findings", true),
            audit_functions: Counter::new("audit.functions", true),
            audit_unsound_prunes: Counter::new("audit.unsound_prunes", true),
        }
    }

    /// Every metric, in the fixed snapshot order.
    pub fn metrics(&self) -> Vec<MetricRef<'_>> {
        use MetricRef::{Counter as C, Gauge as G, Histogram as H};
        vec![
            C(&self.searches),
            C(&self.searches_truncated),
            C(&self.levels),
            C(&self.parents_expanded),
            C(&self.phases_attempted),
            C(&self.active_attempts),
            C(&self.dormant_prunes),
            C(&self.fingerprint_hits),
            C(&self.prefilter_dormant),
            C(&self.nodes_inserted),
            C(&self.scratch_reuse_hits),
            C(&self.canon_bytes_reused),
            C(&self.sem_merge_hits),
            C(&self.sem_sig_collisions),
            C(&self.sem_escalations),
            C(&self.sem_subsumption_prunes),
            C(&self.sem_mask_fallbacks),
            G(&self.peak_frontier),
            H(&self.level_wall_ns),
            C(&self.campaign_functions_started),
            C(&self.campaign_functions_completed),
            C(&self.campaign_functions_truncated),
            C(&self.campaign_functions_suspended),
            C(&self.campaign_functions_deepened),
            C(&self.campaign_claims),
            C(&self.campaign_steals),
            C(&self.store_flushes),
            G(&self.store_bytes),
            H(&self.store_flush_wall_ns),
            C(&self.serve_requests),
            C(&self.serve_warm_hits),
            C(&self.serve_cold_runs),
            C(&self.serve_rejected),
            C(&self.oracle_instances),
            C(&self.oracle_merged_paths),
            C(&self.oracle_simulations),
            C(&self.oracle_battery_inputs),
            C(&self.oracle_findings),
            C(&self.audit_functions),
            C(&self.audit_unsound_prunes),
        ]
    }

    /// Zeroes every metric, including the `vpo-sim` engine counters this
    /// registry folds into its snapshots. Intended for harnesses measuring
    /// several workloads in one process; concurrent updates during the
    /// reset land in whichever side of it they land, so reset only
    /// between runs.
    pub fn reset(&self) {
        for m in self.metrics() {
            match m {
                MetricRef::Counter(c) => c.reset(),
                MetricRef::Gauge(g) => g.reset(),
                MetricRef::Histogram(h) => h.reset(),
            }
        }
        vpo_sim::stats::reset();
    }

    /// Captures the current value of every metric, appending the
    /// simulator-engine counters maintained by [`vpo_sim::stats`]:
    /// `sim.blocks_lowered` and `sim.lower_cache_hits` depend on how the
    /// oracle split work across machines (non-deterministic), while
    /// `sim.batched_retires` is a pure function of the simulated
    /// instruction streams (deterministic).
    pub fn snapshot(&self) -> Snapshot {
        let mut metrics: Vec<MetricSnapshot> = self
            .metrics()
            .into_iter()
            .map(|m| match m {
                MetricRef::Counter(c) => MetricSnapshot {
                    name: c.name,
                    deterministic: c.deterministic,
                    value: MetricValue::Counter(c.get()),
                },
                MetricRef::Gauge(g) => MetricSnapshot {
                    name: g.name,
                    deterministic: g.deterministic,
                    value: MetricValue::Gauge(g.get()),
                },
                MetricRef::Histogram(h) => MetricSnapshot {
                    name: h.name,
                    deterministic: false,
                    value: MetricValue::Histogram {
                        count: h.count(),
                        sum_ns: h.sum_ns(),
                        buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                    },
                },
            })
            .collect();
        let sim = vpo_sim::stats::snapshot();
        metrics.push(MetricSnapshot {
            name: "sim.blocks_lowered",
            deterministic: false,
            value: MetricValue::Counter(sim.blocks_lowered),
        });
        metrics.push(MetricSnapshot {
            name: "sim.lower_cache_hits",
            deterministic: false,
            value: MetricValue::Counter(sim.lower_cache_hits),
        });
        metrics.push(MetricSnapshot {
            name: "sim.batched_retires",
            deterministic: true,
            value: MetricValue::Counter(sim.batched_retires),
        });
        Snapshot { metrics }
    }
}

/// The process-wide registry.
static GLOBAL: Telemetry = Telemetry::new();

/// The process-wide registry instance the subsystems report into.
pub fn global() -> &'static Telemetry {
    &GLOBAL
}

/// One metric's captured value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram contents; `buckets` aligns with [`HIST_BOUNDS_NS`] plus
    /// the overflow bucket.
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed nanoseconds.
        sum_ns: u64,
        /// Per-bucket observation counts.
        buckets: Vec<u64>,
    },
}

/// One metric in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Registry name (`subsystem.metric`).
    pub name: &'static str,
    /// Whether the value is bit-identical for any job count and machine.
    pub deterministic: bool,
    /// Captured value.
    pub value: MetricValue,
}

/// A point-in-time capture of the whole registry, in fixed order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// All metrics, in registry order.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Looks up a counter or gauge value by name.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find(|m| m.name == name).and_then(|m| match m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(v),
            MetricValue::Histogram { .. } => None,
        })
    }

    /// All deterministic scalar metrics as `(name, value)` pairs — the
    /// exact set the perf-regression gate compares against its baseline.
    pub fn deterministic_values(&self) -> Vec<(&'static str, u64)> {
        self.metrics
            .iter()
            .filter(|m| m.deterministic)
            .filter_map(|m| match m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => Some((m.name, v)),
                MetricValue::Histogram { .. } => None,
            })
            .collect()
    }

    /// Renders the snapshot as the versioned JSON document
    /// (`phase-order-telemetry-v1`). The schema is deterministic: same
    /// metrics, same order, same keys on every run.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"phase-order-telemetry-v1\",\n  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let det = if m.deterministic { "true" } else { "false" };
            out.push_str("    {\"name\": \"");
            out.push_str(m.name);
            out.push_str("\", ");
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "\"kind\": \"counter\", \"deterministic\": {det}, \"value\": {v}"
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "\"kind\": \"gauge\", \"deterministic\": {det}, \"value\": {v}"
                    ));
                }
                MetricValue::Histogram { count, sum_ns, buckets } => {
                    out.push_str(&format!(
                        "\"kind\": \"histogram\", \"deterministic\": {det}, \"count\": {count}, \"sum_ns\": {sum_ns}, \"bounds_ns\": ["
                    ));
                    for (j, b) in HIST_BOUNDS_NS.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&b.to_string());
                    }
                    out.push_str("], \"buckets\": [");
                    for (j, b) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&b.to_string());
                    }
                    out.push(']');
                }
            }
            out.push('}');
            if i + 1 < self.metrics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global registry is process-wide and tests run concurrently, so
    // unit tests operate on private fresh registries instead.
    fn fresh() -> Telemetry {
        Telemetry::new()
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let t = fresh();
        t.nodes_inserted.inc();
        t.nodes_inserted.add(4);
        assert_eq!(t.nodes_inserted.get(), 5);
        t.peak_frontier.set_max(7);
        t.peak_frontier.set_max(3);
        assert_eq!(t.peak_frontier.get(), 7);
        t.store_bytes.set(100);
        t.store_bytes.set(60);
        assert_eq!(t.store_bytes.get(), 60);
        t.reset();
        assert_eq!(t.nodes_inserted.get(), 0);
        assert_eq!(t.peak_frontier.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_latency() {
        let t = fresh();
        t.level_wall_ns.observe_ns(500); // <= 1µs bucket
        t.level_wall_ns.observe_ns(1 << 11); // <= 4µs bucket
        t.level_wall_ns.observe_ns(u64::MAX); // overflow bucket
        t.level_wall_ns.observe(Duration::from_micros(2)); // <= 4µs bucket
        assert_eq!(t.level_wall_ns.count(), 4);
        let snap = t.snapshot();
        let m = snap.metrics.iter().find(|m| m.name == "enumerate.level_wall_ns").unwrap();
        let MetricValue::Histogram { count, buckets, .. } = &m.value else {
            panic!("level_wall_ns must snapshot as a histogram")
        };
        assert_eq!(*count, 4);
        assert_eq!(buckets.len(), HIST_BUCKETS);
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn snapshot_schema_is_fixed() {
        let a = fresh().snapshot();
        let b = fresh().snapshot();
        assert_eq!(a.metrics.len(), b.metrics.len());
        for (x, y) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.deterministic, y.deterministic);
        }
        // Names are unique and dot-qualified.
        let mut names: Vec<_> = a.metrics.iter().map(|m| m.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate metric names");
        assert!(a.metrics.iter().all(|m| m.name.contains('.')));
    }

    #[test]
    fn json_shape_is_stable_and_parseable_by_eye() {
        let t = fresh();
        t.searches.inc();
        t.level_wall_ns.observe_ns(2000);
        let json = t.snapshot().to_json();
        assert!(json.contains("\"schema\": \"phase-order-telemetry-v1\""));
        assert!(json.contains("{\"name\": \"enumerate.searches\", \"kind\": \"counter\", \"deterministic\": true, \"value\": 1}"));
        assert!(json.contains("\"kind\": \"histogram\""));
        assert!(json.contains("\"bounds_ns\": [1024,"));
        // Two snapshots of the same state render byte-identically.
        assert_eq!(json, t.snapshot().to_json());
    }

    #[test]
    fn deterministic_values_exclude_wall_and_steals() {
        let t = fresh();
        t.campaign_steals.add(9);
        t.level_wall_ns.observe_ns(5);
        t.nodes_inserted.add(2);
        t.prefilter_dormant.add(3);
        t.scratch_reuse_hits.add(11);
        t.canon_bytes_reused.add(1024);
        let det = t.snapshot().deterministic_values();
        assert!(det.iter().any(|(n, v)| *n == "enumerate.nodes_inserted" && *v == 2));
        assert!(det.iter().any(|(n, v)| *n == "enumerate.prefilter_dormant" && *v == 3));
        assert!(det.iter().all(|(n, _)| *n != "campaign.steals"));
        // Scratch/canon reuse depends on worker scheduling — never gated.
        assert!(det.iter().all(|(n, _)| *n != "enumerate.scratch_reuse_hits"));
        assert!(det.iter().all(|(n, _)| *n != "enumerate.canon_bytes_reused"));
        assert!(det.iter().all(|(n, _)| !n.ends_with("_ns")));
    }

    #[test]
    fn snapshot_value_lookup() {
        let t = fresh();
        t.oracle_simulations.add(42);
        let s = t.snapshot();
        assert_eq!(s.value("oracle.simulations"), Some(42));
        assert_eq!(s.value("enumerate.level_wall_ns"), None, "histograms have no scalar value");
        assert_eq!(s.value("nope"), None);
    }
}
