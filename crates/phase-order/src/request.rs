//! The unified typed exploration request.
//!
//! Every way of asking this crate to explore phase-order spaces — the
//! `vpoc explore` / `verify` / `campaign` subcommands, and the memo
//! daemon's wire protocol — used to carry its own ad-hoc flag plumbing.
//! [`ExploreRequest`] collapses those parallel paths into one struct:
//! *what* to explore (a [`Selector`] plus an optional function filter)
//! and *how* (the enumeration [`Config`], the [`MergeTier`], the
//! semantic-tier battery options, and an optional per-request expansion
//! budget). Construction goes through the builder methods, validation
//! through [`ExploreRequest::validate`], and the whole request
//! serializes through the store's byte helpers ([`crate::wire`]) so the
//! daemon can echo exactly what it is serving.

use std::fmt;
use std::path::PathBuf;

use crate::enumerate::{Config, Engine, ReplayMode};
use crate::semantic::SemanticConfig;
use crate::wire::{self, Reader, WireError};

/// What program(s) a request explores.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Selector {
    /// A source file on disk.
    File(PathBuf),
    /// A built-in MiBench kernel set, by name.
    Bench(String),
    /// Every built-in benchmark (campaign/serve only).
    AllBenches,
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selector::File(p) => write!(f, "file {}", p.display()),
            Selector::Bench(b) => write!(f, "bench {b}"),
            Selector::AllBenches => write!(f, "all benches"),
        }
    }
}

/// How instances are merged into the space: by canonical fingerprint
/// (§4.2.1's syntactic identity) or by behavioral signature.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MergeTier {
    /// Canonical-form identity (the paper's tier, the default).
    #[default]
    Fingerprint,
    /// Behavioral-signature quotient (`--merge-tier semantic`): merged
    /// instances are annotated but still expanded.
    Semantic,
    /// Behavioral-signature quotient with subsumption pruning
    /// (`--merge-tier semantic-pruned`): merged instances whose
    /// active-phase mask is subsumed by their representative's are not
    /// expanded.
    SemanticPruned,
}

impl MergeTier {
    /// The CLI/wire name of the tier.
    pub fn name(self) -> &'static str {
        match self {
            MergeTier::Fingerprint => "fingerprint",
            MergeTier::Semantic => "semantic",
            MergeTier::SemanticPruned => "semantic-pruned",
        }
    }

    /// Whether the tier runs the behavioral-signature machinery.
    pub fn is_semantic(self) -> bool {
        matches!(self, MergeTier::Semantic | MergeTier::SemanticPruned)
    }

    /// Parses a CLI/wire tier name.
    pub fn parse(s: &str) -> Result<MergeTier, String> {
        match s {
            "fingerprint" => Ok(MergeTier::Fingerprint),
            "semantic" => Ok(MergeTier::Semantic),
            "semantic-pruned" => Ok(MergeTier::SemanticPruned),
            other => Err(format!(
                "unknown merge tier `{other}` (expected fingerprint, semantic, or semantic-pruned)"
            )),
        }
    }
}

/// One fully-specified exploration request.
#[derive(Clone, PartialEq, Debug)]
pub struct ExploreRequest {
    /// What to explore.
    pub selector: Selector,
    /// Restrict to one function (`None` = every function the selector
    /// yields).
    pub function: Option<String>,
    /// Enumeration bounds, engine and job count.
    pub config: Config,
    /// Instance-merging tier.
    pub tier: MergeTier,
    /// Battery options for the semantic tier (ignored under
    /// [`MergeTier::Fingerprint`], but always carried so a request
    /// round-trips losslessly).
    pub semantic: SemanticConfig,
    /// Per-request expansion budget: suspend each function's search
    /// after this many merged parent expansions (see
    /// [`crate::campaign::CampaignConfig::budget`]). `None` = run to
    /// completion.
    pub budget: Option<u64>,
}

impl ExploreRequest {
    /// A request to explore a source file, under default options.
    pub fn file(path: impl Into<PathBuf>) -> ExploreRequest {
        ExploreRequest::new(Selector::File(path.into()))
    }

    /// A request to explore a built-in benchmark, under default options.
    pub fn bench(name: impl Into<String>) -> ExploreRequest {
        ExploreRequest::new(Selector::Bench(name.into()))
    }

    /// A request to explore the whole built-in suite.
    pub fn all_benches() -> ExploreRequest {
        ExploreRequest::new(Selector::AllBenches)
    }

    /// A request with default options for an arbitrary selector.
    pub fn new(selector: Selector) -> ExploreRequest {
        ExploreRequest {
            selector,
            function: None,
            config: Config::default(),
            tier: MergeTier::default(),
            semantic: SemanticConfig::default(),
            budget: None,
        }
    }

    /// Restricts the request to one function.
    pub fn function(mut self, name: impl Into<String>) -> ExploreRequest {
        self.function = Some(name.into());
        self
    }

    /// Replaces the enumeration config wholesale.
    pub fn config(mut self, config: Config) -> ExploreRequest {
        self.config = config;
        self
    }

    /// Sets the worker count ([`Config::jobs`] convention: `0` serial).
    pub fn jobs(mut self, jobs: usize) -> ExploreRequest {
        self.config.jobs = jobs;
        self
    }

    /// Sets the node cap ([`Config::max_nodes`]).
    pub fn max_nodes(mut self, max_nodes: usize) -> ExploreRequest {
        self.config.max_nodes = max_nodes;
        self
    }

    /// Enables paranoid merge checking ([`Config::paranoid`]).
    pub fn paranoid(mut self, paranoid: bool) -> ExploreRequest {
        self.config.paranoid = paranoid;
        self
    }

    /// Selects the merge tier.
    pub fn tier(mut self, tier: MergeTier) -> ExploreRequest {
        self.tier = tier;
        self
    }

    /// Sets the semantic-tier battery options.
    pub fn semantic(mut self, semantic: SemanticConfig) -> ExploreRequest {
        self.semantic = semantic;
        self
    }

    /// Sets the per-request expansion budget.
    pub fn budget(mut self, budget: u64) -> ExploreRequest {
        self.budget = Some(budget);
        self
    }

    /// The semantic options a campaign should run with: `Some` exactly
    /// when the semantic tier is selected.
    pub fn semantic_config(&self) -> Option<SemanticConfig> {
        match self.tier {
            MergeTier::Fingerprint => None,
            MergeTier::Semantic | MergeTier::SemanticPruned => Some(self.semantic.clone()),
        }
    }

    /// Rejects requests no backend could honour. Selector/function
    /// existence is checked later, at resolution time — validation here
    /// is about the request's own shape.
    pub fn validate(&self) -> Result<(), String> {
        if self.budget == Some(0) {
            return Err("budget must be at least 1 expansion".into());
        }
        if self.config.max_nodes == 0 {
            return Err("max-nodes must be at least 1".into());
        }
        if self.config.max_level_width == 0 {
            return Err("max-level-width must be at least 1".into());
        }
        if self.tier.is_semantic() && self.semantic.battery == 0 {
            return Err("semantic tier needs a battery of at least 1 input".into());
        }
        if let Selector::Bench(name) = &self.selector {
            if name.is_empty() {
                return Err("bench selector needs a name".into());
            }
        }
        Ok(())
    }

    /// Serializes the request (leading format version byte, then the
    /// store's little-endian byte helpers).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(WIRE_VERSION);
        match &self.selector {
            Selector::File(p) => {
                out.push(0);
                wire::put_str(&mut out, &p.to_string_lossy());
            }
            Selector::Bench(b) => {
                out.push(1);
                wire::put_str(&mut out, b);
            }
            Selector::AllBenches => out.push(2),
        }
        match &self.function {
            Some(f) => {
                out.push(1);
                wire::put_str(&mut out, f);
            }
            None => out.push(0),
        }
        wire::put_u64(&mut out, self.config.max_level_width as u64);
        wire::put_u64(&mut out, self.config.max_nodes as u64);
        out.push(match self.config.replay {
            ReplayMode::PrefixSharing => 0,
            ReplayMode::NaiveReplay => 1,
        });
        out.push(self.config.paranoid as u8);
        out.push(self.config.skip_just_applied as u8);
        wire::put_u64(&mut out, self.config.jobs as u64);
        out.push(match self.config.engine {
            Engine::Scratch => 0,
            Engine::Reference => 1,
        });
        out.push(match self.tier {
            MergeTier::Fingerprint => 0,
            MergeTier::Semantic => 1,
            MergeTier::SemanticPruned => 2,
        });
        wire::put_u32(&mut out, self.semantic.battery as u32);
        wire::put_u64(&mut out, self.semantic.seed);
        wire::put_u64(&mut out, self.semantic.fuel);
        wire::put_u64(&mut out, self.semantic.mem_size as u64);
        match self.budget {
            Some(b) => {
                out.push(1);
                wire::put_u64(&mut out, b);
            }
            None => out.push(0),
        }
        out
    }

    /// Parses a serialized request, rejecting truncation, unknown
    /// versions and invalid discriminants.
    pub fn from_bytes(bytes: &[u8]) -> Result<ExploreRequest, WireError> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::Malformed(format!(
                "request format version {version}, this build reads {WIRE_VERSION}"
            )));
        }
        let selector = match r.u8()? {
            0 => Selector::File(PathBuf::from(r.str()?)),
            1 => Selector::Bench(r.str()?),
            2 => Selector::AllBenches,
            d => return Err(WireError::Malformed(format!("invalid selector discriminant {d}"))),
        };
        let function = if r.bool()? { Some(r.str()?) } else { None };
        let max_level_width = r.u64()? as usize;
        let max_nodes = r.u64()? as usize;
        let replay = match r.u8()? {
            0 => ReplayMode::PrefixSharing,
            1 => ReplayMode::NaiveReplay,
            d => return Err(WireError::Malformed(format!("invalid replay discriminant {d}"))),
        };
        let paranoid = r.bool()?;
        let skip_just_applied = r.bool()?;
        let jobs = r.u64()? as usize;
        let engine = match r.u8()? {
            0 => Engine::Scratch,
            1 => Engine::Reference,
            d => return Err(WireError::Malformed(format!("invalid engine discriminant {d}"))),
        };
        let tier = match r.u8()? {
            0 => MergeTier::Fingerprint,
            1 => MergeTier::Semantic,
            2 => MergeTier::SemanticPruned,
            d => return Err(WireError::Malformed(format!("invalid tier discriminant {d}"))),
        };
        let semantic = SemanticConfig {
            battery: r.u32()? as usize,
            seed: r.u64()?,
            fuel: r.u64()?,
            mem_size: r.u64()? as usize,
        };
        let budget = if r.bool()? { Some(r.u64()?) } else { None };
        if r.remaining() != 0 {
            return Err(WireError::Malformed(format!("{} bytes trail the request", r.remaining())));
        }
        Ok(ExploreRequest {
            selector,
            function,
            config: Config {
                max_level_width,
                max_nodes,
                replay,
                paranoid,
                skip_just_applied,
                jobs,
                engine,
            },
            tier,
            semantic,
            budget,
        })
    }
}

/// Serialization format version of [`ExploreRequest::to_bytes`].
pub const WIRE_VERSION: u8 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExploreRequest {
        ExploreRequest::bench("sha")
            .function("sha_transform")
            .jobs(4)
            .max_nodes(50_000)
            .paranoid(true)
            .tier(MergeTier::Semantic)
            .semantic(SemanticConfig { battery: 3, seed: 11, ..SemanticConfig::default() })
            .budget(250)
    }

    #[test]
    fn builder_composes_and_validates() {
        let r = sample();
        assert_eq!(r.selector, Selector::Bench("sha".into()));
        assert_eq!(r.function.as_deref(), Some("sha_transform"));
        assert_eq!(r.config.jobs, 4);
        assert_eq!(r.config.max_nodes, 50_000);
        assert!(r.config.paranoid);
        assert_eq!(r.tier, MergeTier::Semantic);
        assert_eq!(r.budget, Some(250));
        r.validate().unwrap();
        assert!(r.semantic_config().is_some());

        let fp = ExploreRequest::file("a.mc");
        assert!(fp.semantic_config().is_none());
        fp.validate().unwrap();
    }

    #[test]
    fn validation_rejects_unserviceable_shapes() {
        assert!(ExploreRequest::file("a.mc").budget(0).validate().is_err());
        assert!(ExploreRequest::file("a.mc").max_nodes(0).validate().is_err());
        assert!(ExploreRequest::bench("").validate().is_err());
        let mut r = ExploreRequest::file("a.mc").tier(MergeTier::Semantic);
        r.semantic.battery = 0;
        assert!(r.validate().is_err());
        let mut r = ExploreRequest::file("a.mc");
        r.config.max_level_width = 0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in [MergeTier::Fingerprint, MergeTier::Semantic, MergeTier::SemanticPruned] {
            assert_eq!(MergeTier::parse(tier.name()).unwrap(), tier);
            assert_eq!(tier.is_semantic(), tier != MergeTier::Fingerprint);
        }
        assert!(MergeTier::parse("quantum").is_err());
    }

    #[test]
    fn requests_round_trip_through_bytes() {
        for r in [
            sample(),
            ExploreRequest::file("/tmp/x.mc"),
            ExploreRequest::all_benches().budget(1),
            ExploreRequest::bench("fft").jobs(0),
            ExploreRequest::bench("bitcount").tier(MergeTier::SemanticPruned),
        ] {
            let bytes = r.to_bytes();
            assert_eq!(bytes, r.to_bytes(), "encoding must be deterministic");
            let back = ExploreRequest::from_bytes(&bytes).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.to_bytes(), bytes);
        }
    }

    #[test]
    fn corrupt_requests_are_rejected_cleanly() {
        let good = sample().to_bytes();
        for cut in 0..good.len() {
            assert!(
                ExploreRequest::from_bytes(&good[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
        let mut versioned = good.clone();
        versioned[0] = 99;
        let err = ExploreRequest::from_bytes(&versioned).unwrap_err();
        assert!(err.to_string().contains("version"));
        let mut trailing = good.clone();
        trailing.push(7);
        assert!(ExploreRequest::from_bytes(&trailing).is_err());
        let mut bad_disc = good;
        bad_disc[1] = 9;
        assert!(ExploreRequest::from_bytes(&bad_disc).is_err());
    }
}
