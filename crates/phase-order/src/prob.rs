//! The probabilistic batch compiler of Section 6 (Figure 8).
//!
//! Instead of attempting phases in one fixed order in a loop (with most
//! attempts dormant), the probabilistic compiler maintains, for every
//! phase, the probability that it is currently active. It repeatedly
//! applies the most-probably-active phase and updates the other
//! probabilities with the enabling/disabling statistics mined from
//! exhaustive enumerations:
//!
//! ```text
//! foreach phase i do p[i] = e[i][st];
//! while any p[i] > 0 do
//!     select j with the highest probability of being active;
//!     apply phase j;  p[j] = 0;
//!     if j was active then
//!         foreach i != j do
//!             p[i] += (1 - p[i]) * e[i][j] - p[i] * d[i][j];
//! ```
//!
//! The paper reports compilation in about a third of the batch time with
//! comparable code quality (Table 7).

use vpo_opt::batch::BatchStats;
use vpo_opt::{attempt, PhaseId, Target};
use vpo_rtl::Function;

use crate::interaction::InteractionAnalysis;

const N: usize = PhaseId::COUNT;

/// The probability tables driving the probabilistic compiler.
#[derive(Clone, Debug)]
pub struct ProbTables {
    /// `start[i]` — probability phase `i` is active on unoptimized code.
    pub start: [f64; N],
    /// `enabling[i][j]` — probability that applying `j` enables `i`.
    pub enabling: [[f64; N]; N],
    /// `disabling[i][j]` — probability that applying `j` disables `i`.
    pub disabling: [[f64; N]; N],
    /// Weighted overall activity of each phase, used only to order phases
    /// whose current probabilities tie.
    pub bias: [f64; N],
}

impl ProbTables {
    /// Builds the tables from an accumulated [`InteractionAnalysis`]
    /// (unobserved transitions count as probability 0, i.e. "never seen to
    /// enable/disable").
    pub fn from_analysis(ia: &InteractionAnalysis) -> Self {
        let mut t = ProbTables {
            start: [0.0; N],
            enabling: [[0.0; N]; N],
            disabling: [[0.0; N]; N],
            bias: [0.0; N],
        };
        for i in PhaseId::ALL {
            t.start[i.index()] = ia.start_probability(i).unwrap_or(0.0);
            t.bias[i.index()] = ia.overall_activity(i);
            for j in PhaseId::ALL {
                t.enabling[i.index()][j.index()] = ia.enabling_probability(i, j).unwrap_or(0.0);
                t.disabling[i.index()][j.index()] = ia.disabling_probability(i, j).unwrap_or(0.0);
            }
        }
        t
    }
}

/// Probabilities below this are treated as zero (the paper's loop
/// condition `any p[i] > 0`, made robust to floating-point residue).
const EPSILON: f64 = 1e-6;
/// Hard bound on attempts, defending against pathological tables.
const MAX_ATTEMPTS: usize = 2_000;

/// Compiles `f` by dynamically selecting phases per Figure 8. Returns the
/// same [`BatchStats`] shape as the conventional batch compiler so the two
/// are directly comparable (Table 7).
pub fn probabilistic_compile(f: &mut Function, target: &Target, tables: &ProbTables) -> BatchStats {
    let mut stats = BatchStats::default();
    let mut p = tables.start;
    for _ in 0..MAX_ATTEMPTS {
        // Select the phase with the highest probability of being active.
        // Phases within 5% of the maximum count as tied; ties are broken
        // by the phase's overall activity across the mined spaces, then by
        // table order (a total, deterministic ordering).
        let pmax = p.iter().cloned().fold(0.0f64, f64::max);
        if pmax <= EPSILON {
            break;
        }
        let j = (0..N)
            .filter(|&i| p[i] >= pmax - 0.05 && p[i] > EPSILON)
            .max_by(|&a, &b| tables.bias[a].partial_cmp(&tables.bias[b]).unwrap().then(b.cmp(&a)))
            .expect("pmax guarantees a candidate");
        let phase = PhaseId::from_index(j);
        let outcome = attempt(f, phase, target);
        stats.attempted += 1;
        if outcome.active {
            stats.active += 1;
            stats.sequence.push(phase);
            for (i, pi) in p.iter_mut().enumerate() {
                if i != j {
                    *pi += (1.0 - *pi) * tables.enabling[i][j] - *pi * tables.disabling[i][j];
                    *pi = pi.clamp(0.0, 1.0);
                }
            }
        }
        p[j] = 0.0;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, Config};
    use vpo_opt::batch::batch_compile;

    const SRC: &str = r#"
        int dot(int a[], int b[], int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s += a[i] * b[i];
            return s;
        }
        int clamp(int x, int lo, int hi) {
            if (x < lo) return lo;
            if (x > hi) return hi;
            return x;
        }
        int weird(int x) { return x * 10 + (x ^ 3); }
    "#;

    fn tables_from(src: &str) -> ProbTables {
        let p = vpo_frontend::compile(src).unwrap();
        let mut ia = InteractionAnalysis::new();
        for f in &p.functions {
            let e = enumerate(f, &Target::default(), &Config::default());
            ia.add_space(&e.space);
        }
        ProbTables::from_analysis(&ia)
    }

    #[test]
    fn attempts_far_fewer_phases_than_batch() {
        let tables = tables_from(SRC);
        let p = vpo_frontend::compile(SRC).unwrap();
        let target = Target::default();
        let mut total_batch = 0;
        let mut total_prob = 0;
        for f in &p.functions {
            let mut fb = f.clone();
            let bs = batch_compile(&mut fb, &target);
            let mut fp = f.clone();
            let ps = probabilistic_compile(&mut fp, &target, &tables);
            total_batch += bs.attempted;
            total_prob += ps.attempted;
            // The probabilistic compiler must do real work.
            assert!(ps.active >= 2, "too little activity: {ps:?}");
        }
        assert!(
            total_prob * 2 < total_batch,
            "probabilistic should attempt far fewer phases: {total_prob} vs {total_batch}"
        );
    }

    #[test]
    fn code_quality_is_comparable() {
        let tables = tables_from(SRC);
        let p = vpo_frontend::compile(SRC).unwrap();
        let target = Target::default();
        for f in &p.functions {
            let mut fb = f.clone();
            batch_compile(&mut fb, &target);
            let mut fp = f.clone();
            probabilistic_compile(&mut fp, &target, &tables);
            let ratio = fp.inst_count() as f64 / fb.inst_count() as f64;
            // The paper reports per-function ratios between 0.92 and 1.33
            // with suite-wide tables; tables trained on just three tiny
            // functions are noisier, hence the generous band.
            assert!(
                (0.5..=1.8).contains(&ratio),
                "{}: size ratio out of range: {} vs {} ({ratio})",
                f.name,
                fp.inst_count(),
                fb.inst_count()
            );
        }
    }

    #[test]
    fn terminates_on_adversarial_tables() {
        // Everything enables everything: the attempt bound must hold.
        let tables = ProbTables {
            start: [1.0; N],
            enabling: [[1.0; N]; N],
            disabling: [[0.0; N]; N],
            bias: [0.0; N],
        };
        let p = vpo_frontend::compile("int f(int a) { return a + 1; }").unwrap();
        let mut f = p.functions[0].clone();
        let stats = probabilistic_compile(&mut f, &Target::default(), &tables);
        assert!(stats.attempted <= MAX_ATTEMPTS);
    }

    #[test]
    fn zero_tables_do_nothing() {
        let tables = ProbTables {
            start: [0.0; N],
            enabling: [[0.0; N]; N],
            disabling: [[0.0; N]; N],
            bias: [0.0; N],
        };
        let p = vpo_frontend::compile("int f(int a) { return a + 1; }").unwrap();
        let mut f = p.functions[0].clone();
        let before = f.clone();
        let stats = probabilistic_compile(&mut f, &Target::default(), &tables);
        assert_eq!(stats.attempted, 0);
        assert_eq!(f, before);
    }
}
