//! Non-exhaustive phase-order searches (Section 7 and the paper's
//! companion work \[14\]): random sampling, first-improvement hill
//! climbing, and a small genetic algorithm, all minimizing static code
//! size.
//!
//! The exhaustive enumeration of this crate provides the ground truth
//! these heuristics are usually evaluated without: the
//! `heuristic_search` example and the `paper_claims` tests compare each
//! search's best-found instance against the true optimum of the space.
//!
//! All searches share the paper's *redundancy detection*: sequences are
//! evaluated through a fingerprint cache, so re-discovering an
//! already-seen function instance costs no fresh evaluation — the
//! technique of \[14\] ("Fast searches for effective optimization phase
//! sequences") that the enumeration machinery makes trivial here.

use std::collections::HashMap;

use crate::rng::Rng;
use vpo_opt::{attempt, PhaseId, Target};
use vpo_rtl::canon::Fingerprint;
use vpo_rtl::Function;

/// Outcome of a heuristic search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The best sequence found (active and dormant attempts included).
    pub best_sequence: Vec<PhaseId>,
    /// Static instruction count of the best instance.
    pub best_size: u32,
    /// Distinct function instances actually evaluated (cache misses).
    pub evaluations: usize,
    /// Sequences tried, including cache hits.
    pub sequences_tried: usize,
}

/// Shared evaluation harness with fingerprint-based redundancy detection.
struct Evaluator<'a> {
    base: &'a Function,
    target: &'a Target,
    cache: HashMap<Fingerprint, u32>,
    evaluations: usize,
    sequences_tried: usize,
}

impl<'a> Evaluator<'a> {
    fn new(base: &'a Function, target: &'a Target) -> Self {
        Evaluator { base, target, cache: HashMap::new(), evaluations: 0, sequences_tried: 0 }
    }

    /// Applies `seq` and returns the resulting code size.
    fn eval(&mut self, seq: &[PhaseId]) -> u32 {
        self.sequences_tried += 1;
        let mut f = self.base.clone();
        for &p in seq {
            attempt(&mut f, p, self.target);
        }
        let fp = vpo_rtl::canon::fingerprint(&f);
        if let Some(&size) = self.cache.get(&fp) {
            return size;
        }
        self.evaluations += 1;
        let size = f.inst_count() as u32;
        self.cache.insert(fp, size);
        size
    }
}

fn random_seq(rng: &mut Rng, len: usize) -> Vec<PhaseId> {
    (0..len).map(|_| PhaseId::from_index(rng.gen_range(0..PhaseId::COUNT))).collect()
}

/// Uniform random sampling of `budget` sequences of length `seq_len`.
pub fn random_search(
    f: &Function,
    target: &Target,
    budget: usize,
    seq_len: usize,
    seed: u64,
) -> SearchResult {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ev = Evaluator::new(f, target);
    let mut best_seq = Vec::new();
    let mut best = ev.eval(&best_seq);
    for _ in 0..budget {
        let seq = random_seq(&mut rng, seq_len);
        let size = ev.eval(&seq);
        if size < best {
            best = size;
            best_seq = seq;
        }
    }
    SearchResult {
        best_sequence: best_seq,
        best_size: best,
        evaluations: ev.evaluations,
        sequences_tried: ev.sequences_tried,
    }
}

/// First-improvement hill climbing over single-position mutations, with
/// random restarts when a local minimum is reached before the budget runs
/// out (the strategy of Almagor et al. that the paper cites).
pub fn hill_climb(
    f: &Function,
    target: &Target,
    budget: usize,
    seq_len: usize,
    seed: u64,
) -> SearchResult {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ev = Evaluator::new(f, target);
    let mut best_seq = random_seq(&mut rng, seq_len);
    let mut best = ev.eval(&best_seq);
    let mut cur_seq = best_seq.clone();
    let mut cur = best;
    let mut tried = 0usize;
    while tried < budget {
        // Explore neighbors in a random order.
        let mut improved = false;
        let mut positions: Vec<usize> = (0..seq_len).collect();
        for i in 0..positions.len() {
            let j = rng.gen_range(i..positions.len());
            positions.swap(i, j);
        }
        'outer: for &pos in &positions {
            for p in PhaseId::ALL {
                if p == cur_seq[pos] {
                    continue;
                }
                let mut cand = cur_seq.clone();
                cand[pos] = p;
                let size = ev.eval(&cand);
                tried += 1;
                if size < cur {
                    cur = size;
                    cur_seq = cand;
                    improved = true;
                    break 'outer;
                }
                if tried >= budget {
                    break 'outer;
                }
            }
        }
        if cur < best {
            best = cur;
            best_seq = cur_seq.clone();
        }
        if !improved {
            // Local minimum: restart.
            cur_seq = random_seq(&mut rng, seq_len);
            cur = ev.eval(&cur_seq);
            tried += 1;
        }
    }
    SearchResult {
        best_sequence: best_seq,
        best_size: best,
        evaluations: ev.evaluations,
        sequences_tried: ev.sequences_tried,
    }
}

/// A small generational GA (tournament selection, one-point crossover,
/// per-gene mutation), as in the paper's earlier phase-sequence work.
pub fn genetic_search(
    f: &Function,
    target: &Target,
    population: usize,
    generations: usize,
    seq_len: usize,
    seed: u64,
) -> SearchResult {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ev = Evaluator::new(f, target);
    let mut pop: Vec<(Vec<PhaseId>, u32)> = (0..population.max(2))
        .map(|_| {
            let s = random_seq(&mut rng, seq_len);
            let fit = ev.eval(&s);
            (s, fit)
        })
        .collect();
    let mut best = pop.iter().min_by_key(|(_, s)| *s).cloned().unwrap();

    for _ in 0..generations {
        let mut next = Vec::with_capacity(pop.len());
        // Elitism: keep the best individual.
        pop.sort_by_key(|(_, s)| *s);
        next.push(pop[0].clone());
        while next.len() < pop.len() {
            let pick = |rng: &mut Rng, pop: &[(Vec<PhaseId>, u32)]| {
                let a = rng.gen_range(0..pop.len());
                let b = rng.gen_range(0..pop.len());
                if pop[a].1 <= pop[b].1 {
                    a
                } else {
                    b
                }
            };
            let pa = pick(&mut rng, &pop);
            let pb = pick(&mut rng, &pop);
            let cut = rng.gen_range(0..seq_len);
            let mut child: Vec<PhaseId> =
                pop[pa].0[..cut].iter().chain(pop[pb].0[cut..].iter()).copied().collect();
            for gene in child.iter_mut() {
                if rng.gen_range(0..100) < 5 {
                    *gene = PhaseId::from_index(rng.gen_range(0..PhaseId::COUNT));
                }
            }
            let fit = ev.eval(&child);
            if fit < best.1 {
                best = (child.clone(), fit);
            }
            next.push((child, fit));
        }
        pop = next;
    }
    SearchResult {
        best_sequence: best.0,
        best_size: best.1,
        evaluations: ev.evaluations,
        sequences_tried: ev.sequences_tried,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, Config};

    fn compile(src: &str) -> Function {
        vpo_frontend::compile(src).unwrap().functions.remove(0)
    }

    const SRC: &str =
        "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i * 4; return s; }";

    #[test]
    fn searches_never_beat_the_exhaustive_optimum() {
        let f = compile(SRC);
        let target = Target::default();
        let e = enumerate(&f, &target, &Config::default());
        // The space-wide minimum, not the leaf minimum: heuristics may stop
        // at interior instances where only code-growing phases remain.
        let (optimum, _) = e.space.code_size_range().unwrap();
        let (best_leaf, _) = e.space.leaf_code_size_range().unwrap();
        let naive = f.inst_count() as u32;
        // Heuristics are noisy: evaluate the standard best-of-three-seeds.
        let random = (1..=3)
            .map(|s| random_search(&f, &target, 150, 12, s))
            .min_by_key(|r| r.best_size)
            .unwrap();
        let hill = (1..=3)
            .map(|s| hill_climb(&f, &target, 300, 12, s))
            .min_by_key(|r| r.best_size)
            .unwrap();
        let ga = (1..=3)
            .map(|s| genetic_search(&f, &target, 16, 16, 12, s))
            .min_by_key(|r| r.best_size)
            .unwrap();
        for result in [&random, &hill, &ga] {
            assert!(
                result.best_size >= optimum,
                "heuristic 'beat' the exhaustive optimum: {} < {optimum}",
                result.best_size
            );
            assert!(result.best_size < naive, "no improvement over naive code");
        }
        // The guided searches should approach the best leaf (random
        // sampling is allowed to be bad — that is exactly why the
        // literature moved to hill climbers and GAs).
        for result in [&hill, &ga] {
            assert!(
                result.best_size as f64 <= best_leaf as f64 * 1.3,
                "guided search landed far from the best leaf: {} vs {best_leaf}",
                result.best_size
            );
        }
    }

    #[test]
    fn redundancy_detection_saves_evaluations() {
        let f = compile(SRC);
        let target = Target::default();
        let r = random_search(&f, &target, 200, 10, 7);
        assert!(
            r.evaluations < r.sequences_tried,
            "cache never hit: {} evaluations for {} sequences",
            r.evaluations,
            r.sequences_tried
        );
    }

    #[test]
    fn searches_are_deterministic_per_seed() {
        let f = compile(SRC);
        let target = Target::default();
        let a = hill_climb(&f, &target, 80, 10, 42);
        let b = hill_climb(&f, &target, 80, 10, 42);
        assert_eq!(a.best_size, b.best_size);
        assert_eq!(a.best_sequence, b.best_sequence);
        let c = genetic_search(&f, &target, 8, 6, 10, 9);
        let d = genetic_search(&f, &target, 8, 6, 10, 9);
        assert_eq!(c.best_size, d.best_size);
    }
}
