//! Differential equivalence oracle over an enumerated phase-order space.
//!
//! The paper's whole methodology rests on two assumptions this module
//! turns into executable, testable invariants:
//!
//! 1. **Semantic equivalence** (Section 2): every node of the enumerated
//!    space is a function instance *semantically equivalent* to the
//!    unoptimized function — any phase ordering preserves behaviour.
//! 2. **Identity of fingerprint hits** (Section 4.2.1): when two phase
//!    orderings produce instances with equal canonical fingerprints, the
//!    enumeration merges them into one DAG node. If the CRC-based
//!    fingerprint ever confused two *different* functions, the space
//!    would silently undercount — the paper argues collisions are
//!    "extremely rare"; this oracle checks the stronger claim that the
//!    merged instances behave byte-identically.
//!
//! The oracle walks a [`SearchSpace`], rematerializes every distinct
//! instance by replaying its discovery edge from its parent, and executes
//! each one in [`vpo_sim::Machine`] on a deterministic, seeded input
//! battery (inputs on which the unoptimized baseline runs cleanly):
//!
//! * every instance's observations (return value, globals digest) must
//!   equal the baseline's — assumption 1;
//! * every *non-discovery* edge `u --p--> v` (a fingerprint hit during
//!   enumeration) is replayed too: `p` applied to `u`'s materialization
//!   must both serialize to `v`'s exact canonical bytes and observe
//!   byte-identically on the battery — assumption 2, end to end;
//! * every *semantic merge* edge (a signature hit under
//!   `--merge-tier semantic`) is replayed the same way, checking the
//!   tier's weaker claim: the rematerialization must match its class
//!   representative's structural key, per-input observations *and*
//!   per-input dynamic instruction counts — behavior and cost, which is
//!   exactly what the signature asserted at merge time;
//! * every leaf's total dynamic instruction count over the battery is
//!   recorded, so the dynamic-count-optimal ordering of Section 7 falls
//!   out of a verification run for free.
//!
//! Verification parallelizes over instances ([`OracleConfig::jobs`],
//! reusing the level-barrier pattern of the parallel enumeration); the
//! verdict is bit-identical for any job count because observations are
//! deterministic and findings are collected in node order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use vpo_opt::{attempt, PhaseId, Target};
use vpo_rtl::canon;
use vpo_rtl::rng::Rng;
use vpo_rtl::{Function, Program};
use vpo_sim::{Machine, SimEngine, SimError};

use crate::enumerate::Enumeration;
use crate::space::{NodeId, SearchSpace};

/// Oracle options.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Number of battery inputs to verify on (inputs whose baseline
    /// execution traps are discarded and re-drawn).
    pub battery: usize,
    /// Seed for battery generation.
    pub seed: u64,
    /// Dynamic-instruction budget per simulation.
    pub fuel: u64,
    /// Memory-image size per simulation (the whole image is zeroed
    /// between runs, so smaller is faster; must fit globals and stack).
    pub mem_size: usize,
    /// Worker threads: `0` = one per available CPU, `1` = serial.
    pub jobs: usize,
    /// Which simulator engine executes the battery. Both engines are
    /// observationally identical, so the verdict does not depend on the
    /// choice; [`SimEngine::Threaded`] (the default) is the fast path,
    /// [`SimEngine::Interp`] the reference for differential runs.
    pub engine: SimEngine,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            battery: 4,
            seed: 0x04AC1E,
            fuel: 2_000_000,
            mem_size: 1 << 18,
            jobs: 1,
            engine: SimEngine::default(),
        }
    }
}

/// What one execution of one instance on one input looked like: the
/// returned value and a CRC-32 digest of the globals segment, or the
/// trap. Two instances are observationally identical on an input iff
/// these compare equal.
pub type Observation = Result<(i32, u32), SimError>;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Finding {
    /// An instance disagreed with the unoptimized baseline on an input —
    /// some phase sequence miscompiled the function (assumption 1).
    BaselineMismatch {
        /// The offending instance.
        node: NodeId,
        /// Index into the battery.
        input: usize,
        /// What the unoptimized function observed.
        expected: Observation,
        /// What this instance observed.
        got: Observation,
    },
    /// A non-discovery edge rematerialization did not behave identically
    /// to the node it was merged with — the fingerprint equated two
    /// different functions (assumption 2).
    ClassMismatch {
        /// The node the enumeration merged into.
        node: NodeId,
        /// Parent of the non-discovery edge.
        parent: NodeId,
        /// Phase on the edge.
        phase: PhaseId,
        /// Index into the battery.
        input: usize,
        /// What the node's canonical materialization observed.
        expected: Observation,
        /// What the edge rematerialization observed.
        got: Observation,
    },
    /// A non-discovery edge rematerialization had the node's fingerprint
    /// but different canonical bytes — a genuine CRC collision. (The
    /// behavioural `ClassMismatch` check may still pass; a collision is
    /// reported regardless, mirroring the paranoid enumeration mode.)
    FingerprintCollision {
        /// The node the enumeration merged into.
        node: NodeId,
        /// Parent of the colliding edge.
        parent: NodeId,
        /// Phase on the edge.
        phase: PhaseId,
    },
    /// Replaying a node's discovery edge produced a function whose
    /// fingerprint differs from the recorded one — phase application is
    /// not deterministic (an internal invariant, checked for free).
    MaterializationDrift {
        /// The node that failed to rematerialize.
        node: NodeId,
    },
    /// A semantic merge edge rematerialization disagreed with its class
    /// representative — the behavioral signature equated two instances
    /// that differ in behavior or cost on this battery (the semantic
    /// tier's analogue of [`Finding::ClassMismatch`]).
    SemanticMergeMismatch {
        /// The representative node the enumeration merged into.
        node: NodeId,
        /// Parent of the semantic edge.
        parent: NodeId,
        /// Phase on the edge.
        phase: PhaseId,
        /// Index into the battery, or `None` when the structural keys
        /// themselves disagree.
        input: Option<usize>,
    },
}

/// Dynamic behaviour of one leaf instance (a completed phase ordering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafDynamics {
    /// The leaf.
    pub node: NodeId,
    /// Static instruction count of the instance.
    pub inst_count: u32,
    /// Total dynamic instructions over the whole battery.
    pub dynamic: u64,
    /// The discovery sequence, in the paper's letter notation.
    pub sequence: String,
}

/// The oracle's verdict over one function's enumerated space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleReport {
    /// Name of the verified function.
    pub function: String,
    /// Distinct instances executed (every node of the space).
    pub instances: usize,
    /// Non-discovery edges rematerialized and checked (the fingerprint
    /// hits of Section 4.2 — each one a merge the oracle re-derives).
    pub merged_paths: usize,
    /// Semantic merge edges rematerialized and checked (zero under the
    /// fingerprint tier).
    pub sem_paths: usize,
    /// Battery inputs used (baseline executes cleanly on each).
    pub inputs: Vec<Vec<i32>>,
    /// Dynamic instructions of the unoptimized baseline over the battery.
    pub baseline_dynamic: u64,
    /// All failures, in node order (empty = the space is verified).
    pub findings: Vec<Finding>,
    /// Per-leaf dynamic counts, in node order.
    pub leaves: Vec<LeafDynamics>,
    /// Total simulations performed.
    pub simulations: u64,
}

impl OracleReport {
    /// Whether every check passed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The dynamic-instruction-count-optimal leaf (ties broken by lowest
    /// node id — the first ordering discovered). `None` only for an empty
    /// battery or a space with no leaves.
    pub fn best_leaf(&self) -> Option<&LeafDynamics> {
        self.leaves.iter().min_by_key(|l| (l.dynamic, l.node))
    }

    /// One-line human summary (the `vpoc verify` output row).
    pub fn summary(&self) -> String {
        let verdict = if self.is_clean() {
            "ok".to_owned()
        } else {
            format!("{} FINDINGS", self.findings.len())
        };
        let best = match self.best_leaf() {
            Some(b) => format!(
                "best leaf {} seq \"{}\" dynamic {} (baseline {})",
                b.node, b.sequence, b.dynamic, self.baseline_dynamic
            ),
            None => "no leaves".to_owned(),
        };
        let sem = if self.sem_paths > 0 {
            format!(" ({} semantic)", self.sem_paths)
        } else {
            String::new()
        };
        format!(
            "{}: {} instances, {} merged paths{sem}, {} inputs, {} sims: {verdict}; {best}",
            self.function,
            self.instances,
            self.merged_paths,
            self.inputs.len(),
            self.simulations,
        )
    }
}

/// Rematerializes every instance of the space in node-id order by
/// replaying discovery edges from the root function. Discovery parents
/// always precede their children in id order, so one pass suffices; the
/// returned vector is indexed by `NodeId`.
pub fn materialize_all(space: &SearchSpace, root: &Function, target: &Target) -> Vec<Function> {
    let mut out: Vec<Function> = Vec::with_capacity(space.len());
    for (_, node) in space.iter() {
        let f = match node.discovered_from {
            None => root.clone(),
            Some((parent, phase)) => {
                let mut g = out[parent.0 as usize].clone();
                attempt(&mut g, phase, target);
                g
            }
        };
        out.push(f);
    }
    out
}

/// The discovery sequence of a node, rendered in letter notation.
fn discovery_sequence(space: &SearchSpace, id: NodeId) -> String {
    space.discovery_sequence(id).iter().map(|p| p.letter()).collect()
}

/// Executes `f` once on `args`, returning the observation and the dynamic
/// instruction count. The machine is reset first, so runs are independent.
fn observe(m: &mut Machine<'_>, f: &Function, args: &[i32], fuel: u64) -> (Observation, u64) {
    m.reset();
    m.set_fuel(fuel);
    let r = m.call_instance(f, args);
    let obs = r.map(|v| (v, m.globals_crc()));
    (obs, m.dynamic_insts())
}

/// Observes `f` on the whole battery. Returns per-input observations,
/// per-input dynamic counts, and the total dynamic count. Under the
/// threaded engine the instance is lowered once and reused for every
/// input, so the per-battery cost is one lowering (mostly block-cache
/// hits across instances) plus the flat op-array executions.
fn observe_battery(
    m: &mut Machine<'_>,
    f: &Function,
    inputs: &[Vec<i32>],
    fuel: u64,
) -> (Vec<Observation>, Vec<u64>, u64) {
    let mut obs = Vec::with_capacity(inputs.len());
    let mut dyns = Vec::with_capacity(inputs.len());
    let mut dynamic = 0;
    for (o, d) in m.run_battery(f, inputs, fuel) {
        obs.push(o);
        dyns.push(d);
        dynamic += d;
    }
    (obs, dyns, dynamic)
}

/// Builds the input battery: deterministic edge-case tuples first, then
/// seeded draws, keeping only inputs on which the *baseline* function
/// executes cleanly (optimization must preserve traps too, but trapping
/// runs stop at the trap and observe less — clean inputs give every
/// check full coverage). Functions of no parameters get the single empty
/// input.
pub(crate) fn build_battery(
    program: &Program,
    f: &Function,
    config: &OracleConfig,
) -> (Vec<Vec<i32>>, Vec<Observation>, u64) {
    let arity = f.params.len();
    let mut m = Machine::with_mem_size(program, config.mem_size);
    m.set_engine(config.engine);
    if arity == 0 {
        let (obs, dynamic) = observe(&mut m, f, &[], config.fuel);
        return match obs {
            Ok(_) => (vec![Vec::new()], vec![obs], dynamic),
            // A trapping zero-arity baseline still gets verified — the
            // trap itself is the behaviour every instance must match.
            Err(_) => (vec![Vec::new()], vec![obs], dynamic),
        };
    }
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut candidates: Vec<Vec<i32>> = vec![
        vec![0; arity],
        vec![1; arity],
        (0..arity).map(|i| [7, -3, 25, 4, -11, 2][i % 6]).collect(),
    ];
    for _ in 0..config.battery * 8 {
        candidates.push(
            (0..arity)
                .map(|_| {
                    if rng.gen_ratio(1, 4) {
                        rng.gen_range_i32(-2_000_000..2_000_000)
                    } else {
                        rng.gen_range_i32(-100..100)
                    }
                })
                .collect(),
        );
    }
    let mut inputs = Vec::new();
    let mut baseline = Vec::new();
    let mut dynamic = 0;
    for args in candidates {
        if inputs.len() >= config.battery {
            break;
        }
        let (obs, d) = observe(&mut m, f, &args, config.fuel);
        if obs.is_ok() {
            inputs.push(args);
            baseline.push(obs);
            dynamic += d;
        }
    }
    (inputs, baseline, dynamic)
}

/// One unit of verification work: a node, a non-discovery (fingerprint
/// merge) edge, or a semantic merge edge.
enum Item {
    Node(NodeId),
    Edge { parent: NodeId, phase: PhaseId, child: NodeId },
    SemEdge { parent: NodeId, phase: PhaseId, rep: NodeId },
}

/// Per-item verification outcome, merged in item order.
struct ItemResult {
    obs: Vec<Observation>,
    /// Per-input dynamic counts (what the semantic signature asserts
    /// beyond behavior: cost).
    dyns: Vec<u64>,
    dynamic: u64,
    /// `Some` for fingerprint edges: whether the rematerialization's
    /// canonical bytes equal the merged node's.
    bytes_match: Option<bool>,
    /// For nodes: whether the materialization's fingerprint matches.
    fp_match: bool,
    /// `Some` for semantic edges: whether the rematerialization's
    /// structural key equals the representative's.
    structure_match: Option<bool>,
}

/// Verifies an enumerated space against the unoptimized function.
///
/// `program` provides callees (functions called by `f` resolve to their
/// *unoptimized* versions, exactly as during enumeration) and the globals
/// layout. `f` must be the same unoptimized function `enumeration` was
/// produced from.
pub fn verify(
    program: &Program,
    f: &Function,
    enumeration: &Enumeration,
    target: &Target,
    config: &OracleConfig,
) -> OracleReport {
    let space = &enumeration.space;
    let (inputs, baseline_obs, baseline_dynamic) = build_battery(program, f, config);

    let funcs = materialize_all(space, f, target);

    // Work list: every node, then every non-discovery edge, then every
    // semantic merge edge, in deterministic node order.
    let mut items: Vec<Item> = space.iter().map(|(id, _)| Item::Node(id)).collect();
    for (id, node) in space.iter() {
        for &(phase, child) in &node.children {
            if space.node(child).discovered_from != Some((id, phase)) {
                items.push(Item::Edge { parent: id, phase, child });
            }
        }
    }
    let merged_paths = items.len() - space.len();
    for (id, node) in space.iter() {
        for &(phase, rep) in &node.sem_children {
            items.push(Item::SemEdge { parent: id, phase, rep });
        }
    }
    let sem_paths = items.len() - space.len() - merged_paths;

    let jobs = match config.jobs {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    };

    let run_item = |m: &mut Machine<'_>, item: &Item| -> ItemResult {
        match item {
            Item::Node(id) => {
                let func = &funcs[id.0 as usize];
                let (obs, dyns, dynamic) = observe_battery(m, func, &inputs, config.fuel);
                let fp_match = canon::fingerprint(func) == space.node(*id).fp;
                ItemResult {
                    obs,
                    dyns,
                    dynamic,
                    bytes_match: None,
                    fp_match,
                    structure_match: None,
                }
            }
            Item::Edge { parent, phase, child } => {
                let mut g = funcs[parent.0 as usize].clone();
                attempt(&mut g, *phase, target);
                let (obs, dyns, dynamic) = observe_battery(m, &g, &inputs, config.fuel);
                let bytes_match =
                    canon::canonical_bytes(&g) == canon::canonical_bytes(&funcs[child.0 as usize]);
                ItemResult {
                    obs,
                    dyns,
                    dynamic,
                    bytes_match: Some(bytes_match),
                    fp_match: true,
                    structure_match: None,
                }
            }
            Item::SemEdge { parent, phase, rep } => {
                let mut g = funcs[parent.0 as usize].clone();
                attempt(&mut g, *phase, target);
                let (obs, dyns, dynamic) = observe_battery(m, &g, &inputs, config.fuel);
                let structure_match = crate::semantic::StructuralKey::of(&g)
                    == crate::semantic::StructuralKey::of(&funcs[rep.0 as usize]);
                ItemResult {
                    obs,
                    dyns,
                    dynamic,
                    bytes_match: None,
                    fp_match: true,
                    structure_match: Some(structure_match),
                }
            }
        }
    };

    let results: Vec<ItemResult> = if jobs > 1 && items.len() > 1 {
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ItemResult>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(items.len()) {
                scope.spawn(|| {
                    let mut m = Machine::with_mem_size(program, config.mem_size);
                    m.set_engine(config.engine);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        *slots[i].lock().unwrap() = Some(run_item(&mut m, item));
                    }
                });
            }
        });
        slots.into_iter().map(|s| s.into_inner().unwrap().expect("worker filled slot")).collect()
    } else {
        let mut m = Machine::with_mem_size(program, config.mem_size);
        m.set_engine(config.engine);
        items.iter().map(|item| run_item(&mut m, item)).collect()
    };

    // Merge: compare in item order, which is node order — verdicts are
    // identical for any job count.
    let mut findings = Vec::new();
    let mut leaves = Vec::new();
    let mut simulations = 0u64;
    let mut node_obs: Vec<Option<&Vec<Observation>>> = vec![None; space.len()];
    let mut node_dyns: Vec<Option<&Vec<u64>>> = vec![None; space.len()];
    for (item, res) in items.iter().zip(&results) {
        simulations += inputs.len() as u64;
        match item {
            Item::Node(id) => {
                if !res.fp_match {
                    findings.push(Finding::MaterializationDrift { node: *id });
                }
                for (input, (got, expected)) in res.obs.iter().zip(&baseline_obs).enumerate() {
                    if got != expected {
                        findings.push(Finding::BaselineMismatch {
                            node: *id,
                            input,
                            expected: expected.clone(),
                            got: got.clone(),
                        });
                    }
                }
                node_obs[id.0 as usize] = Some(&res.obs);
                node_dyns[id.0 as usize] = Some(&res.dyns);
                let node = space.node(*id);
                if node.is_leaf() {
                    leaves.push(LeafDynamics {
                        node: *id,
                        inst_count: node.inst_count,
                        dynamic: res.dynamic,
                        sequence: discovery_sequence(space, *id),
                    });
                }
            }
            Item::Edge { parent, phase, child } => {
                if res.bytes_match == Some(false) {
                    findings.push(Finding::FingerprintCollision {
                        node: *child,
                        parent: *parent,
                        phase: *phase,
                    });
                }
                let expected =
                    node_obs[child.0 as usize].expect("nodes precede edges in the work list");
                for (input, (got, exp)) in res.obs.iter().zip(expected).enumerate() {
                    if got != exp {
                        findings.push(Finding::ClassMismatch {
                            node: *child,
                            parent: *parent,
                            phase: *phase,
                            input,
                            expected: exp.clone(),
                            got: got.clone(),
                        });
                    }
                }
            }
            Item::SemEdge { parent, phase, rep } => {
                if res.structure_match == Some(false) {
                    findings.push(Finding::SemanticMergeMismatch {
                        node: *rep,
                        parent: *parent,
                        phase: *phase,
                        input: None,
                    });
                }
                let exp_obs =
                    node_obs[rep.0 as usize].expect("nodes precede edges in the work list");
                let exp_dyns =
                    node_dyns[rep.0 as usize].expect("nodes precede edges in the work list");
                for (input, ((got, exp), (gd, ed))) in
                    res.obs.iter().zip(exp_obs).zip(res.dyns.iter().zip(exp_dyns)).enumerate()
                {
                    if got != exp || gd != ed {
                        findings.push(Finding::SemanticMergeMismatch {
                            node: *rep,
                            parent: *parent,
                            phase: *phase,
                            input: Some(input),
                        });
                    }
                }
            }
        }
    }
    // Item order interleaves node findings before edge findings only by
    // position; sort by node for a stable, readable report.
    // (Already in deterministic order — no re-sort needed for equality.)

    let tm = crate::telemetry::global();
    tm.oracle_instances.add(space.len() as u64);
    tm.oracle_merged_paths.add((merged_paths + sem_paths) as u64);
    tm.oracle_simulations.add(simulations);
    tm.oracle_battery_inputs.add(inputs.len() as u64);
    tm.oracle_findings.add(findings.len() as u64);

    OracleReport {
        function: f.name.clone(),
        instances: space.len(),
        merged_paths,
        sem_paths,
        inputs,
        baseline_dynamic,
        findings,
        leaves,
        simulations,
    }
}

/// Convenience: enumerate `f` (serially, under `enum_config`) and verify
/// the resulting space in one call.
pub fn verify_function(
    program: &Program,
    f: &Function,
    target: &Target,
    enum_config: &crate::Config,
    config: &OracleConfig,
) -> (Enumeration, OracleReport) {
    // Translate the oracle's job convention (`0` = one per CPU, `1` =
    // serial) into the enumeration's (`0` = serial, `N` = `N` workers).
    let mut ec = enum_config.clone();
    ec.jobs = match config.jobs {
        0 => crate::jobs_per_cpu(),
        1 => 0,
        n => n,
    };
    let e = crate::enumerate(f, target, &ec);
    let report = verify(program, f, &e, target, config);
    (e, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn compile(src: &str) -> Program {
        vpo_frontend::compile(src).unwrap()
    }

    #[test]
    fn small_function_verifies_clean() {
        let p = compile("int f(int a, int b) { if (a > b) return a - b; return b - a; }");
        let target = Target::default();
        let (e, report) = verify_function(
            &p,
            &p.functions[0],
            &target,
            &Config::default(),
            &OracleConfig::default(),
        );
        assert!(e.outcome.is_complete());
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert_eq!(report.instances, e.space.len());
        assert!(report.best_leaf().is_some());
        assert!(report.simulations >= (e.space.len() * report.inputs.len()) as u64);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn loops_and_globals_verify_clean() {
        let p = compile(
            r#"
            int acc = 3;
            int f(int n) {
                int i;
                for (i = 0; i < n; i++) acc += i * i;
                return acc;
            }
            "#,
        );
        let target = Target::default();
        let (e, report) = verify_function(
            &p,
            &p.functions[0],
            &target,
            &Config::default(),
            &OracleConfig::default(),
        );
        assert!(e.outcome.is_complete());
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert!(report.merged_paths > 0, "expected fingerprint merges in a loop space");
        // The best leaf should beat (or match) the unoptimized baseline.
        let best = report.best_leaf().unwrap();
        assert!(best.dynamic <= report.baseline_dynamic);
        assert!(!best.sequence.is_empty());
    }

    #[test]
    fn oracle_catches_a_planted_miscompile() {
        // Corrupt one materialized instance's behaviour by verifying a
        // space enumerated from a *different* function: the oracle must
        // report baseline mismatches.
        let p1 = compile("int f(int a) { return a * 2; }");
        let p2 = compile("int f(int a) { return a * 3; }");
        let target = Target::default();
        let e_wrong = crate::enumerate(&p2.functions[0], &target, &Config::default());
        // Battery comes from p1's baseline; instances come from p2's root.
        let report = verify(&p1, &p2.functions[0], &e_wrong, &target, &OracleConfig::default());
        assert!(report.is_clean(), "same-root space must be clean");
        // Now cross the streams: p1's function with p2's space — the
        // materialized root is p1's, whose fingerprint and behaviour
        // disagree with the recorded space.
        let report = verify(&p1, &p1.functions[0], &e_wrong, &target, &OracleConfig::default());
        assert!(
            !report.is_clean(),
            "oracle failed to flag a space that does not belong to the function"
        );
    }

    #[test]
    fn both_engines_produce_identical_reports() {
        let p = compile(
            "int f(int a, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += a * i; return s; }",
        );
        let target = Target::default();
        let e = crate::enumerate(&p.functions[0], &target, &Config::default());
        let interp = verify(
            &p,
            &p.functions[0],
            &e,
            &target,
            &OracleConfig { engine: SimEngine::Interp, ..OracleConfig::default() },
        );
        let threaded = verify(
            &p,
            &p.functions[0],
            &e,
            &target,
            &OracleConfig { engine: SimEngine::Threaded, ..OracleConfig::default() },
        );
        assert_eq!(interp, threaded);
        assert!(interp.is_clean(), "findings: {:?}", interp.findings);
    }

    #[test]
    fn parallel_and_serial_reports_agree() {
        let p = compile(
            "int f(int a, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += a * i; return s; }",
        );
        let target = Target::default();
        let e = crate::enumerate(&p.functions[0], &target, &Config::default());
        let serial = verify(
            &p,
            &p.functions[0],
            &e,
            &target,
            &OracleConfig { jobs: 1, ..OracleConfig::default() },
        );
        for jobs in [2usize, 4] {
            let par = verify(
                &p,
                &p.functions[0],
                &e,
                &target,
                &OracleConfig { jobs, ..OracleConfig::default() },
            );
            assert_eq!(serial, par, "jobs={jobs}");
        }
        assert!(serial.is_clean());
    }
}
