//! The enumerated search space: a weighted DAG of distinct function
//! instances (Figure 7 of the paper).
//!
//! Nodes are distinct function instances (identified by canonical
//! fingerprint plus phase-legality flags); an edge `u --p--> v` records
//! that phase `p` was *active* on `u` and produced `v`. Dormant attempts
//! leave no edge — they are recorded in the node's masks instead, which is
//! what the interaction analyses consume.
//!
//! Under the semantic merge tier (`--merge-tier semantic`) a second edge
//! kind appears: `u ··p··> v` in [`Node::sem_children`] records that the
//! fingerprint-fresh instance phase `p` produced from `u` was
//! *behaviorally* merged into `v` (its signature matched an established
//! class). The produced instance is still inserted and expanded — the
//! node set, `children` edges, masks and weights are bit-identical to
//! the fingerprint tier — so the semantic tier is an exact *quotient
//! annotation* over the fingerprint space: merged nodes point at their
//! class representative ([`SearchSpace::sem_rep`]), and the number of
//! behaviorally distinct instances is [`SearchSpace::sem_class_count`].
//! Semantic edges are kept apart from fingerprint edges deliberately:
//! signature equality says nothing about the *futures* of the two
//! instances being equal (it is not a congruence under phase
//! application), so a semantic edge may point at an ancestor — a cycle
//! through `children` would break [`SearchSpace::compute_weights`] —
//! and Table-3-style reports must be producible under either quotient.
//!
//! The *pruned* tier (`--merge-tier semantic-pruned`) adds a third edge
//! kind: `u ┄p┄> v` in [`Node::pruned_children`] records that the
//! instance phase `p` produced from `u` was merged into `v` *and its
//! expansion skipped* — its signature matched `v`'s class and its phase
//! mask was subsumed by `v`'s. The produced node is still inserted
//! (marked [`Node::pruned`]) and keeps its `children` discovery edge
//! from `u`, but it has no subtree of its own: leaf statistics skip it
//! ([`Node::is_leaf`]), its weight is a placeholder 1, and DOT renders
//! the merge edge dotted. Unlike the annotation tier, the pruned space
//! is *smaller* than the fingerprint space — everything reachable only
//! through pruned subtrees is charged to the representative, a loss
//! `vpoc audit-quotient` measures exactly.

use std::collections::HashMap;

use vpo_opt::PhaseId;
use vpo_rtl::canon::Fingerprint;
use vpo_rtl::FuncFlags;

/// Index of a node in a [`SearchSpace`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One distinct function instance.
#[derive(Clone, Debug)]
pub struct Node {
    /// Canonical fingerprint of the instance.
    pub fp: Fingerprint,
    /// Phase-legality milestone flags of the instance.
    pub flags: FuncFlags,
    /// Level = length of the shortest active phase sequence producing it.
    pub level: u32,
    /// Static instruction count (the code-size measure of Table 3).
    pub inst_count: u32,
    /// Control-flow shape signature (for the `CF` statistic).
    pub cf_sig: u64,
    /// Bit `i` set iff `PhaseId::from_index(i)` is active on this instance.
    pub active_mask: u16,
    /// Outgoing edges: `(phase, child)` for each active phase.
    pub children: Vec<(PhaseId, NodeId)>,
    /// Semantic-merge edges: `(phase, representative)` for each active
    /// phase whose fingerprint-fresh product was behaviorally merged
    /// into an established class (always empty under the fingerprint
    /// tier). The produced node itself is still recorded in `children`
    /// under the same phase; the representative may be *any* node of
    /// the space, including an ancestor.
    pub sem_children: Vec<(PhaseId, NodeId)>,
    /// Subsumption-prune edges: `(phase, representative)` for each
    /// active phase whose fingerprint-fresh product was behaviorally
    /// merged into an established class **and not expanded** because
    /// its active-phase mask was subsumed by the representative's
    /// (always empty outside the `semantic-pruned` tier). The produced
    /// node is still recorded in `children` under the same phase, but
    /// it is marked [`Node::pruned`] and has no subtree.
    pub pruned_children: Vec<(PhaseId, NodeId)>,
    /// Whether this node's expansion was skipped by the pruned tier:
    /// its signature and mask were subsumed by its class
    /// representative's at discovery time. Pruned nodes have
    /// `active_mask == 0` (never attempted) but are *not* leaves.
    pub pruned: bool,
    /// Discovery edge: the parent and phase that first produced this node
    /// (`None` for the root). Used to rematerialize instances on demand.
    pub discovered_from: Option<(NodeId, PhaseId)>,
    /// Number of distinct active sequences continuing through this node
    /// (leaf = 1, interior = sum of children); filled by
    /// [`SearchSpace::compute_weights`].
    pub weight: u64,
}

impl Node {
    /// Whether the node is a leaf: no phase is active on it. A pruned
    /// node also has an empty mask (its attempts were skipped), but it
    /// is *not* a leaf — its true frontier lives in the representative's
    /// subtree — so [`SearchSpace::leaf_count`] excludes it.
    /// [`SearchSpace::best_leaf`] and
    /// [`SearchSpace::leaf_code_size_range`] treat it as a *terminal*
    /// instead: see [`Node::is_terminal`].
    pub fn is_leaf(&self) -> bool {
        self.active_mask == 0 && !self.pruned
    }

    /// Whether the node is a terminal of the exploration: a leaf, or a
    /// pruned placeholder. A placeholder is a real discovered instance
    /// reached by a real phase sequence — its expansion was skipped, not
    /// its existence — so code-size optima and spreads must range over
    /// it: the best instance a pruned search discovers is often merged
    /// (and hence pruned) into an interior representative before its
    /// leafhood could be proven by expansion. Identical to
    /// [`Node::is_leaf`] outside `--merge-tier semantic-pruned`, where
    /// no node is ever pruned.
    pub fn is_terminal(&self) -> bool {
        self.active_mask == 0
    }

    /// Whether `phase` is active on this instance.
    pub fn is_active(&self, phase: PhaseId) -> bool {
        self.active_mask >> phase.index() & 1 == 1
    }

    /// The child produced by `phase`, if that phase is active here.
    pub fn child(&self, phase: PhaseId) -> Option<NodeId> {
        self.children.iter().find(|(p, _)| *p == phase).map(|&(_, c)| c)
    }
}

/// The weighted DAG of distinct function instances.
#[derive(Clone, Debug, Default)]
pub struct SearchSpace {
    nodes: Vec<Node>,
    index: HashMap<(Fingerprint, FuncFlags), NodeId>,
}

impl SearchSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct function instances.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the space is empty (no root inserted yet).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node id (the unoptimized instance).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Borrows a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutably borrows a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Looks up an instance by identity.
    pub fn find(&self, fp: Fingerprint, flags: FuncFlags) -> Option<NodeId> {
        self.index.get(&(fp, flags)).copied()
    }

    /// Total number of semantic-merge edges across the space — one per
    /// node whose first discovery was behaviorally merged (0 under the
    /// fingerprint tier).
    pub fn sem_edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.sem_children.len()).sum()
    }

    /// Number of pruned nodes: instances whose expansion the pruned
    /// tier skipped (0 outside `semantic-pruned`).
    pub fn pruned_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.pruned).count()
    }

    /// The semantic class representative of `id`: the node its first
    /// discovery was behaviorally merged into, or `id` itself when it
    /// founded its own signature class (always `id` under the
    /// fingerprint tier). Representatives are always founders, so this
    /// never chains.
    pub fn sem_rep(&self, id: NodeId) -> NodeId {
        match self.node(id).discovered_from {
            Some((parent, phase)) => {
                let parent = self.node(parent);
                parent
                    .sem_children
                    .iter()
                    .chain(&parent.pruned_children)
                    .find(|&&(p, _)| p == phase)
                    .map_or(id, |&(_, rep)| rep)
            }
            None => id,
        }
    }

    /// Number of behaviorally distinct instances: nodes that founded
    /// their own signature class (equals [`SearchSpace::len`] under the
    /// fingerprint tier).
    pub fn sem_class_count(&self) -> usize {
        self.iter().filter(|&(id, _)| self.sem_rep(id) == id).count()
    }

    /// Inserts a new node, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if an instance with the same identity already exists.
    pub fn insert(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let prev = self.index.insert((node.fp, node.flags), id);
        assert!(prev.is_none(), "duplicate instance insertion");
        self.nodes.push(node);
        id
    }

    /// Number of leaf instances (no further phase active — the `Leaf`
    /// column of Table 3).
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Minimum and maximum instruction counts over terminal instances —
    /// leaves plus, under the pruned tier, pruned placeholders
    /// ([`Node::is_terminal`]) — the code-size spread of Table 3.
    /// Returns `None` if there are no terminals.
    pub fn leaf_code_size_range(&self) -> Option<(u32, u32)> {
        let mut it = self.nodes.iter().filter(|n| n.is_terminal()).map(|n| n.inst_count);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Minimum and maximum instruction counts over **all** instances.
    /// Note the minimum can sit at an interior node: code-growing phases
    /// (loop unrolling, loop rotation) may still be active on the smallest
    /// instance, so the best *leaf* is not necessarily the best instance.
    pub fn code_size_range(&self) -> Option<(u32, u32)> {
        let mut it = self.nodes.iter().map(|n| n.inst_count);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Number of distinct control flows among all instances (the `CF`
    /// column of Table 3).
    pub fn distinct_control_flows(&self) -> usize {
        let mut sigs: Vec<u64> = self.nodes.iter().map(|n| n.cf_sig).collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs.len()
    }

    /// The maximum level of any node — the largest active phase sequence
    /// length (`Len` in Table 3).
    pub fn max_active_sequence_length(&self) -> u32 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// The discovery sequence of a node: the phases along its discovery
    /// edges back to the root, in application order. The root's sequence
    /// is empty.
    pub fn discovery_sequence(&self, id: NodeId) -> Vec<PhaseId> {
        let mut seq = Vec::new();
        let mut cur = id;
        while let Some((parent, phase)) = self.node(cur).discovered_from {
            seq.push(phase);
            cur = parent;
        }
        seq.reverse();
        seq
    }

    /// Per-phase activity over the space: `counts[p.index()]` is the
    /// number of instances phase `p` is active on (the raw occurrence
    /// counts behind the Section 5 interaction probabilities).
    pub fn phase_active_counts(&self) -> [u64; PhaseId::COUNT] {
        let mut counts = [0u64; PhaseId::COUNT];
        for n in &self.nodes {
            for p in PhaseId::ALL {
                if n.is_active(p) {
                    counts[p.index()] += 1;
                }
            }
        }
        counts
    }

    /// The terminal ([`Node::is_terminal`]) with the smallest
    /// instruction count (ties broken by lowest node id — the first
    /// ordering discovered): the code-size optimal phase ordering of
    /// Table 3. Under the pruned tier this ranges over pruned
    /// placeholders too — the optimal instance is frequently merged
    /// into an interior representative and pruned before expansion
    /// would prove it a leaf, yet it was discovered and its ordering is
    /// real; `vpoc audit-quotient` checks exactly this optimum against
    /// the annotation tier's. `None` for a space with no terminals
    /// (only possible under truncation).
    pub fn best_leaf(&self) -> Option<NodeId> {
        self.iter()
            .filter(|(_, n)| n.is_terminal())
            .min_by_key(|&(id, n)| (n.inst_count, id))
            .map(|(id, _)| id)
    }

    /// Computes node weights: leaves weigh 1, interior nodes the sum of
    /// their children (Figure 7).
    ///
    /// # Errors
    ///
    /// Returns the id of a node on a cycle if the space is not acyclic
    /// (which the paper — and this compiler — rule out: no phase undoes
    /// the effect of another).
    pub fn compute_weights(&mut self) -> Result<(), NodeId> {
        let n = self.nodes.len();
        let mut state = vec![0u8; n]; // 0 new, 1 in progress, 2 done
        let mut order: Vec<u32> = Vec::with_capacity(n);
        // Iterative DFS from every node (the DAG may have several
        // components only in theory; the root reaches everything).
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut stack: Vec<(u32, usize)> = vec![(start as u32, 0)];
            state[start] = 1;
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                let children = &self.nodes[v as usize].children;
                if *next < children.len() {
                    let (_, c) = children[*next];
                    *next += 1;
                    match state[c.0 as usize] {
                        0 => {
                            state[c.0 as usize] = 1;
                            stack.push((c.0, 0));
                        }
                        1 => return Err(c),
                        _ => {}
                    }
                } else {
                    state[v as usize] = 2;
                    order.push(v);
                    stack.pop();
                }
            }
        }
        // `order` is a postorder: children come before parents.
        for &v in &order {
            let node = &self.nodes[v as usize];
            let w = if node.children.is_empty() {
                1
            } else {
                node.children.iter().map(|&(_, c)| self.nodes[c.0 as usize].weight).sum()
            };
            self.nodes[v as usize].weight = w;
        }
        Ok(())
    }

    /// Renders the space in Graphviz `dot` syntax (nodes annotated with
    /// weight and size; edges with phase letters). Useful for inspecting
    /// small spaces like the paper's Figure 7.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph phase_order_space {\n  rankdir=TB;\n");
        for (id, n) in self.iter() {
            out.push_str(&format!(
                "  {id} [label=\"{id}\\nw={} insts={}\"{}];\n",
                n.weight,
                n.inst_count,
                if n.is_leaf() { " shape=doublecircle" } else { "" }
            ));
        }
        for (id, n) in self.iter() {
            for (p, c) in &n.children {
                out.push_str(&format!("  {id} -> {c} [label=\"{}\"];\n", p.letter()));
            }
            for (p, c) in &n.sem_children {
                out.push_str(&format!(
                    "  {id} -> {c} [label=\"{}\" style=dashed color=gray50];\n",
                    p.letter()
                ));
            }
            for (p, c) in &n.pruned_children {
                out.push_str(&format!(
                    "  {id} -> {c} [label=\"{}\" style=dotted color=gray30];\n",
                    p.letter()
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_node(fp_seed: u32) -> Node {
        Node {
            fp: Fingerprint { inst_count: fp_seed, byte_sum: fp_seed as u64, crc: fp_seed },
            flags: FuncFlags::default(),
            level: 0,
            inst_count: fp_seed,
            cf_sig: 0,
            active_mask: 0,
            children: Vec::new(),
            sem_children: Vec::new(),
            pruned_children: Vec::new(),
            pruned: false,
            discovered_from: None,
            weight: 0,
        }
    }

    #[test]
    fn figure7_weights() {
        // Reconstruct the weighted DAG of Figure 7:
        // root(5) -> a:2, b:2, c:1 ... simplified shape:
        //   root --a--> A(2), root --b--> B(2), root --c--> C(1)
        //   A --b--> AB(1), A --c--> AC(1)  (leaves)
        //   B --a--> AB, B --c--> BC(1)
        //   wait: keep it simple — a diamond plus a leaf.
        let mut s = SearchSpace::new();
        let root = s.insert(mk_node(0));
        let a = s.insert(mk_node(1));
        let b = s.insert(mk_node(2));
        let join = s.insert(mk_node(3));
        let leaf = s.insert(mk_node(4));
        s.node_mut(root).children = vec![(PhaseId::Cse, a), (PhaseId::DeadAssign, b)];
        s.node_mut(root).active_mask = 0b11;
        s.node_mut(a).children = vec![(PhaseId::DeadAssign, join)];
        s.node_mut(a).active_mask = 1;
        s.node_mut(b).children = vec![(PhaseId::Cse, join)];
        s.node_mut(b).active_mask = 1;
        s.node_mut(join).children = vec![(PhaseId::InsnSelect, leaf)];
        s.node_mut(join).active_mask = 1;
        s.compute_weights().unwrap();
        assert_eq!(s.node(leaf).weight, 1);
        assert_eq!(s.node(join).weight, 1);
        assert_eq!(s.node(a).weight, 1);
        assert_eq!(s.node(b).weight, 1);
        assert_eq!(s.node(root).weight, 2); // two distinct sequences
        assert_eq!(s.leaf_count(), 1);
    }

    #[test]
    fn cycle_detection() {
        let mut s = SearchSpace::new();
        let a = s.insert(mk_node(0));
        let b = s.insert(mk_node(1));
        s.node_mut(a).children = vec![(PhaseId::Cse, b)];
        s.node_mut(b).children = vec![(PhaseId::DeadAssign, a)];
        assert!(s.compute_weights().is_err());
    }

    #[test]
    fn lookup_by_identity() {
        let mut s = SearchSpace::new();
        let n = mk_node(7);
        let fp = n.fp;
        let id = s.insert(n);
        assert_eq!(s.find(fp, FuncFlags::default()), Some(id));
        let assigned = FuncFlags { regs_assigned: true, reg_allocated: false };
        assert_eq!(s.find(fp, assigned), None);
    }

    #[test]
    fn discovery_sequence_and_best_leaf() {
        let mut s = SearchSpace::new();
        let root = s.insert(mk_node(0));
        let mut a = mk_node(9);
        a.discovered_from = Some((root, PhaseId::InsnSelect));
        let a = s.insert(a);
        let mut b = mk_node(4);
        b.discovered_from = Some((a, PhaseId::Cse));
        let b = s.insert(b);
        s.node_mut(root).children = vec![(PhaseId::InsnSelect, a)];
        s.node_mut(root).active_mask = 1 << PhaseId::InsnSelect.index();
        s.node_mut(a).children = vec![(PhaseId::Cse, b)];
        s.node_mut(a).active_mask = 1 << PhaseId::Cse.index();
        assert_eq!(s.discovery_sequence(root), vec![]);
        assert_eq!(s.discovery_sequence(b), vec![PhaseId::InsnSelect, PhaseId::Cse]);
        // `b` (4 insts) is the only leaf; it wins over the interior nodes.
        assert_eq!(s.best_leaf(), Some(b));
        let counts = s.phase_active_counts();
        assert_eq!(counts[PhaseId::InsnSelect.index()], 1);
        assert_eq!(counts[PhaseId::Cse.index()], 1);
        assert_eq!(counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn semantic_classes_resolve_and_render_dashed() {
        // root --Cse--> rep (founder), root --DeadAssign--> merged,
        // where `merged`'s first discovery was behaviorally merged into
        // `rep`: root carries the dashed sem edge under the same phase.
        let mut s = SearchSpace::new();
        let root = s.insert(mk_node(0));
        let rep = s.insert(mk_node(1));
        let mut m = mk_node(2);
        m.discovered_from = Some((root, PhaseId::DeadAssign));
        let merged = s.insert(m);
        s.node_mut(root).children = vec![(PhaseId::Cse, rep), (PhaseId::DeadAssign, merged)];
        s.node_mut(root).active_mask = 0b11;
        s.node_mut(root).sem_children = vec![(PhaseId::DeadAssign, rep)];
        // A semantic edge pointing *backwards* (merged ··> root) must
        // not trip the cycle detector: weights walk `children` only.
        s.node_mut(merged).sem_children = vec![(PhaseId::Cse, root)];
        assert_eq!(s.sem_edge_count(), 2);
        assert_eq!(s.sem_rep(merged), rep);
        assert_eq!(s.sem_rep(rep), rep);
        assert_eq!(s.sem_rep(root), root);
        assert_eq!(s.sem_class_count(), 2);
        s.compute_weights().unwrap();
        let dot = s.to_dot();
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn pruned_nodes_resolve_to_their_rep_and_are_not_leaves() {
        // root --Cse--> rep (founder, a leaf), root --DeadAssign--> pruned,
        // where `pruned`'s expansion was skipped: root carries the dotted
        // prune edge under the same phase.
        let mut s = SearchSpace::new();
        let root = s.insert(mk_node(0));
        let rep = s.insert(mk_node(1));
        let mut p = mk_node(2);
        p.discovered_from = Some((root, PhaseId::DeadAssign));
        p.pruned = true;
        let pruned = s.insert(p);
        s.node_mut(root).children = vec![(PhaseId::Cse, rep), (PhaseId::DeadAssign, pruned)];
        s.node_mut(root).active_mask = 0b11;
        s.node_mut(root).pruned_children = vec![(PhaseId::DeadAssign, rep)];
        assert_eq!(s.pruned_count(), 1);
        assert_eq!(s.sem_rep(pruned), rep);
        assert_eq!(s.sem_rep(rep), rep);
        assert_eq!(s.sem_class_count(), 2);
        // The pruned node's empty mask does not make it a leaf, but it
        // *is* a terminal: leaf_count excludes it, while best_leaf
        // ranges over it (rep wins here on size, 1 < 2).
        assert_eq!(s.leaf_count(), 1);
        assert!(!s.node(pruned).is_leaf() && s.node(pruned).is_terminal());
        assert_eq!(s.best_leaf(), Some(rep));
        assert_eq!(s.leaf_code_size_range(), Some((1, 2)));
        s.compute_weights().unwrap();
        assert_eq!(s.node(pruned).weight, 1, "pruned nodes keep placeholder weight 1");
        assert_eq!(s.node(root).weight, 2);
        assert!(s.to_dot().contains("style=dotted"));
    }

    #[test]
    fn dot_rendering_mentions_every_node() {
        let mut s = SearchSpace::new();
        let root = s.insert(mk_node(0));
        let child = s.insert(mk_node(1));
        s.node_mut(root).children = vec![(PhaseId::InsnSelect, child)];
        s.compute_weights().unwrap();
        let dot = s.to_dot();
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("label=\"s\""));
    }
}
