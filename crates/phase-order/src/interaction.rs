//! Phase-interaction analysis over enumerated spaces (Section 5).
//!
//! The DAG's node weights (distinct active sequences through each node)
//! weight every observation, exactly as the paper prescribes:
//!
//! * **Enabling** (Table 4) — phase `x` enables `y` when `y` was dormant
//!   before `x` and active after. The probability is the weighted ratio of
//!   dormant→active transitions to all transitions out of dormancy.
//! * **Disabling** (Table 5) — the weighted ratio of active→dormant
//!   transitions to all transitions out of activity. Phases always disable
//!   themselves (each runs to its own fixpoint), giving the table's 1.00
//!   diagonal.
//! * **Independence** (Table 6) — two phases active at the same instance
//!   are independent there when applying them in either order yields the
//!   identical instance; the probability is the weighted fraction of such
//!   situations. Independence is symmetric.

use vpo_opt::PhaseId;

use crate::space::SearchSpace;

const N: usize = PhaseId::COUNT;

/// Accumulates weighted interaction counts over one or more enumerated
/// spaces; convert to probabilities with the `*_probability` methods.
#[derive(Clone, Debug)]
pub struct InteractionAnalysis {
    /// `enable[y][x]`: weight of dormant→active transitions of `y` over
    /// edges labelled `x`.
    enable: Vec<[f64; N]>,
    /// `enable_denied[y][x]`: weight of dormant→dormant transitions.
    enable_denied: Vec<[f64; N]>,
    /// `disable[y][x]`: weight of active→dormant transitions.
    disable: Vec<[f64; N]>,
    /// `disable_denied[y][x]`: weight of active→active transitions.
    disable_denied: Vec<[f64; N]>,
    /// `indep[p][q]` / `dep[p][q]`: weighted same-code / different-code
    /// counts for consecutively-active unordered pairs.
    indep: Vec<[f64; N]>,
    dep: Vec<[f64; N]>,
    /// Weight of roots where each phase was active (for the `St` column),
    /// and the total root weight analyzed. Weighting by the root's weight
    /// (its count of distinct active sequences) follows the paper's
    /// weighted-transition methodology: trivial functions contribute
    /// little.
    start_active: [f64; N],
    start_total: f64,
    /// Weighted activity of each phase across all nodes (used by the
    /// probabilistic compiler to break ties between equally probable
    /// phases).
    node_active: [f64; N],
    node_total: f64,
    functions: usize,
}

impl Default for InteractionAnalysis {
    fn default() -> Self {
        Self::new()
    }
}

impl InteractionAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        InteractionAnalysis {
            enable: vec![[0.0; N]; N],
            enable_denied: vec![[0.0; N]; N],
            disable: vec![[0.0; N]; N],
            disable_denied: vec![[0.0; N]; N],
            indep: vec![[0.0; N]; N],
            dep: vec![[0.0; N]; N],
            start_active: [0.0; N],
            start_total: 0.0,
            node_active: [0.0; N],
            node_total: 0.0,
            functions: 0,
        }
    }

    /// Number of functions accumulated.
    pub fn function_count(&self) -> usize {
        self.functions
    }

    /// Accumulates one enumerated space (weights must be computed, which
    /// [`enumerate`](crate::enumerate::enumerate) always does).
    pub fn add_space(&mut self, space: &SearchSpace) {
        self.functions += 1;
        let root = space.node(space.root());
        let root_w = root.weight as f64;
        self.start_total += root_w;
        for p in PhaseId::ALL {
            if root.is_active(p) {
                self.start_active[p.index()] += root_w;
            }
        }
        for (_, n) in space.iter() {
            let w = n.weight as f64;
            self.node_total += w;
            for p in PhaseId::ALL {
                if n.is_active(p) {
                    self.node_active[p.index()] += w;
                }
            }
        }
        // Enabling / disabling transitions along every edge.
        for (_, u) in space.iter() {
            for &(x, v_id) in &u.children {
                let v = space.node(v_id);
                let w = v.weight as f64;
                for y in PhaseId::ALL {
                    if y == x {
                        continue;
                    }
                    let (yi, xi) = (y.index(), x.index());
                    match (u.is_active(y), v.is_active(y)) {
                        (false, true) => self.enable[yi][xi] += w,
                        (false, false) => self.enable_denied[yi][xi] += w,
                        (true, false) => self.disable[yi][xi] += w,
                        (true, true) => self.disable_denied[yi][xi] += w,
                    }
                }
                // Self-disabling: x was active at u by construction.
                let xi = x.index();
                if v.is_active(x) {
                    self.disable_denied[xi][xi] += w;
                } else {
                    self.disable[xi][xi] += w;
                }
            }
        }
        // Independence of consecutively active pairs.
        for (_, u) in space.iter() {
            let w = u.weight as f64;
            for p in PhaseId::ALL {
                for q in PhaseId::ALL {
                    if p.index() >= q.index() {
                        continue;
                    }
                    let (Some(a), Some(b)) = (u.child(p), u.child(q)) else { continue };
                    let (an, bn) = (space.node(a), space.node(b));
                    // Both orders must be consecutively active.
                    let (Some(pq), Some(qp)) = (an.child(q), bn.child(p)) else { continue };
                    let (pi, qi) = (p.index(), q.index());
                    if pq == qp {
                        self.indep[pi][qi] += w;
                        self.indep[qi][pi] += w;
                    } else {
                        self.dep[pi][qi] += w;
                        self.dep[qi][pi] += w;
                    }
                }
            }
        }
    }

    /// Probability that `x` enables `y` (Table 4 cell `[row y, col x]`);
    /// `None` when `y` was never dormant ahead of an `x` application.
    pub fn enabling_probability(&self, y: PhaseId, x: PhaseId) -> Option<f64> {
        let (yi, xi) = (y.index(), x.index());
        ratio(self.enable[yi][xi], self.enable_denied[yi][xi])
    }

    /// Probability that `y` is active on the unoptimized function (the
    /// `St` column of Table 4), weighted by the root's sequence count.
    pub fn start_probability(&self, y: PhaseId) -> Option<f64> {
        if self.start_total == 0.0 {
            None
        } else {
            Some(self.start_active[y.index()] / self.start_total)
        }
    }

    /// Weighted fraction of all instances on which `y` is active — a
    /// measure of how often the phase has work overall, used to break
    /// probability ties in the probabilistic compiler.
    pub fn overall_activity(&self, y: PhaseId) -> f64 {
        if self.node_total == 0.0 {
            0.0
        } else {
            self.node_active[y.index()] / self.node_total
        }
    }

    /// Probability that `x` disables `y` (Table 5 cell `[row y, col x]`).
    pub fn disabling_probability(&self, y: PhaseId, x: PhaseId) -> Option<f64> {
        let (yi, xi) = (y.index(), x.index());
        ratio(self.disable[yi][xi], self.disable_denied[yi][xi])
    }

    /// Probability that `p` and `q` are independent when consecutively
    /// active (Table 6; symmetric).
    pub fn independence_probability(&self, p: PhaseId, q: PhaseId) -> Option<f64> {
        let (pi, qi) = (p.index(), q.index());
        ratio(self.indep[pi][qi], self.dep[pi][qi])
    }
}

fn ratio(hit: f64, miss: f64) -> Option<f64> {
    let total = hit + miss;
    if total == 0.0 {
        None
    } else {
        Some(hit / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, Config};
    use vpo_opt::Target;

    fn analyze(src: &str) -> InteractionAnalysis {
        let p = vpo_frontend::compile(src).unwrap();
        let mut ia = InteractionAnalysis::new();
        for f in &p.functions {
            let e = enumerate(f, &Target::default(), &Config::default());
            assert!(e.outcome.is_complete());
            ia.add_space(&e.space);
        }
        ia
    }

    #[test]
    fn s_and_c_active_at_start() {
        // Matches the paper: instruction selection and CSE are always
        // active on unoptimized code.
        let ia = analyze(
            r#"
            int f(int a, int b) { return a + b * 2; }
            int g(int x) { int y = x; return y * y; }
        "#,
        );
        assert_eq!(ia.start_probability(PhaseId::InsnSelect), Some(1.0));
        assert_eq!(ia.start_probability(PhaseId::Cse), Some(1.0));
        // Remove unreachable code is never active (also as in the paper).
        assert_eq!(ia.start_probability(PhaseId::Unreachable), Some(0.0));
    }

    #[test]
    fn s_enables_k() {
        // Register allocation needs instruction selection to form direct
        // scalar addresses: Table 4 reports this enabling at 1.00.
        let ia = analyze("int f(int a) { int x = a + 1; return x * x; }");
        let p = ia
            .enabling_probability(PhaseId::RegAlloc, PhaseId::InsnSelect)
            .expect("s->k transitions observed");
        assert!(p > 0.5, "s should usually enable k, got {p}");
    }

    #[test]
    fn phases_disable_themselves() {
        let ia = analyze("int f(int a) { int x = a + 1; return x * x; }");
        for p in [PhaseId::InsnSelect, PhaseId::Cse, PhaseId::DeadAssign] {
            if let Some(d) = ia.disabling_probability(p, p) {
                assert!(d > 0.9, "{p:?} should almost always disable itself, got {d}");
            }
        }
    }

    #[test]
    fn independence_is_symmetric() {
        let ia = analyze("int f(int a, int b) { int x = a + 1; int y = b + 2; return x * y; }");
        for p in PhaseId::ALL {
            for q in PhaseId::ALL {
                assert_eq!(ia.independence_probability(p, q), ia.independence_probability(q, p));
            }
        }
    }

    #[test]
    fn control_flow_phases_often_independent_of_allocation() {
        let ia = analyze(
            r#"
            int f(int a, int n) {
                int s = 0;
                int i;
                for (i = 0; i < n; i++) {
                    if (a > i) s += i;
                }
                return s;
            }
        "#,
        );
        // Some pair involving a control-flow phase and a register phase
        // should be observed independent somewhere.
        let mut any_indep = false;
        for p in [PhaseId::BranchChain, PhaseId::BlockReorder, PhaseId::UselessJump] {
            for q in [PhaseId::Cse, PhaseId::RegAlloc, PhaseId::DeadAssign] {
                if let Some(v) = ia.independence_probability(p, q) {
                    if v > 0.9 {
                        any_indep = true;
                    }
                }
            }
        }
        assert!(any_indep, "expected high independence somewhere");
    }
}
