//! The exhaustive enumeration algorithm of Section 4.
//!
//! The space of *attempted* phase sequences is astronomically large (15^n
//! for sequences of length n), but the space of *distinct function
//! instances* is tiny by comparison. The algorithm explores level by level
//! (level n holds the instances whose shortest active sequence has length
//! n), pruning with:
//!
//! 1. **Dormant phase detection** (Section 4.1) — attempts that do not
//!    change the representation create no new sequence prefix; a phase
//!    that was just active is not re-attempted (no phase in this compiler
//!    can be successfully applied twice in a row — each runs to its own
//!    fixpoint).
//! 2. **Identical instance detection** (Section 4.2) — every produced
//!    instance is canonicalized (registers and labels renumbered in
//!    first-encounter order) and fingerprinted with (instruction count,
//!    byte sum, CRC-32); known instances merge the tree into a DAG.
//!
//! The **prefix-sharing** evaluation strategy of Section 4.3 keeps each
//! frontier instance materialized so a child costs exactly one phase
//! application; the naive strategy (kept for the Figure 6 experiment)
//! replays the whole active sequence from the unoptimized function for
//! every attempt.

use std::collections::HashMap;
use std::time::Duration;

use vpo_opt::{attempt, PhaseId, Target};
use vpo_rtl::canon;
use vpo_rtl::cfg::control_flow_signature;
use vpo_rtl::Function;

use crate::space::{Node, NodeId, SearchSpace};

/// How child instances are produced from their parents.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReplayMode {
    /// Keep frontier instances in memory; apply exactly one phase per
    /// attempt (the Section 4.3 enhancement).
    #[default]
    PrefixSharing,
    /// Rebuild every instance from the unoptimized function by replaying
    /// its discovery sequence (the naive strategy of Figure 6(a)).
    NaiveReplay,
}

/// Enumeration limits and options.
#[derive(Clone, Debug)]
pub struct Config {
    /// Abort when the number of instances awaiting expansion at one level
    /// exceeds this bound (the paper used one million).
    pub max_level_width: usize,
    /// Abort when the total number of distinct instances exceeds this.
    pub max_nodes: usize,
    /// Evaluation strategy (see [`ReplayMode`]).
    pub replay: ReplayMode,
    /// Verify fingerprint hits by full canonical-byte comparison and
    /// record any collision (none have ever been observed, matching the
    /// paper).
    pub paranoid: bool,
    /// Do not re-attempt the phase that produced an instance (the paper's
    /// Figure 2 shortcut). VPO guarantees a phase is never successful twice
    /// in a row; in this compiler the implicit block normalization can
    /// occasionally re-enable the very phase that just ran, so the shortcut
    /// is off by default and exists for fidelity experiments.
    pub skip_just_applied: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_level_width: 1_000_000,
            max_nodes: 4_000_000,
            replay: ReplayMode::PrefixSharing,
            paranoid: false,
            skip_just_applied: false,
        }
    }
}

/// Whether the enumeration ran to completion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchOutcome {
    /// Every reachable instance was expanded.
    Complete,
    /// The space exceeded a configured bound at the given level.
    TooBig {
        /// Level at which the bound was hit.
        level: u32,
    },
}

impl SearchOutcome {
    /// Whether the search completed.
    pub fn is_complete(&self) -> bool {
        matches!(self, SearchOutcome::Complete)
    }
}

/// Evaluation-cost counters (the Figure 6 comparison) and search totals.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Optimization phases attempted, including dormant ones (`Attempt
    /// Phases` in Table 3).
    pub attempted_phases: u64,
    /// Attempts that were active.
    pub active_attempts: u64,
    /// Total phase *applications* performed, including replay overhead —
    /// equals `attempted_phases` under prefix sharing, and is 5–10× larger
    /// under naive replay (Section 4.3).
    pub phases_applied: u64,
    /// Wall-clock duration of the search.
    pub elapsed: Duration,
    /// Fingerprint collisions detected in paranoid mode (expected 0).
    pub collisions: u64,
}

/// The result of enumerating one function's phase-order space.
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// The weighted DAG of distinct instances.
    pub space: SearchSpace,
    /// Whether the search completed.
    pub outcome: SearchOutcome,
    /// Cost counters.
    pub stats: SearchStats,
}

/// Exhaustively enumerates the phase-order space of `f`.
///
/// `f` is the *unoptimized* function as produced by the front end; the
/// root instance is `f` itself. On [`SearchOutcome::TooBig`] the returned
/// space holds the levels enumerated so far (weights are still computed
/// over the partial DAG).
pub fn enumerate(f: &Function, target: &Target, config: &Config) -> Enumeration {
    let start = std::time::Instant::now();
    let mut space = SearchSpace::new();
    let mut stats = SearchStats::default();
    let mut paranoid_bytes: HashMap<NodeId, Vec<u8>> = HashMap::new();

    let root_fp = canon::fingerprint(f);
    let root = space.insert(Node {
        fp: root_fp,
        flags: f.flags,
        level: 0,
        inst_count: f.inst_count() as u32,
        cf_sig: control_flow_signature(f),
        active_mask: 0,
        children: Vec::new(),
        discovered_from: None,
        weight: 0,
    });
    if config.paranoid {
        paranoid_bytes.insert(root, canon::canonical_bytes(f));
    }

    // Frontier of instances to expand, with their materialized functions
    // (prefix sharing) or discovery sequences (naive replay).
    let mut frontier: Vec<(NodeId, Function, Vec<PhaseId>)> =
        vec![(root, f.clone(), Vec::new())];
    let mut outcome = SearchOutcome::Complete;
    let mut level = 0u32;

    'search: while !frontier.is_empty() {
        level += 1;
        let mut next: Vec<(NodeId, Function, Vec<PhaseId>)> = Vec::new();
        for (node_id, node_fn, node_seq) in std::mem::take(&mut frontier) {
            let skip = if config.skip_just_applied {
                space.node(node_id).discovered_from.map(|(_, p)| p)
            } else {
                None
            };
            let mut active_mask = 0u16;
            let mut children = Vec::new();
            for phase in PhaseId::ALL {
                // Optional Figure 2 shortcut: the phase that just produced
                // this instance is not re-attempted.
                if Some(phase) == skip {
                    continue;
                }
                let mut candidate = match config.replay {
                    ReplayMode::PrefixSharing => node_fn.clone(),
                    ReplayMode::NaiveReplay => {
                        // Rebuild from the unoptimized function.
                        let mut g = f.clone();
                        for &p in &node_seq {
                            attempt(&mut g, p, target);
                            stats.phases_applied += 1;
                        }
                        g
                    }
                };
                stats.attempted_phases += 1;
                stats.phases_applied += 1;
                let outcome_attempt = attempt(&mut candidate, phase, target);
                if !outcome_attempt.active {
                    continue;
                }
                stats.active_attempts += 1;
                active_mask |= 1 << phase.index();
                let fp = canon::fingerprint(&candidate);
                let flags = candidate.flags;
                let child_id = match space.find(fp, flags) {
                    Some(existing) => {
                        if config.paranoid {
                            let bytes = canon::canonical_bytes(&candidate);
                            if paranoid_bytes.get(&existing).map(|b| b != &bytes).unwrap_or(false)
                            {
                                stats.collisions += 1;
                            }
                        }
                        existing
                    }
                    None => {
                        let id = space.insert(Node {
                            fp,
                            flags,
                            level,
                            inst_count: candidate.inst_count() as u32,
                            cf_sig: control_flow_signature(&candidate),
                            active_mask: 0,
                            children: Vec::new(),
                            discovered_from: Some((node_id, phase)),
                            weight: 0,
                        });
                        if config.paranoid {
                            paranoid_bytes.insert(id, canon::canonical_bytes(&candidate));
                        }
                        let mut seq = Vec::new();
                        if config.replay == ReplayMode::NaiveReplay {
                            seq = node_seq.clone();
                            seq.push(phase);
                        }
                        next.push((id, candidate, seq));
                        id
                    }
                };
                children.push((phase, child_id));
            }
            {
                let n = space.node_mut(node_id);
                n.active_mask = active_mask;
                n.children = children;
            }
            if next.len() > config.max_level_width || space.len() > config.max_nodes {
                outcome = SearchOutcome::TooBig { level };
                break 'search;
            }
        }
        frontier = next;
    }

    // Weights over the (possibly partial) DAG. The space is acyclic
    // because no phase in this compiler undoes the effect of another; the
    // assertion defends the interaction analyses against regressions.
    space
        .compute_weights()
        .expect("phase-order space must be acyclic");

    stats.elapsed = start.elapsed();
    Enumeration { space, outcome, stats }
}

/// Convenience: renders an active phase sequence as its letter string
/// (e.g. `"scks"`), the notation used throughout the paper.
pub fn sequence_letters(seq: &[PhaseId]) -> String {
    seq.iter().map(|p| p.letter()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_fn(src: &str) -> Function {
        vpo_frontend::compile(src).unwrap().functions.remove(0)
    }

    #[test]
    fn trivial_function_space() {
        let f = compile_fn("int one() { return 1; }");
        let e = enumerate(&f, &Target::default(), &Config::default());
        assert!(e.outcome.is_complete());
        // `return 1` emits t0=1; RET t0 — instruction selection folds it,
        // and a couple of phases interact; the space stays tiny.
        assert!(e.space.len() >= 2);
        assert!(e.space.len() < 20, "space unexpectedly large: {}", e.space.len());
        assert!(e.space.leaf_count() >= 1);
    }

    #[test]
    fn space_is_deterministic() {
        let f = compile_fn("int f(int a, int b) { return a * b + a; }");
        let t = Target::default();
        let e1 = enumerate(&f, &t, &Config::default());
        let e2 = enumerate(&f, &t, &Config::default());
        assert_eq!(e1.space.len(), e2.space.len());
        assert_eq!(e1.stats.attempted_phases, e2.stats.attempted_phases);
        assert_eq!(e1.space.leaf_count(), e2.space.leaf_count());
    }

    #[test]
    fn attempted_far_exceeds_instances() {
        let f = compile_fn(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
        );
        let e = enumerate(&f, &Target::default(), &Config::default());
        assert!(e.outcome.is_complete());
        // The central observation of the paper: attempts dwarf instances.
        assert!(e.stats.attempted_phases as usize > 3 * e.space.len());
        assert!(e.space.leaf_count() >= 1);
        assert!(e.space.max_active_sequence_length() >= 3);
    }

    #[test]
    fn naive_replay_explores_identical_space_at_higher_cost() {
        let f = compile_fn("int f(int a) { return a * 4 + 2; }");
        let t = Target::default();
        let fast = enumerate(&f, &t, &Config::default());
        let slow = enumerate(
            &f,
            &t,
            &Config { replay: ReplayMode::NaiveReplay, ..Config::default() },
        );
        assert_eq!(fast.space.len(), slow.space.len());
        assert_eq!(fast.stats.attempted_phases, slow.stats.attempted_phases);
        assert!(
            slow.stats.phases_applied > fast.stats.phases_applied,
            "naive replay must apply more phases: {} vs {}",
            slow.stats.phases_applied,
            fast.stats.phases_applied
        );
    }

    #[test]
    fn paranoid_mode_sees_no_collisions() {
        let f = compile_fn(
            "int f(int a, int b) { if (a > b) return a - b; return b - a; }",
        );
        let e = enumerate(
            &f,
            &Target::default(),
            &Config { paranoid: true, ..Config::default() },
        );
        assert_eq!(e.stats.collisions, 0);
    }

    #[test]
    fn level_cap_reports_too_big() {
        let f = compile_fn(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i * i; return s; }",
        );
        let e = enumerate(
            &f,
            &Target::default(),
            &Config { max_level_width: 1, ..Config::default() },
        );
        assert!(matches!(e.outcome, SearchOutcome::TooBig { .. }));
    }

    #[test]
    fn root_weight_counts_distinct_sequences() {
        let f = compile_fn("int f(int a) { return a + 0 + a; }");
        let e = enumerate(&f, &Target::default(), &Config::default());
        let root_w = e.space.node(e.space.root()).weight;
        assert!(root_w >= 1);
        // Weight of the root cannot be smaller than the number of leaves.
        assert!(root_w >= e.space.leaf_count() as u64);
    }

    #[test]
    fn sequence_letters_renders() {
        assert_eq!(
            sequence_letters(&[PhaseId::InsnSelect, PhaseId::RegAlloc, PhaseId::Cse]),
            "skc"
        );
    }
}
