//! The exhaustive enumeration algorithm of Section 4.
//!
//! The space of *attempted* phase sequences is astronomically large (15^n
//! for sequences of length n), but the space of *distinct function
//! instances* is tiny by comparison. The algorithm explores level by level
//! (level n holds the instances whose shortest active sequence has length
//! n), pruning with:
//!
//! 1. **Dormant phase detection** (Section 4.1) — attempts that do not
//!    change the representation create no new sequence prefix; a phase
//!    that was just active is not re-attempted (no phase in this compiler
//!    can be successfully applied twice in a row — each runs to its own
//!    fixpoint).
//! 2. **Identical instance detection** (Section 4.2) — every produced
//!    instance is canonicalized (registers and labels renumbered in
//!    first-encounter order) and fingerprinted with (instruction count,
//!    byte sum, CRC-32); known instances merge the tree into a DAG.
//!
//! The **prefix-sharing** evaluation strategy of Section 4.3 keeps each
//! frontier instance materialized so a child costs exactly one phase
//! application; the naive strategy (kept for the Figure 6 experiment)
//! replays the whole active sequence from the unoptimized function for
//! every attempt.
//!
//! # Parallel enumeration
//!
//! [`enumerate`] dispatches on [`Config::jobs`]: `0` runs the serial
//! engine, `N` splits each level's frontier across `N` worker threads.
//! Workers expand parents independently (phase application,
//! canonicalization, fingerprinting — all the expensive work); at the
//! level barrier the main thread **merges** the per-parent attempt
//! records in frontier order, phase order — exactly the order the serial
//! engine discovers them — so node ids, `active_mask`s, edges, weights
//! and [`SearchStats`] counters are bit-identical for any job count.
//! Both paths share one expand/merge core, making the equivalence true
//! by construction rather than by careful double maintenance. The same
//! core drives the cross-function campaign driver
//! ([`crate::campaign`]), which steals parent expansions from many
//! functions over one pool.

use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vpo_opt::facts::Facts;
use vpo_opt::{attempt, PhaseId, Target};
use vpo_rtl::canon::{self, Canonicalizer, Fingerprint};
use vpo_rtl::cfg::control_flow_signature;
use vpo_rtl::{FuncFlags, Function, Program};

use crate::semantic::{Resolution, SemanticConfig, SemanticContext};
use crate::space::{Node, NodeId, SearchSpace};

/// How child instances are produced from their parents.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReplayMode {
    /// Keep frontier instances in memory; apply exactly one phase per
    /// attempt (the Section 4.3 enhancement).
    #[default]
    PrefixSharing,
    /// Rebuild every instance from the unoptimized function by replaying
    /// its discovery sequence (the naive strategy of Figure 6(a)).
    NaiveReplay,
}

/// Which expansion core materializes and fingerprints candidates.
///
/// Both engines produce bit-identical results — same node ids, masks,
/// edges, weights, and counters — for every configuration and job count;
/// only the allocation profile and wall-clock time differ. The reference
/// engine exists as the in-tree witness for the cross-engine equivalence
/// suite and for A/B measurements (`perfsuite --engine reference`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// The allocation-free core (the default): per-worker scratch
    /// buffers restored via [`Function::copy_from`], a reusable
    /// [`Canonicalizer`], and sound dormant-phase prefilters over
    /// [`Facts`] summaries.
    #[default]
    Scratch,
    /// The historical core: a fresh deep clone and a fresh canonicalizer
    /// per attempt, every phase attempted.
    Reference,
}

/// Enumeration limits and options.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Config {
    /// Abort when the number of instances awaiting expansion at one level
    /// exceeds this bound (the paper used one million).
    pub max_level_width: usize,
    /// Hard cap on the number of distinct instances: the enumeration
    /// aborts *before* an insertion would exceed it, so `space.len()`
    /// never exceeds this value.
    pub max_nodes: usize,
    /// Evaluation strategy (see [`ReplayMode`]).
    pub replay: ReplayMode,
    /// Verify fingerprint hits by full canonical-byte comparison and
    /// record any collision (none have ever been observed, matching the
    /// paper). In this mode the canonical bytes of *every* node are
    /// retained; a fingerprint hit against a node with no recorded bytes
    /// is an internal invariant violation and panics.
    pub paranoid: bool,
    /// Do not re-attempt the phase that produced an instance (the paper's
    /// Figure 2 shortcut). VPO guarantees a phase is never successful twice
    /// in a row; in this compiler the implicit block normalization can
    /// occasionally re-enable the very phase that just ran, so the shortcut
    /// is off by default and exists for fidelity experiments.
    pub skip_just_applied: bool,
    /// Worker threads for [`enumerate`]: `0` (the default) runs the
    /// serial engine, `N` the parallel engine with `N` workers. The
    /// result is identical for any value; only wall-clock time differs.
    pub jobs: usize,
    /// Expansion core (see [`Engine`]). Like `jobs`, this never changes
    /// the result — only how fast it is produced — so it is not part of
    /// the campaign store's configuration echo.
    pub engine: Engine,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_level_width: 1_000_000,
            max_nodes: 4_000_000,
            replay: ReplayMode::PrefixSharing,
            paranoid: false,
            skip_just_applied: false,
            jobs: 0,
            engine: Engine::Scratch,
        }
    }
}

/// Whether the enumeration ran to completion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchOutcome {
    /// Every reachable instance was expanded.
    Complete,
    /// The space exceeded a configured bound at the given level.
    TooBig {
        /// Level at which the bound was hit.
        level: u32,
    },
}

impl SearchOutcome {
    /// Whether the search completed.
    pub fn is_complete(&self) -> bool {
        matches!(self, SearchOutcome::Complete)
    }
}

/// Evaluation-cost counters (the Figure 6 comparison) and search totals.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Optimization phases attempted, including dormant ones (`Attempt
    /// Phases` in Table 3).
    pub attempted_phases: u64,
    /// Attempts that were active.
    pub active_attempts: u64,
    /// Total phase *applications* performed, including replay overhead —
    /// equals `attempted_phases` under prefix sharing, and is 5–10× larger
    /// under naive replay (Section 4.3).
    pub phases_applied: u64,
    /// Wall-clock duration of the search.
    pub elapsed: Duration,
    /// Fingerprint collisions detected in paranoid mode (expected 0).
    pub collisions: u64,
    /// Fingerprint-fresh instances merged by the semantic tier (always 0
    /// under the fingerprint tier).
    pub sem_merges: u64,
    /// Signature hits *rejected* by paranoid escalation: the battery
    /// collided on behaviorally different code (expected 0).
    pub sem_collisions: u64,
    /// Signature hits escalated to extended-battery differential
    /// re-execution (paranoid mode only).
    pub sem_escalations: u64,
    /// Merged instances whose expansion was *skipped* by the pruned tier
    /// (signature matched and the one-step lookahead confirmed every
    /// phase firing on the candidate lands in the same class as the
    /// representative's corresponding child; always 0 outside
    /// `--merge-tier semantic-pruned`). Every prune is also counted in
    /// [`SearchStats::sem_merges`].
    pub sem_prunes: u64,
    /// Merged instances the pruned tier expanded anyway: the
    /// representative was not yet expanded (same level) or had no child
    /// for a phase the candidate fires, a successor landed in a
    /// different class, or the candidate had no active phase at all — a
    /// genuine leaf, kept visible rather than pruned (always 0 outside
    /// `--merge-tier semantic-pruned`). Under the pruned tier,
    /// `sem_merges == sem_prunes + sem_mask_fallbacks`.
    pub sem_mask_fallbacks: u64,
}

/// The result of enumerating one function's phase-order space.
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// The weighted DAG of distinct instances.
    pub space: SearchSpace,
    /// Whether the search completed.
    pub outcome: SearchOutcome,
    /// Cost counters.
    pub stats: SearchStats,
}

/// One instance awaiting expansion: its node, its materialized function
/// (prefix sharing) and its discovery sequence (naive replay only). The
/// function is shared, not owned: expansion only reads it, and the
/// campaign driver hands entries to workers without deep-copying under
/// its scheduler lock.
pub(crate) struct FrontierEntry {
    pub(crate) id: NodeId,
    pub(crate) func: Arc<Function>,
    pub(crate) seq: Vec<PhaseId>,
}

/// The outcome of one phase attempt on one parent, recorded by the
/// expansion step and consumed by the merge step.
pub(crate) enum AttemptRecord {
    /// The phase did not change the representation.
    Dormant {
        /// The attempt was proven dormant by a [`Facts`] prefilter — the
        /// phase never ran and nothing was cloned. Counted by the
        /// deterministic `enumerate.prefilter_dormant` telemetry counter
        /// at merge time.
        prefiltered: bool,
    },
    /// The phase was active and produced a candidate instance.
    Active {
        phase: PhaseId,
        fp: Fingerprint,
        flags: FuncFlags,
        inst_count: u32,
        cf_sig: u64,
        /// The candidate function — carried only for the first occurrence
        /// of this identity in the producing worker's stream, which is a
        /// superset of the occurrences the merge step actually inserts.
        func: Option<Function>,
        /// Canonical serialization, present iff `Config::paranoid`.
        bytes: Option<Vec<u8>>,
    },
}

/// Per-worker reusable expansion state: the scratch `Function` that every
/// candidate is materialized into, and the canonicalization workspace.
///
/// With [`Engine::Scratch`], steady-state expansion performs no heap
/// allocation per attempt: the scratch function is restored from the
/// parent with [`Function::copy_from`] (reusing block/instruction/operand
/// allocations), and fingerprints reuse the canonicalizer's maps and byte
/// buffer. The only unavoidable allocation is promoting a *newly
/// discovered* instance out of the scratch buffer into the frontier
/// (`mem::take`), which happens once per distinct instance, not once per
/// attempt.
pub(crate) struct ExpandScratch {
    func: Function,
    canon: Canonicalizer,
    /// `func` holds a previous attempt's buffers (a warm restore).
    warm: bool,
    /// `canon` has serialized at least once (its buffers are warm).
    canon_warm: bool,
}

impl ExpandScratch {
    pub(crate) fn new() -> Self {
        ExpandScratch {
            func: Function::default(),
            canon: Canonicalizer::new(),
            warm: false,
            canon_warm: false,
        }
    }
}

/// Expands one parent: attempts every (non-skipped) phase and records the
/// outcomes in phase order. `known` reports whether an identity is
/// already catalogued; when it is, the candidate function is dropped
/// instead of carried (pure memory optimization — the merge step decides
/// insertion independently). `scratch` is the calling worker's reusable
/// expansion state; with [`Engine::Reference`] it is used only as a
/// holding cell for fresh clones, reproducing the historical allocation
/// profile.
#[allow(clippy::too_many_arguments)]
pub(crate) fn expand_parent(
    root: &Function,
    target: &Target,
    config: &Config,
    parent_fn: &Function,
    parent_seq: &[PhaseId],
    skip: Option<PhaseId>,
    mut known: impl FnMut(Fingerprint, FuncFlags) -> bool,
    scratch: &mut ExpandScratch,
) -> Vec<AttemptRecord> {
    let scratch_engine = config.engine == Engine::Scratch;
    // One fact summary covers all 15 attempts of this parent.
    let facts = if scratch_engine { Some(Facts::of(parent_fn)) } else { None };
    let (mut reuse_hits, mut bytes_reused) = (0u64, 0u64);
    let ExpandScratch { func: buf, canon, warm, canon_warm } = scratch;
    let mut records = Vec::with_capacity(PhaseId::COUNT);
    for phase in PhaseId::ALL {
        // Optional Figure 2 shortcut: the phase that just produced this
        // instance is not re-attempted.
        if Some(phase) == skip {
            continue;
        }
        // Sound prefilter: a provably-dormant phase is recorded dormant
        // without materializing a candidate or running anything.
        if let Some(facts) = &facts {
            if !phase.can_be_active(facts) {
                records.push(AttemptRecord::Dormant { prefiltered: true });
                continue;
            }
        }
        if scratch_engine {
            if *warm {
                reuse_hits += 1;
            }
            match config.replay {
                ReplayMode::PrefixSharing => buf.copy_from(parent_fn),
                ReplayMode::NaiveReplay => {
                    // Rebuild from the unoptimized function.
                    buf.copy_from(root);
                    for &p in parent_seq {
                        attempt(buf, p, target);
                    }
                }
            }
            *warm = true;
        } else {
            *buf = match config.replay {
                ReplayMode::PrefixSharing => parent_fn.clone(),
                ReplayMode::NaiveReplay => {
                    let mut g = root.clone();
                    for &p in parent_seq {
                        attempt(&mut g, p, target);
                    }
                    g
                }
            };
        }
        if !attempt(buf, phase, target).active {
            records.push(AttemptRecord::Dormant { prefiltered: false });
            continue;
        }
        let (fp, bytes) = if scratch_engine {
            let fp = canon.fingerprint_into(buf);
            if *canon_warm {
                bytes_reused += canon.bytes().len() as u64;
            }
            *canon_warm = true;
            (fp, config.paranoid.then(|| canon.bytes().to_vec()))
        } else {
            (canon::fingerprint(buf), config.paranoid.then(|| canon::canonical_bytes(buf)))
        };
        let flags = buf.flags;
        let inst_count = buf.inst_count() as u32;
        let cf_sig = control_flow_signature(buf);
        let func = if known(fp, flags) {
            None
        } else {
            // First sighting of this identity in this worker's stream:
            // the candidate must outlive the attempt, so the scratch
            // buffer is stolen (the next restore starts cold).
            *warm = false;
            Some(std::mem::take(buf))
        };
        records.push(AttemptRecord::Active { phase, fp, flags, inst_count, cf_sig, func, bytes });
    }
    if reuse_hits > 0 || bytes_reused > 0 {
        let tm = crate::telemetry::global();
        tm.scratch_reuse_hits.add(reuse_hits);
        tm.canon_bytes_reused.add(bytes_reused);
    }
    records
}

/// How a fingerprint-fresh instance resolved against the semantic tier
/// (trivially `Off` under the fingerprint tier).
enum SemResolution {
    /// Semantic tier disabled.
    Off,
    /// The signature founded a new class: register the node under it.
    Founder(crate::semantic::Signature),
    /// The signature matched an established class (surviving escalation
    /// in paranoid mode). Under the annotation tier (`pruned: false`)
    /// the node is inserted *and expanded* exactly as under the
    /// fingerprint tier — signature equality is not a congruence under
    /// phase application, so blind pruning would lose classes — and
    /// annotated via a `sem_children` edge on the parent. Under the
    /// pruned tier, when the one-step lookahead also subsumes the
    /// candidate's realized successors (`pruned: true`), the node is
    /// inserted but its expansion is skipped: the edge goes to the
    /// parent's `pruned_children` instead, and the node never reaches
    /// the next frontier.
    Merged { rep: NodeId, pruned: bool },
}

/// How one active attempt resolves against the space — computed up front
/// (it drives the `max_nodes` cap check) and consumed when the record is
/// folded in.
enum Disposition {
    /// Fingerprint hit on a node of the space: a `children` edge.
    Hit(NodeId),
    /// A new node, with its semantic resolution.
    Insert(SemResolution),
}

/// Folds one parent's attempt records into the space, in phase order —
/// the single code path that assigns node ids and counts statistics for
/// both the serial and the parallel engine, and (when `sem` is given)
/// the only place the semantic merge tier runs: merge happens serially
/// in frontier order even under parallel enumeration, so signature
/// computation and class lookups inherit the bit-identical-for-any-job-
/// count guarantee without any extra synchronization. The semantic tier
/// never changes which nodes exist or how they connect — the space is
/// bit-identical to the fingerprint tier's — it only *annotates* the
/// quotient (sem edges, class counts) on top.
///
/// Returns `false` if the `max_nodes` cap was hit: the search is
/// truncated just *before* the offending attempt (its phase is neither
/// counted nor recorded in the parent's mask), so `space.len()` never
/// exceeds the cap — at the identical truncation point under either
/// merge tier.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_parent(
    space: &mut SearchSpace,
    stats: &mut SearchStats,
    paranoid_bytes: &mut HashMap<(Fingerprint, FuncFlags), Vec<u8>>,
    config: &Config,
    target: &Target,
    level: u32,
    parent: &FrontierEntry,
    records: Vec<AttemptRecord>,
    next: &mut Vec<FrontierEntry>,
    mut sem: Option<&mut SemanticContext<'_>>,
) -> bool {
    let tm = crate::telemetry::global();
    let naive = config.replay == ReplayMode::NaiveReplay;
    let replay_cost = if naive { parent.seq.len() as u64 } else { 0 };
    let mut active_mask = 0u16;
    let mut children = Vec::new();
    let mut sem_edges = Vec::new();
    let mut pruned_edges = Vec::new();
    let mut complete = true;
    // Telemetry is batched into locals and flushed once per parent so the
    // merge loop touches no shared cache line per record.
    let (mut tm_attempted, mut tm_active, mut tm_hits, mut tm_inserted, mut tm_prefiltered) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut tm_sem_hits, mut tm_sem_collisions, mut tm_sem_escalations) = (0u64, 0u64, 0u64);
    let (mut tm_sem_prunes, mut tm_sem_fallbacks) = (0u64, 0u64);
    for record in records {
        // Resolve the identity once per active record: the same
        // resolution drives the cap check here and the edge recording
        // below. The semantic tier runs only on fingerprint misses — a
        // fingerprint-fresh candidate's signature is computed and either
        // matches an established class (merge: no insertion, a dashed
        // edge, an alias) or founds a new one.
        let disposition = match &record {
            AttemptRecord::Active { fp, flags, func, .. } => {
                let d = match space.find(*fp, *flags) {
                    Some(id) => Disposition::Hit(id),
                    None => match sem.as_deref_mut() {
                        Some(sem) => {
                            let cand = func
                                .as_ref()
                                .expect("first discovery of an instance carries its function");
                            let sig = sem.signature(cand);
                            let (res, escalated) = sem.resolve(&sig, cand);
                            stats.sem_escalations += escalated;
                            tm_sem_escalations += escalated;
                            match res {
                                Resolution::Merge(rep) => {
                                    // Pruned tier: skip expansion only when
                                    // the candidate's realized active-phase
                                    // set is subsumed by the (already
                                    // expanded) representative's — every
                                    // phase that actually fires on the
                                    // candidate has a child at the
                                    // representative landing in the *same
                                    // behavioral class* as the candidate's
                                    // own result for that phase
                                    // ([`SemanticContext::subsumes`]). The
                                    // level barrier is what makes the
                                    // representative's edge list exact here:
                                    // merges run serially after every
                                    // earlier-level node was expanded, so a
                                    // same-level representative has no
                                    // children yet and never subsumes.
                                    let pruned = sem.pruning()
                                        && sem.subsumes(cand, &space.node(rep).children, target);
                                    Disposition::Insert(SemResolution::Merged { rep, pruned })
                                }
                                Resolution::Fresh { collided } => {
                                    if collided {
                                        stats.sem_collisions += 1;
                                        tm_sem_collisions += 1;
                                    }
                                    Disposition::Insert(SemResolution::Founder(sig))
                                }
                            }
                        }
                        None => Disposition::Insert(SemResolution::Off),
                    },
                };
                if matches!(d, Disposition::Insert(_)) && space.len() >= config.max_nodes {
                    complete = false;
                    break;
                }
                Some(d)
            }
            AttemptRecord::Dormant { .. } => None,
        };
        stats.attempted_phases += 1;
        // `phases_applied` is the Figure 6 *cost model* of the chosen
        // replay strategy: one application per attempt plus the replay
        // overhead. It deliberately counts prefiltered attempts as if
        // they had run, so the counter is engine-independent; the work
        // actually saved is reported by `enumerate.prefilter_dormant`.
        stats.phases_applied += 1 + replay_cost;
        tm_attempted += 1;
        let (phase, fp, flags, inst_count, cf_sig, func, mut bytes) = match record {
            AttemptRecord::Dormant { prefiltered } => {
                if prefiltered {
                    tm_prefiltered += 1;
                }
                continue;
            }
            AttemptRecord::Active { phase, fp, flags, inst_count, cf_sig, func, bytes } => {
                (phase, fp, flags, inst_count, cf_sig, func, bytes)
            }
        };
        stats.active_attempts += 1;
        tm_active += 1;
        active_mask |= 1 << phase.index();
        // Paranoid byte comparison is keyed by *identity*, not node: an
        // identity the semantic tier merged away still has its canonical
        // bytes on record, so CRC-collision checking stays complete
        // under both tiers.
        let check_bytes = |paranoid_bytes: &mut HashMap<(Fingerprint, FuncFlags), Vec<u8>>,
                           bytes: &mut Option<Vec<u8>>,
                           stats: &mut SearchStats| {
            if config.paranoid {
                let recorded = paranoid_bytes.get(&(fp, flags)).unwrap_or_else(|| {
                    panic!("paranoid mode: no canonical bytes recorded for fingerprint hit")
                });
                if *recorded != bytes.take().expect("paranoid attempt carries bytes") {
                    stats.collisions += 1;
                }
            }
        };
        match disposition.expect("active record resolved above") {
            Disposition::Hit(existing) => {
                tm_hits += 1;
                check_bytes(paranoid_bytes, &mut bytes, stats);
                children.push((phase, existing));
            }
            Disposition::Insert(res) => {
                tm_inserted += 1;
                let skip_expansion = matches!(res, SemResolution::Merged { pruned: true, .. });
                let id = space.insert(Node {
                    fp,
                    flags,
                    level,
                    inst_count,
                    cf_sig,
                    active_mask: 0,
                    children: Vec::new(),
                    sem_children: Vec::new(),
                    pruned_children: Vec::new(),
                    pruned: skip_expansion,
                    discovered_from: Some((parent.id, phase)),
                    weight: 0,
                });
                if config.paranoid {
                    paranoid_bytes
                        .insert((fp, flags), bytes.take().expect("paranoid attempt carries bytes"));
                }
                let func = func.expect("first discovery of an instance carries its function");
                let func = Arc::new(func);
                match res {
                    SemResolution::Off => {}
                    SemResolution::Founder(sig) => {
                        sem.as_deref_mut()
                            .expect("signature implies the semantic tier is on")
                            .register(sig, id, &func);
                    }
                    SemResolution::Merged { rep, pruned } => {
                        sem.as_deref_mut()
                            .expect("merge implies the semantic tier is on")
                            .record_merge(id, rep);
                        stats.sem_merges += 1;
                        tm_sem_hits += 1;
                        if pruned {
                            // Subsumed: record the dotted edge and keep
                            // the node off the next frontier.
                            pruned_edges.push((phase, rep));
                            stats.sem_prunes += 1;
                            tm_sem_prunes += 1;
                        } else {
                            // The node is behaviorally redundant:
                            // annotate the quotient but keep exploring
                            // through it.
                            sem_edges.push((phase, rep));
                            if sem.as_deref().is_some_and(|s| s.pruning()) {
                                stats.sem_mask_fallbacks += 1;
                                tm_sem_fallbacks += 1;
                            }
                        }
                    }
                }
                if !skip_expansion {
                    let mut seq = Vec::new();
                    if naive {
                        seq = Vec::with_capacity(parent.seq.len() + 1);
                        seq.extend_from_slice(&parent.seq);
                        seq.push(phase);
                    }
                    next.push(FrontierEntry { id, func, seq });
                }
                children.push((phase, id));
            }
        }
    }
    let n = space.node_mut(parent.id);
    n.active_mask = active_mask;
    n.children = children;
    n.sem_children = sem_edges;
    n.pruned_children = pruned_edges;
    tm.parents_expanded.inc();
    tm.phases_attempted.add(tm_attempted);
    tm.active_attempts.add(tm_active);
    tm.dormant_prunes.add(tm_attempted - tm_active);
    tm.prefilter_dormant.add(tm_prefiltered);
    tm.fingerprint_hits.add(tm_hits);
    tm.nodes_inserted.add(tm_inserted);
    tm.sem_merge_hits.add(tm_sem_hits);
    tm.sem_sig_collisions.add(tm_sem_collisions);
    tm.sem_escalations.add(tm_sem_escalations);
    tm.sem_subsumption_prunes.add(tm_sem_prunes);
    tm.sem_mask_fallbacks.add(tm_sem_fallbacks);
    complete
}

/// Seeds a fresh space with the unoptimized root instance — the shared
/// level-zero setup of the in-process engine and the campaign driver.
pub(crate) fn seed_root(
    space: &mut SearchSpace,
    paranoid_bytes: &mut HashMap<(Fingerprint, FuncFlags), Vec<u8>>,
    config: &Config,
    f: &Function,
) -> NodeId {
    let fp = canon::fingerprint(f);
    let root = space.insert(Node {
        fp,
        flags: f.flags,
        level: 0,
        inst_count: f.inst_count() as u32,
        cf_sig: control_flow_signature(f),
        active_mask: 0,
        children: Vec::new(),
        sem_children: Vec::new(),
        pruned_children: Vec::new(),
        pruned: false,
        discovered_from: None,
        weight: 0,
    });
    if config.paranoid {
        paranoid_bytes.insert((fp, f.flags), canon::canonical_bytes(f));
    }
    crate::telemetry::global().nodes_inserted.inc();
    root
}

/// Rebuilds the function instance of a node by replaying its discovery
/// sequence from the unoptimized root — the rematerialization step of
/// frontier resume. Checkpoints persist only the space topology;
/// suspended frontier instances (and, in paranoid or semantic mode,
/// their canonical bytes and signatures) are regrown through the
/// discovery edges, exactly as naive replay would produce them.
pub(crate) fn rematerialize(
    root: &Function,
    target: &Target,
    space: &SearchSpace,
    id: NodeId,
) -> Function {
    let mut f = root.clone();
    for p in space.discovery_sequence(id) {
        attempt(&mut f, p, target);
    }
    f
}

/// The level-barrier parking lot: one write-once slot per parent.
///
/// Workers claim disjoint chunks of the frontier through an atomic
/// cursor, so every slot is written by exactly one worker, exactly once;
/// the main thread reads the slots only after `std::thread::scope` has
/// joined all workers, which establishes the happens-before edge that
/// makes the writes visible. Under that protocol per-slot locks are pure
/// overhead — this replaces the historical `Vec<Mutex<Option<..>>>`
/// barrier, whose lock traffic contended at high `--jobs`.
struct OnceSlots<T> {
    slots: Vec<UnsafeCell<Option<T>>>,
}

// SAFETY: distinct threads only ever touch *distinct* slots (the cursor
// hands out disjoint index ranges), and all reads happen after every
// writer has been joined.
unsafe impl<T: Send> Sync for OnceSlots<T> {}

impl<T> OnceSlots<T> {
    fn new(n: usize) -> OnceSlots<T> {
        OnceSlots { slots: (0..n).map(|_| UnsafeCell::new(None)).collect() }
    }

    /// Writes slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must hold exclusive claim over index `i` (obtained via
    /// the cursor protocol above) and must write it at most once; the
    /// slots must not be read until all writers have been joined.
    unsafe fn put(&self, i: usize, value: T) {
        unsafe { *self.slots[i].get() = Some(value) };
    }

    fn into_values(self) -> impl Iterator<Item = Option<T>> {
        self.slots.into_iter().map(UnsafeCell::into_inner)
    }
}

/// The level-order engine behind [`enumerate`]; `jobs <= 1` expands
/// inline, `jobs > 1` fans each level out over `std::thread::scope`
/// workers.
fn run(
    f: &Function,
    target: &Target,
    config: &Config,
    jobs: usize,
    mut sem: Option<&mut SemanticContext<'_>>,
) -> Enumeration {
    let start = std::time::Instant::now();
    let tm = crate::telemetry::global();
    tm.searches.inc();
    let mut space = SearchSpace::new();
    let mut stats = SearchStats::default();
    let mut paranoid_bytes: HashMap<(Fingerprint, FuncFlags), Vec<u8>> = HashMap::new();

    let root = seed_root(&mut space, &mut paranoid_bytes, config, f);

    let root_func = Arc::new(f.clone());
    if let Some(sem) = sem.as_deref_mut() {
        // The root founds the first signature class: instances
        // behaviorally identical to the unoptimized function are
        // annotated as merging into it.
        let sig = sem.signature(f);
        sem.register(sig, root, &root_func);
    }
    let mut frontier = vec![FrontierEntry { id: root, func: root_func, seq: Vec::new() }];
    let mut outcome = SearchOutcome::Complete;
    let mut level = 0u32;
    // The serial engine's scratch persists across levels, so its buffers
    // stay warm for the whole search.
    let mut serial_scratch = ExpandScratch::new();

    'search: while !frontier.is_empty() {
        level += 1;
        let level_start = std::time::Instant::now();
        tm.peak_frontier.set_max(frontier.len() as u64);
        let mut next: Vec<FrontierEntry> = Vec::with_capacity(frontier.len());
        let skip_of = |space: &SearchSpace, entry: &FrontierEntry| {
            if config.skip_just_applied {
                space.node(entry.id).discovered_from.map(|(_, p)| p)
            } else {
                None
            }
        };
        if jobs > 1 && frontier.len() > 1 {
            // Expansion barrier: workers claim disjoint frontier chunks
            // via an atomic cursor and park their records in write-once
            // per-parent slots; the merge below walks the slots in
            // frontier order, which restores the exact serial discovery
            // order. Chunks keep cursor traffic at ~4 claims per worker
            // per level while still load-balancing uneven parents.
            let cursor = AtomicUsize::new(0);
            let chunk = (frontier.len() / (jobs * 4)).clamp(1, 32);
            let slots: OnceSlots<Vec<AttemptRecord>> = OnceSlots::new(frontier.len());
            let space_ref = &space;
            let frontier_ref = &frontier;
            let slots_ref = &slots;
            std::thread::scope(|scope| {
                for _ in 0..jobs.min(frontier_ref.len()) {
                    scope.spawn(|| {
                        let mut scratch = ExpandScratch::new();
                        // Per-worker dedup shard: identities already in the
                        // space or already seen by this worker do not carry
                        // their (large) function bodies to the barrier.
                        let mut seen: HashSet<(Fingerprint, FuncFlags)> = HashSet::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= frontier_ref.len() {
                                break;
                            }
                            let end = (start + chunk).min(frontier_ref.len());
                            for (i, entry) in frontier_ref[start..end]
                                .iter()
                                .enumerate()
                                .map(|(off, e)| (start + off, e))
                            {
                                let records = expand_parent(
                                    f,
                                    target,
                                    config,
                                    &entry.func,
                                    &entry.seq,
                                    skip_of(space_ref, entry),
                                    |fp, flags| {
                                        space_ref.find(fp, flags).is_some()
                                            || !seen.insert((fp, flags))
                                    },
                                    &mut scratch,
                                );
                                // SAFETY: `i` lies in the chunk this worker
                                // claimed from the cursor, so no other
                                // thread touches slot `i`, and the main
                                // thread reads only after the scope joins.
                                unsafe { slots_ref.put(i, records) };
                            }
                        }
                    });
                }
            });
            for (entry, slot) in frontier.iter().zip(slots.into_values()) {
                let records = slot.expect("worker filled every slot");
                if !merge_parent(
                    &mut space,
                    &mut stats,
                    &mut paranoid_bytes,
                    config,
                    target,
                    level,
                    entry,
                    records,
                    &mut next,
                    sem.as_deref_mut(),
                ) {
                    outcome = SearchOutcome::TooBig { level };
                    break 'search;
                }
                if next.len() > config.max_level_width {
                    outcome = SearchOutcome::TooBig { level };
                    break 'search;
                }
            }
        } else {
            for entry in &frontier {
                let records = expand_parent(
                    f,
                    target,
                    config,
                    &entry.func,
                    &entry.seq,
                    skip_of(&space, entry),
                    |fp, flags| space.find(fp, flags).is_some(),
                    &mut serial_scratch,
                );
                if !merge_parent(
                    &mut space,
                    &mut stats,
                    &mut paranoid_bytes,
                    config,
                    target,
                    level,
                    entry,
                    records,
                    &mut next,
                    sem.as_deref_mut(),
                ) {
                    outcome = SearchOutcome::TooBig { level };
                    break 'search;
                }
                if next.len() > config.max_level_width {
                    outcome = SearchOutcome::TooBig { level };
                    break 'search;
                }
            }
        }
        tm.levels.inc();
        tm.level_wall_ns.observe(level_start.elapsed());
        frontier = next;
    }
    if !outcome.is_complete() {
        tm.searches_truncated.inc();
    }

    // Weights over the (possibly partial) DAG. The space is acyclic
    // because no phase in this compiler undoes the effect of another; the
    // assertion defends the interaction analyses against regressions.
    space.compute_weights().expect("phase-order space must be acyclic");

    stats.elapsed = start.elapsed();
    Enumeration { space, outcome, stats }
}

/// Exhaustively enumerates the phase-order space of `f`.
///
/// `f` is the *unoptimized* function as produced by the front end; the
/// root instance is `f` itself. On [`SearchOutcome::TooBig`] the returned
/// space holds the levels enumerated so far (weights are still computed
/// over the partial DAG).
///
/// [`Config::jobs`] selects the engine: `0` (the default) runs serially,
/// `N` expands each level over `N` worker threads. The result — node ids
/// and count, leaf count, `active_mask`s, edges, weights, and every
/// [`SearchStats`] counter except the wall-clock `elapsed` — is identical
/// for any job count: each level is expanded in parallel but merged
/// deterministically in frontier order at the level barrier.
pub fn enumerate(f: &Function, target: &Target, config: &Config) -> Enumeration {
    run(f, target, config, config.jobs.max(1), None)
}

/// [`enumerate`] under the *semantic* merge tier (`--merge-tier
/// semantic`): fingerprint-fresh instances are additionally keyed by
/// their behavioral signature ([`crate::semantic`]) and merged into the
/// first instance observed with that signature, recording the edge in
/// [`crate::space::Node::sem_children`]. The node set, `children`
/// edges, masks, weights and fingerprint-tier counters are
/// bit-identical to [`enumerate`]'s — merged nodes are still inserted
/// and expanded (signature equality is not a congruence under phase
/// application, so pruning would lose classes) — which makes the
/// semantic space an exact quotient annotation: the number of
/// behaviorally distinct instances is
/// [`SearchSpace::sem_class_count`] `=` [`SearchSpace::len`] `-`
/// [`SearchStats::sem_merges`]. `program` provides callees and
/// the globals layout for signature execution; `f` must be one of its
/// functions (unoptimized, exactly as for [`enumerate`]).
///
/// With [`Config::paranoid`], every signature hit is escalated to a full
/// differential re-execution over an extended input battery before the
/// merge is accepted ([`SearchStats::sem_escalations`]); rejected hits
/// stay distinct nodes and count [`SearchStats::sem_collisions`].
///
/// Like the fingerprint tier, the result is bit-identical for any
/// [`Config::jobs`] value: signatures are computed at merge time, which
/// is serial and in frontier order under every engine.
pub fn enumerate_semantic(
    program: &Program,
    f: &Function,
    target: &Target,
    config: &Config,
    sem_config: &SemanticConfig,
) -> Enumeration {
    let mut sem = SemanticContext::new(program, f, sem_config, config.paranoid);
    run(f, target, config, config.jobs.max(1), Some(&mut sem))
}

/// [`enumerate_semantic`] under the *pruned* merge tier (`--merge-tier
/// semantic-pruned`): a behaviorally merged instance is inserted but
/// **not expanded** ([`SearchStats::sem_prunes`]) when its realized
/// active-phase set is subsumed by its already-expanded class
/// representative's — the one-step lookahead
/// [`SemanticContext::subsumes`] confirms that every phase actually
/// firing on the candidate has a child at the representative landing in
/// the same behavioral class as the candidate's own result for that
/// phase. Signature equality alone is not a congruence under phase
/// application, so the check inspects where the successors really land
/// rather than a static mask. Where the criterion fails — unexpanded
/// representative, missing or class-divergent successor, or a candidate
/// with no active phase (a genuine leaf, kept visible) — the tier falls
/// back to full expansion and counts a
/// [`SearchStats::sem_mask_fallbacks`] candidate. The resulting space
/// is a sub-DAG of the annotation tier's; `vpoc audit-quotient`
/// measures the exact class loss and checks optimum preservation (see
/// DESIGN §4.2.2). Determinism is inherited unchanged: prune decisions
/// happen at merge time, serially in frontier order, for any job count.
pub fn enumerate_semantic_pruned(
    program: &Program,
    f: &Function,
    target: &Target,
    config: &Config,
    sem_config: &SemanticConfig,
) -> Enumeration {
    let mut sem = SemanticContext::new(program, f, sem_config, config.paranoid);
    sem.enable_pruning();
    run(f, target, config, config.jobs.max(1), Some(&mut sem))
}

/// One worker thread per available CPU — the historical meaning of
/// `jobs: 0` in the parallel entry point, now the explicit opt-in.
pub fn jobs_per_cpu() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Convenience: renders an active phase sequence as its letter string
/// (e.g. `"scks"`), the notation used throughout the paper.
pub fn sequence_letters(seq: &[PhaseId]) -> String {
    seq.iter().map(|p| p.letter()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_fn(src: &str) -> Function {
        vpo_frontend::compile(src).unwrap().functions.remove(0)
    }

    #[test]
    fn trivial_function_space() {
        let f = compile_fn("int one() { return 1; }");
        let e = enumerate(&f, &Target::default(), &Config::default());
        assert!(e.outcome.is_complete());
        // `return 1` emits t0=1; RET t0 — instruction selection folds it,
        // and a couple of phases interact; the space stays tiny.
        assert!(e.space.len() >= 2);
        assert!(e.space.len() < 20, "space unexpectedly large: {}", e.space.len());
        assert!(e.space.leaf_count() >= 1);
    }

    #[test]
    fn space_is_deterministic() {
        let f = compile_fn("int f(int a, int b) { return a * b + a; }");
        let t = Target::default();
        let e1 = enumerate(&f, &t, &Config::default());
        let e2 = enumerate(&f, &t, &Config::default());
        assert_eq!(e1.space.len(), e2.space.len());
        assert_eq!(e1.stats.attempted_phases, e2.stats.attempted_phases);
        assert_eq!(e1.space.leaf_count(), e2.space.leaf_count());
    }

    #[test]
    fn attempted_far_exceeds_instances() {
        let f = compile_fn(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
        );
        let e = enumerate(&f, &Target::default(), &Config::default());
        assert!(e.outcome.is_complete());
        // The central observation of the paper: attempts dwarf instances.
        assert!(e.stats.attempted_phases as usize > 3 * e.space.len());
        assert!(e.space.leaf_count() >= 1);
        assert!(e.space.max_active_sequence_length() >= 3);
    }

    #[test]
    fn naive_replay_explores_identical_space_at_higher_cost() {
        let f = compile_fn("int f(int a) { return a * 4 + 2; }");
        let t = Target::default();
        let fast = enumerate(&f, &t, &Config::default());
        let slow =
            enumerate(&f, &t, &Config { replay: ReplayMode::NaiveReplay, ..Config::default() });
        assert_eq!(fast.space.len(), slow.space.len());
        assert_eq!(fast.stats.attempted_phases, slow.stats.attempted_phases);
        assert!(
            slow.stats.phases_applied > fast.stats.phases_applied,
            "naive replay must apply more phases: {} vs {}",
            slow.stats.phases_applied,
            fast.stats.phases_applied
        );
    }

    #[test]
    fn paranoid_mode_sees_no_collisions() {
        let f = compile_fn("int f(int a, int b) { if (a > b) return a - b; return b - a; }");
        let e = enumerate(&f, &Target::default(), &Config { paranoid: true, ..Config::default() });
        assert_eq!(e.stats.collisions, 0);
    }

    #[test]
    fn level_cap_reports_too_big() {
        let f = compile_fn(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i * i; return s; }",
        );
        let e =
            enumerate(&f, &Target::default(), &Config { max_level_width: 1, ..Config::default() });
        assert!(matches!(e.outcome, SearchOutcome::TooBig { .. }));
    }

    #[test]
    fn max_nodes_cap_is_never_exceeded() {
        let f = compile_fn(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i * i; return s; }",
        );
        for cap in [1usize, 3, 10] {
            let config = Config { max_nodes: cap, ..Config::default() };
            let e = enumerate(&f, &Target::default(), &config);
            assert!(matches!(e.outcome, SearchOutcome::TooBig { .. }), "cap {cap}");
            assert!(e.space.len() <= cap, "cap {cap} overshot: space has {} nodes", e.space.len());
            // The truncation point is deterministic, so the parallel
            // engine must land on the very same partial space.
            let p = enumerate(&f, &Target::default(), &Config { jobs: 4, ..config });
            assert_eq!(p.space.len(), e.space.len(), "cap {cap}");
            assert_eq!(p.stats.attempted_phases, e.stats.attempted_phases, "cap {cap}");
        }
    }

    #[test]
    fn parallel_matches_serial_on_all_counters() {
        let f = compile_fn(
            "int f(int a, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += a * i; return s; }",
        );
        let t = Target::default();
        let serial = enumerate(&f, &t, &Config::default());
        for jobs in [1usize, 2, 3, 8] {
            let par = enumerate(&f, &t, &Config { jobs, ..Config::default() });
            assert_eq!(par.space.len(), serial.space.len(), "jobs={jobs}");
            assert_eq!(par.space.leaf_count(), serial.space.leaf_count(), "jobs={jobs}");
            assert_eq!(par.stats.attempted_phases, serial.stats.attempted_phases);
            assert_eq!(par.stats.active_attempts, serial.stats.active_attempts);
            assert_eq!(par.stats.phases_applied, serial.stats.phases_applied);
            for (id, n) in serial.space.iter() {
                let m = par.space.node(id);
                assert_eq!(m.fp, n.fp, "jobs={jobs} node {id}");
                assert_eq!(m.active_mask, n.active_mask, "jobs={jobs} node {id}");
                assert_eq!(m.children, n.children, "jobs={jobs} node {id}");
                assert_eq!(m.weight, n.weight, "jobs={jobs} node {id}");
                assert_eq!(m.level, n.level, "jobs={jobs} node {id}");
            }
        }
    }

    #[test]
    fn parallel_paranoid_sees_no_collisions() {
        let f = compile_fn("int f(int a, int b) { if (a > b) return a - b; return b - a; }");
        let e = enumerate(
            &f,
            &Target::default(),
            &Config { paranoid: true, jobs: 4, ..Config::default() },
        );
        assert_eq!(e.stats.collisions, 0);
    }

    #[test]
    fn jobs_per_cpu_reports_at_least_one_worker() {
        assert!(jobs_per_cpu() >= 1);
    }

    #[test]
    fn telemetry_counters_track_the_search() {
        // The global registry accumulates across concurrent tests, so
        // assert on deltas of monotone counters only.
        let tm = crate::telemetry::global();
        let before = (tm.searches.get(), tm.nodes_inserted.get(), tm.phases_attempted.get());
        let f = compile_fn("int f(int a) { return a * 4 + 2; }");
        let e = enumerate(&f, &Target::default(), &Config::default());
        assert!(tm.searches.get() > before.0);
        assert!(tm.nodes_inserted.get() >= before.1 + e.space.len() as u64);
        assert!(tm.phases_attempted.get() >= before.2 + e.stats.attempted_phases);
        assert!(tm.peak_frontier.get() >= 1);
    }

    #[test]
    fn root_weight_counts_distinct_sequences() {
        let f = compile_fn("int f(int a) { return a + 0 + a; }");
        let e = enumerate(&f, &Target::default(), &Config::default());
        let root_w = e.space.node(e.space.root()).weight;
        assert!(root_w >= 1);
        // Weight of the root cannot be smaller than the number of leaves.
        assert!(root_w >= e.space.leaf_count() as u64);
    }

    /// The adversarial base-battery collision driven through the *real*
    /// merge path: a fingerprint-fresh candidate whose signature matches
    /// an established class but whose extended-battery behavior differs.
    /// Paranoid escalation must keep it a distinct node and tick both
    /// `SearchStats::sem_collisions` and the `sem_sig_collisions`
    /// telemetry counter; without escalation the same records merge.
    #[test]
    fn merge_path_escalation_rejects_adversarial_collision() {
        let program = vpo_frontend::compile(
            "int f(int a) { if (a > 3000000) return a + 7; return a + 1; }
             int g(int a) { if (a > 3000000) return a + 9; return a + 1; }",
        )
        .unwrap();
        let f = program.function("f").unwrap();
        let g = program.function("g").unwrap();
        let sem_config = SemanticConfig::default();
        for paranoid in [true, false] {
            let config = Config { paranoid, ..Config::default() };
            let mut space = SearchSpace::new();
            let mut stats = SearchStats::default();
            let mut paranoid_bytes = HashMap::new();
            let root = seed_root(&mut space, &mut paranoid_bytes, &config, f);
            let root_func = Arc::new(f.clone());
            let mut sem = SemanticContext::new(&program, f, &sem_config, paranoid);
            let sig = sem.signature(f);
            sem.register(sig, root, &root_func);
            // Fabricate the attempt record a worker would have produced
            // had some phase transformed `f` into `g`.
            let record = AttemptRecord::Active {
                phase: PhaseId::Cse,
                fp: canon::fingerprint(g),
                flags: g.flags,
                inst_count: g.inst_count() as u32,
                cf_sig: control_flow_signature(g),
                func: Some(g.clone()),
                bytes: config.paranoid.then(|| canon::canonical_bytes(g)),
            };
            let parent = FrontierEntry { id: root, func: root_func, seq: Vec::new() };
            let mut next = Vec::new();
            let tm = crate::telemetry::global();
            let collisions_before = tm.sem_sig_collisions.get();
            assert!(merge_parent(
                &mut space,
                &mut stats,
                &mut paranoid_bytes,
                &config,
                &Target::default(),
                1,
                &parent,
                vec![record],
                &mut next,
                Some(&mut sem),
            ));
            // Either way the candidate is inserted and would be expanded
            // — the tiers never disagree on the space itself.
            assert_eq!(space.len(), 2);
            assert_eq!(next.len(), 1);
            let inserted = NodeId(1);
            if paranoid {
                // Escalated, refuted: the collision founds its own class.
                assert_eq!(stats.sem_collisions, 1);
                assert_eq!(stats.sem_escalations, 1);
                assert_eq!(stats.sem_merges, 0);
                assert_eq!(space.sem_edge_count(), 0);
                assert_eq!(space.sem_rep(inserted), inserted);
                assert_eq!(space.sem_class_count(), 2);
                assert!(tm.sem_sig_collisions.get() > collisions_before);
            } else {
                // The very merge paranoid mode just rejected: annotated
                // as behaviorally equal to the root.
                assert_eq!(stats.sem_collisions, 0);
                assert_eq!(stats.sem_merges, 1);
                assert_eq!(space.sem_edge_count(), 1);
                assert_eq!(space.sem_rep(inserted), root);
                assert_eq!(space.sem_class_count(), 1);
            }
        }
    }

    /// The pruned tier against the annotation tier on a real function:
    /// the space can only shrink, every prune is book-kept consistently,
    /// and — the soundness claim the audit checks — the code-size
    /// optimum is never lost, even though whole signature classes
    /// reachable only through pruned subtrees legitimately disappear
    /// (that loss is what `vpoc audit-quotient` quantifies).
    #[test]
    fn pruned_tier_shrinks_the_space_without_losing_the_optimum() {
        let program = vpo_frontend::compile(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i * 2; return s; }",
        )
        .unwrap();
        let f = program.function("f").unwrap();
        let t = Target::default();
        let config = Config::default();
        let sem_config = SemanticConfig::default();
        let ann = enumerate_semantic(&program, f, &t, &config, &sem_config);
        let pruned = enumerate_semantic_pruned(&program, f, &t, &config, &sem_config);
        assert!(ann.outcome.is_complete() && pruned.outcome.is_complete());
        assert!(pruned.space.len() <= ann.space.len());
        assert_eq!(pruned.space.pruned_count() as u64, pruned.stats.sem_prunes);
        assert_eq!(
            pruned.stats.sem_merges,
            pruned.stats.sem_prunes + pruned.stats.sem_mask_fallbacks
        );
        assert_eq!(ann.stats.sem_prunes, 0, "annotation tier never prunes");
        assert_eq!(ann.stats.sem_mask_fallbacks, 0);
        assert!(pruned.stats.sem_prunes > 0, "this kernel must actually prune");
        // The pruned run explores a subset of the same deterministic
        // search, so it can only see a subset of the signature classes.
        assert!(pruned.space.sem_class_count() <= ann.space.sem_class_count());
        // The soundness property: the code-size optimum over all
        // discovered instances survives (stopping early is a valid
        // ordering, so the optimum ranges over every node; the pruned
        // search explores a sub-DAG, so its minimum can only drift up).
        let ab = ann.space.code_size_range().map(|(lo, _)| lo);
        let pb = pruned.space.code_size_range().map(|(lo, _)| lo);
        assert_eq!(ab, pb, "pruning must not lose the code-size optimum");
    }

    #[test]
    fn pruned_tier_is_deterministic_across_job_counts() {
        let program = vpo_frontend::compile(
            "int f(int a, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += a * i; return s; }",
        )
        .unwrap();
        let f = program.function("f").unwrap();
        let t = Target::default();
        let sem_config = SemanticConfig::default();
        let serial = enumerate_semantic_pruned(&program, f, &t, &Config::default(), &sem_config);
        for jobs in [2usize, 8] {
            let par = enumerate_semantic_pruned(
                &program,
                f,
                &t,
                &Config { jobs, ..Config::default() },
                &sem_config,
            );
            assert_eq!(par.space.len(), serial.space.len(), "jobs={jobs}");
            assert_eq!(par.stats.sem_prunes, serial.stats.sem_prunes, "jobs={jobs}");
            assert_eq!(par.stats.sem_mask_fallbacks, serial.stats.sem_mask_fallbacks);
            assert_eq!(par.space.sem_class_count(), serial.space.sem_class_count());
            for (id, n) in serial.space.iter() {
                let m = par.space.node(id);
                assert_eq!(m.fp, n.fp, "jobs={jobs} node {id}");
                assert_eq!(m.pruned, n.pruned, "jobs={jobs} node {id}");
                assert_eq!(m.children, n.children, "jobs={jobs} node {id}");
                assert_eq!(m.pruned_children, n.pruned_children, "jobs={jobs} node {id}");
            }
        }
    }

    #[test]
    fn sequence_letters_renders() {
        assert_eq!(
            sequence_letters(&[PhaseId::InsnSelect, PhaseId::RegAlloc, PhaseId::Cse]),
            "skc"
        );
    }
}
