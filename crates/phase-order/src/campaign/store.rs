//! The on-disk campaign result store.
//!
//! A store is a single binary file holding one record per fully explored
//! function. The format is in-tree (no serde) and versioned:
//!
//! ```text
//! header:  magic "VPOC" | version u32 | config echo | record count u32
//! record:  payload length u32 | payload | CRC-32(payload) u32
//! payload: name | outcome | Table-3 statistics | search counters |
//!          per-phase activity counts | optimal (code-size) sequence
//! ```
//!
//! All integers are little-endian. The *config echo* freezes every
//! [`Config`] field that influences results (`max_nodes`,
//! `max_level_width`, replay mode, the Figure 2 shortcut, paranoid
//! mode — but not `jobs`, which never changes results): a resumed
//! campaign refuses a store written under different bounds, because its
//! records would not be byte-identical to an uninterrupted run under the
//! new bounds.
//!
//! Writers never append: [`ResultStore::save`] rewrites the whole file
//! through a temporary sibling and an atomic rename, with records in
//! campaign task order. A campaign checkpoints after every completed
//! function, so the file on disk is always a valid store whose record
//! set is exactly the completed subset — interrupting a campaign at any
//! point (including `SIGKILL`) and resuming it therefore converges on a
//! store byte-identical to an uninterrupted run's.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

use vpo_opt::PhaseId;
use vpo_rtl::crc;
use vpo_rtl::Function;

use crate::enumerate::{Config, Enumeration, ReplayMode};
use crate::semantic::SemanticConfig;
use crate::stats::FunctionRow;

/// File magic: the first four bytes of every store.
pub const MAGIC: [u8; 4] = *b"VPOC";

/// Current format version. Version 2 added the semantic merge tier:
/// the config echo grew the tier flag and its battery parameters, and
/// records grew the `sem_merges` / `sem_collisions` / `sem_escalations`
/// counters. Version-1 stores still load ([`ResultStore::from_bytes`]
/// reads both) — the new fields default to the fingerprint tier's
/// values (off / zero), which is exactly what every v1 store was
/// produced under.
pub const VERSION: u32 = 2;

/// Why a store could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file is not a store, is truncated, or fails a CRC check.
    Corrupt(String),
    /// The store was written under different enumeration bounds than the
    /// campaign now runs with.
    ConfigMismatch(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::ConfigMismatch(msg) => write!(f, "store config mismatch: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The result-affecting subset of the enumeration [`Config`], echoed in
/// the store header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConfigEcho {
    /// [`Config::max_nodes`].
    pub max_nodes: u64,
    /// [`Config::max_level_width`].
    pub max_level_width: u64,
    /// [`Config::replay`] (`0` = prefix sharing, `1` = naive replay).
    pub replay: u8,
    /// [`Config::skip_just_applied`].
    pub skip_just_applied: bool,
    /// [`Config::paranoid`].
    pub paranoid: bool,
    /// Whether the semantic merge tier was on (`--merge-tier semantic`).
    pub semantic: bool,
    /// [`SemanticConfig::battery`] (`0` when the tier is off).
    pub sem_battery: u32,
    /// [`SemanticConfig::seed`] (`0` when the tier is off).
    pub sem_seed: u64,
    /// [`SemanticConfig::fuel`] (`0` when the tier is off).
    pub sem_fuel: u64,
}

impl ConfigEcho {
    /// Projects a full enumeration config (and the semantic tier's
    /// options, when that tier is on) onto its echoed subset.
    pub fn of(config: &Config, semantic: Option<&SemanticConfig>) -> ConfigEcho {
        ConfigEcho {
            max_nodes: config.max_nodes as u64,
            max_level_width: config.max_level_width as u64,
            replay: match config.replay {
                ReplayMode::PrefixSharing => 0,
                ReplayMode::NaiveReplay => 1,
            },
            skip_just_applied: config.skip_just_applied,
            paranoid: config.paranoid,
            semantic: semantic.is_some(),
            sem_battery: semantic.map_or(0, |s| s.battery as u32),
            sem_seed: semantic.map_or(0, |s| s.seed),
            sem_fuel: semantic.map_or(0, |s| s.fuel),
        }
    }
}

/// One fully explored function: everything `vpoc campaign` needs to
/// render its Table-3 row again without re-enumerating, plus the raw
/// per-phase activity counts and the code-size-optimal sequence.
///
/// Statistics fields hold the values measured over the (possibly
/// partial) space; [`FunctionRecord::to_row`] maps them to the paper's
/// `N/A` convention when `complete` is false.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionRecord {
    /// Campaign-qualified function name (e.g. `sha::sha_transform`).
    pub name: String,
    /// Whether the enumeration ran to completion.
    pub complete: bool,
    /// Level at which a bound truncated the search (`0` when complete).
    pub truncated_level: u32,
    /// Instructions in the unoptimized function.
    pub insts: u32,
    /// Basic blocks in the unoptimized function.
    pub blocks: u32,
    /// Transfers of control in the unoptimized function.
    pub branches: u32,
    /// Natural loops in the unoptimized function.
    pub loops: u32,
    /// Distinct function instances.
    pub fn_instances: u64,
    /// Leaf instances.
    pub leaves: u64,
    /// Distinct control flows.
    pub control_flows: u64,
    /// Largest active phase sequence length.
    pub max_seq_len: u32,
    /// Smallest leaf instruction count (`0` when there are no leaves).
    pub code_min: u32,
    /// Largest leaf instruction count (`0` when there are no leaves).
    pub code_max: u32,
    /// Phases attempted, including dormant ones.
    pub attempted_phases: u64,
    /// Attempts that were active.
    pub active_attempts: u64,
    /// Phase applications, including replay overhead.
    pub phases_applied: u64,
    /// Fingerprint collisions (paranoid mode; expected 0).
    pub collisions: u64,
    /// Fingerprint-fresh instances merged by the semantic tier (0 under
    /// the fingerprint tier and in version-1 stores).
    pub sem_merges: u64,
    /// Signature hits rejected by paranoid escalation (expected 0).
    pub sem_collisions: u64,
    /// Signature hits escalated to the extended battery.
    pub sem_escalations: u64,
    /// `active_counts[p]` = instances `PhaseId::from_index(p)` is active
    /// on.
    pub active_counts: [u64; PhaseId::COUNT],
    /// Discovery sequence of the code-size-optimal leaf, in letter
    /// notation (empty when the space has no leaves).
    pub best_sequence: String,
    /// Instruction count of that optimal leaf (`0` when none).
    pub best_insts: u32,
}

impl FunctionRecord {
    /// Builds a record from a completed (or truncated) enumeration.
    pub fn from_enumeration(name: impl Into<String>, f: &Function, e: &Enumeration) -> Self {
        use crate::enumerate::SearchOutcome;
        let cfg = vpo_rtl::cfg::Cfg::build(f);
        let (code_min, code_max) = e.space.leaf_code_size_range().unwrap_or((0, 0));
        let (best_sequence, best_insts) = match e.space.best_leaf() {
            Some(leaf) => (
                e.space.discovery_sequence(leaf).iter().map(|p| p.letter()).collect(),
                e.space.node(leaf).inst_count,
            ),
            None => (String::new(), 0),
        };
        FunctionRecord {
            name: name.into(),
            complete: e.outcome.is_complete(),
            truncated_level: match e.outcome {
                SearchOutcome::Complete => 0,
                SearchOutcome::TooBig { level } => level,
            },
            insts: f.inst_count() as u32,
            blocks: f.blocks.len() as u32,
            branches: f.branch_count() as u32,
            loops: vpo_rtl::loops::loop_count(&cfg) as u32,
            fn_instances: e.space.len() as u64,
            leaves: e.space.leaf_count() as u64,
            control_flows: e.space.distinct_control_flows() as u64,
            max_seq_len: e.space.max_active_sequence_length(),
            code_min,
            code_max,
            attempted_phases: e.stats.attempted_phases,
            active_attempts: e.stats.active_attempts,
            phases_applied: e.stats.phases_applied,
            collisions: e.stats.collisions,
            sem_merges: e.stats.sem_merges,
            sem_collisions: e.stats.sem_collisions,
            sem_escalations: e.stats.sem_escalations,
            active_counts: e.space.phase_active_counts(),
            best_sequence,
            best_insts,
        }
    }

    /// Renders the record as a Table-3 row, mapping truncated searches to
    /// the paper's `N/A` columns exactly as live enumeration does.
    pub fn to_row(&self) -> FunctionRow {
        let c = self.complete;
        let has_leaves = self.leaves > 0;
        FunctionRow {
            name: self.name.clone(),
            insts: self.insts as usize,
            blocks: self.blocks as usize,
            branches: self.branches as usize,
            loops: self.loops as usize,
            fn_instances: c.then_some(self.fn_instances as usize),
            attempted_phases: c.then_some(self.attempted_phases),
            max_seq_len: c.then_some(self.max_seq_len),
            control_flows: c.then_some(self.control_flows as usize),
            leaves: c.then_some(self.leaves as usize),
            code_max: (c && has_leaves).then_some(self.code_max),
            code_min: (c && has_leaves).then_some(self.code_min),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        out.push(self.complete as u8);
        put_u32(out, self.truncated_level);
        for v in [self.insts, self.blocks, self.branches, self.loops] {
            put_u32(out, v);
        }
        for v in [self.fn_instances, self.leaves, self.control_flows] {
            put_u64(out, v);
        }
        put_u32(out, self.max_seq_len);
        put_u32(out, self.code_min);
        put_u32(out, self.code_max);
        for v in [self.attempted_phases, self.active_attempts, self.phases_applied, self.collisions]
        {
            put_u64(out, v);
        }
        for v in [self.sem_merges, self.sem_collisions, self.sem_escalations] {
            put_u64(out, v);
        }
        out.push(PhaseId::COUNT as u8);
        for &c in &self.active_counts {
            put_u64(out, c);
        }
        put_str(out, &self.best_sequence);
        put_u32(out, self.best_insts);
    }

    fn decode(r: &mut Reader<'_>, version: u32) -> Result<FunctionRecord, StoreError> {
        let name = r.str()?;
        let complete = r.u8()? != 0;
        let truncated_level = r.u32()?;
        let [insts, blocks, branches, loops] = [r.u32()?, r.u32()?, r.u32()?, r.u32()?];
        let [fn_instances, leaves, control_flows] = [r.u64()?, r.u64()?, r.u64()?];
        let max_seq_len = r.u32()?;
        let code_min = r.u32()?;
        let code_max = r.u32()?;
        let [attempted_phases, active_attempts, phases_applied, collisions] =
            [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        // Version-1 records predate the semantic tier; they were all
        // produced with it off, so zero is the faithful value.
        let [sem_merges, sem_collisions, sem_escalations] =
            if version >= 2 { [r.u64()?, r.u64()?, r.u64()?] } else { [0, 0, 0] };
        let n = r.u8()? as usize;
        if n != PhaseId::COUNT {
            return Err(StoreError::Corrupt(format!(
                "record `{name}` carries {n} phase counts, compiler has {}",
                PhaseId::COUNT
            )));
        }
        let mut active_counts = [0u64; PhaseId::COUNT];
        for c in &mut active_counts {
            *c = r.u64()?;
        }
        let best_sequence = r.str()?;
        let best_insts = r.u32()?;
        Ok(FunctionRecord {
            name,
            complete,
            truncated_level,
            insts,
            blocks,
            branches,
            loops,
            fn_instances,
            leaves,
            control_flows,
            max_seq_len,
            code_min,
            code_max,
            attempted_phases,
            active_attempts,
            phases_applied,
            collisions,
            sem_merges,
            sem_collisions,
            sem_escalations,
            active_counts,
            best_sequence,
            best_insts,
        })
    }
}

/// An in-memory store: the config echo plus records in campaign task
/// order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResultStore {
    /// Enumeration bounds the records were produced under.
    pub config: ConfigEcho,
    /// Per-function records, in campaign task order.
    pub records: Vec<FunctionRecord>,
}

impl ResultStore {
    /// An empty store for the given enumeration config (and semantic
    /// tier options, when that tier is on).
    pub fn new(config: &Config, semantic: Option<&SemanticConfig>) -> ResultStore {
        ResultStore { config: ConfigEcho::of(config, semantic), records: Vec::new() }
    }

    /// Serializes the store. The encoding is a pure function of the
    /// contents: equal stores produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, self.config.max_nodes);
        put_u64(&mut out, self.config.max_level_width);
        out.push(self.config.replay);
        out.push(self.config.skip_just_applied as u8);
        out.push(self.config.paranoid as u8);
        out.push(self.config.semantic as u8);
        put_u32(&mut out, self.config.sem_battery);
        put_u64(&mut out, self.config.sem_seed);
        put_u64(&mut out, self.config.sem_fuel);
        put_u32(&mut out, self.records.len() as u32);
        for rec in &self.records {
            let mut payload = Vec::new();
            rec.encode(&mut payload);
            put_u32(&mut out, payload.len() as u32);
            out.extend_from_slice(&payload);
            put_u32(&mut out, crc::crc32(&payload));
        }
        out
    }

    /// Parses a store, validating magic, version, per-record lengths and
    /// CRCs, and that no bytes trail the last record.
    pub fn from_bytes(bytes: &[u8]) -> Result<ResultStore, StoreError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt("bad magic (not a campaign store)".into()));
        }
        let version = r.u32()?;
        if version != 1 && version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "format version {version}, this build reads 1..={VERSION}"
            )));
        }
        let mut config = ConfigEcho {
            max_nodes: r.u64()?,
            max_level_width: r.u64()?,
            replay: r.u8()?,
            skip_just_applied: r.u8()? != 0,
            paranoid: r.u8()? != 0,
            // Version-1 stores predate the semantic tier; it was off.
            semantic: false,
            sem_battery: 0,
            sem_seed: 0,
            sem_fuel: 0,
        };
        if version >= 2 {
            config.semantic = r.u8()? != 0;
            config.sem_battery = r.u32()?;
            config.sem_seed = r.u64()?;
            config.sem_fuel = r.u64()?;
        }
        let count = r.u32()? as usize;
        let mut records = Vec::with_capacity(count.min(1024));
        for i in 0..count {
            let len = r.u32()? as usize;
            let payload = r.take(len)?;
            let crc_stored = r.u32()?;
            if crc::crc32(payload) != crc_stored {
                return Err(StoreError::Corrupt(format!("record {i}: CRC mismatch")));
            }
            let mut pr = Reader { bytes: payload, pos: 0 };
            let rec = FunctionRecord::decode(&mut pr, version)?;
            if pr.pos != payload.len() {
                return Err(StoreError::Corrupt(format!(
                    "record {i} (`{}`): {} unparsed payload bytes",
                    rec.name,
                    payload.len() - pr.pos
                )));
            }
            records.push(rec);
        }
        if r.pos != bytes.len() {
            return Err(StoreError::Corrupt(format!(
                "{} bytes trail the last record",
                bytes.len() - r.pos
            )));
        }
        Ok(ResultStore { config, records })
    }

    /// Reads a store from disk.
    pub fn load(path: &Path) -> Result<ResultStore, StoreError> {
        let bytes = std::fs::read(path)?;
        ResultStore::from_bytes(&bytes)
    }

    /// Writes the store atomically: the bytes go to a `.tmp` sibling
    /// first, then an atomic rename replaces the store, so a reader (or
    /// a resumed campaign) never observes a half-written file.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = match path.file_name() {
            Some(name) => {
                let mut n = name.to_os_string();
                n.push(".tmp");
                path.with_file_name(n)
            }
            None => {
                return Err(StoreError::Io(std::io::Error::other("store path has no file name")))
            }
        };
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Checks that `config` (and the semantic tier selection) matches
    /// the bounds this store was written under (resume safety).
    pub fn check_config(
        &self,
        config: &Config,
        semantic: Option<&SemanticConfig>,
    ) -> Result<(), StoreError> {
        let now = ConfigEcho::of(config, semantic);
        if self.config != now {
            return Err(StoreError::ConfigMismatch(format!(
                "store written under {:?}, campaign running with {:?}; \
                 re-run with matching bounds or remove the store",
                self.config, now
            )));
        }
        Ok(())
    }

    /// Looks up a record by its campaign-qualified name.
    pub fn find(&self, name: &str) -> Option<&FunctionRecord> {
        self.records.iter().find(|r| r.name == name)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "name too long for store format");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Bounds-checked little-endian cursor over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StoreError::Corrupt("unexpected end of file".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("non-UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(name: &str, seed: u64) -> FunctionRecord {
        let mut active_counts = [0u64; PhaseId::COUNT];
        for (i, c) in active_counts.iter_mut().enumerate() {
            *c = seed.wrapping_mul(i as u64 + 1) % 97;
        }
        FunctionRecord {
            name: name.to_owned(),
            complete: seed.is_multiple_of(2),
            truncated_level: if seed.is_multiple_of(2) { 0 } else { seed as u32 % 9 + 1 },
            insts: 40 + seed as u32,
            blocks: 7,
            branches: 5,
            loops: 1,
            fn_instances: 1000 + seed,
            leaves: 12,
            control_flows: 3,
            max_seq_len: 14,
            code_min: 21,
            code_max: 35,
            attempted_phases: 123_456 + seed,
            active_attempts: 4_321,
            phases_applied: 123_456 + seed,
            collisions: 0,
            sem_merges: seed * 3,
            sem_collisions: 0,
            sem_escalations: seed * 3,
            active_counts,
            best_sequence: "skcshu".to_owned(),
            best_insts: 21,
        }
    }

    fn sample_store() -> ResultStore {
        let mut s = ResultStore::new(&Config::default(), None);
        s.records.push(sample_record("bitcount::bit_count", 2));
        s.records.push(sample_record("sha::sha_transform", 5));
        s
    }

    #[test]
    fn roundtrip_is_lossless_and_stable() {
        let s = sample_store();
        let bytes = s.to_bytes();
        assert_eq!(bytes, s.to_bytes(), "encoding must be deterministic");
        let back = ResultStore::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), bytes, "re-encoding must be byte-identical");
        assert!(back.find("sha::sha_transform").is_some());
        assert!(back.find("nope").is_none());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample_store().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                matches!(ResultStore::from_bytes(&bytes[..cut]), Err(StoreError::Corrupt(_))),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_crc() {
        let good = sample_store().to_bytes();
        // Flip one byte inside each record's payload region.
        let header = 4 + 4 + 8 + 8 + 3 + 1 + 4 + 8 + 8 + 4;
        for offset in [header + 4 + 2, good.len() - 8] {
            let mut bad = good.clone();
            bad[offset] ^= 0x40;
            match ResultStore::from_bytes(&bad) {
                Err(StoreError::Corrupt(msg)) => {
                    assert!(msg.contains("CRC"), "offset {offset}: {msg}")
                }
                other => panic!("offset {offset}: corruption not caught: {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes.push(0);
        assert!(matches!(ResultStore::from_bytes(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(ResultStore::from_bytes(&bytes), Err(StoreError::Corrupt(_))));
        let mut bytes = sample_store().to_bytes();
        bytes[4] = 99;
        let err = ResultStore::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn config_echo_gates_resume() {
        let s = sample_store();
        s.check_config(&Config::default(), None).unwrap();
        let other = Config { max_nodes: 7, ..Config::default() };
        assert!(matches!(s.check_config(&other, None), Err(StoreError::ConfigMismatch(_))));
        // Switching merge tiers between runs also refuses to resume.
        let sem = SemanticConfig::default();
        assert!(matches!(
            s.check_config(&Config::default(), Some(&sem)),
            Err(StoreError::ConfigMismatch(_))
        ));
    }

    #[test]
    fn version_1_stores_still_load() {
        // A store produced by the pre-semantic-tier build (format
        // version 1), checked in as a fixture. The new fields must
        // default to the fingerprint tier's values: tier off, all
        // semantic counters zero.
        let bytes: &[u8] = include_bytes!("../../../../tests/fixtures/campaign_store_v1.bin");
        let s = ResultStore::from_bytes(bytes).expect("v1 store must load");
        assert!(!s.config.semantic);
        assert_eq!((s.config.sem_battery, s.config.sem_seed, s.config.sem_fuel), (0, 0, 0));
        assert_eq!(s.records.len(), 9, "bitcount campaign explores 9 functions");
        for rec in &s.records {
            assert_eq!(
                (rec.sem_merges, rec.sem_collisions, rec.sem_escalations),
                (0, 0, 0),
                "record `{}` predates the semantic tier",
                rec.name
            );
        }
        // A v1 store resumes under the matching v2 config (fingerprint
        // tier), since the echoed subset is identical.
        s.check_config(&Config::default(), None).unwrap();
    }

    #[test]
    fn save_is_atomic_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("vpoc_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.store");
        let s = sample_store();
        s.save(&path).unwrap();
        assert!(!path.with_file_name("campaign.store.tmp").exists(), "tmp file left behind");
        assert_eq!(ResultStore::load(&path).unwrap(), s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_to_row_respects_na_convention() {
        let mut rec = sample_record("f", 2);
        assert!(rec.complete);
        let row = rec.to_row();
        assert_eq!(row.fn_instances, Some(rec.fn_instances as usize));
        assert_eq!(row.code_min, Some(21));
        rec.complete = false;
        let row = rec.to_row();
        assert_eq!(row.fn_instances, None);
        assert_eq!(row.code_min, None);
        assert!(row.render().contains("N/A"));
    }
}
