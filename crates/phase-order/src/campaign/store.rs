//! The on-disk campaign result store.
//!
//! A store is a single binary file holding one record per explored
//! function. The format is in-tree (no serde) and versioned:
//!
//! ```text
//! header:  magic "VPOC" | version u32 | config echo | record count u32
//! record:  payload length u32 | payload | CRC-32(payload) u32
//! payload: name | outcome | Table-3 statistics | search counters |
//!          pruned-tier counters (v4) | per-phase activity counts |
//!          optimal (code-size) sequence |
//!          optional frontier checkpoint (v3)
//! ```
//!
//! All integers are little-endian ([`crate::wire`] holds the shared
//! helpers). The *config echo* freezes every [`Config`] field that
//! influences results (`max_nodes`, `max_level_width`, replay mode, the
//! Figure 2 shortcut, paranoid mode — but not `jobs`, which never
//! changes results): a resumed campaign refuses a store written under
//! different bounds, because its records would not be byte-identical to
//! an uninterrupted run under the new bounds.
//!
//! Writers never append: [`ResultStore::save`] rewrites the whole file
//! through a temporary sibling and an atomic rename, with records in
//! campaign task order. A campaign checkpoints after every completed
//! (or suspended) function, so the file on disk is always a valid store
//! whose record set is exactly the checkpointed subset — interrupting a
//! campaign at any point (including `SIGKILL`) and resuming it
//! therefore converges on a store byte-identical to an uninterrupted
//! run's.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

use vpo_opt::PhaseId;
use vpo_rtl::canon::Fingerprint;
use vpo_rtl::crc;
use vpo_rtl::{FuncFlags, Function};

use crate::enumerate::{Config, Enumeration, ReplayMode};
use crate::semantic::SemanticConfig;
use crate::space::{Node, NodeId};
use crate::stats::FunctionRow;
use crate::wire::{self, Reader, WireError};

/// File magic: the first four bytes of every store.
pub const MAGIC: [u8; 4] = *b"VPOC";

/// Current format version.
///
/// * Version 2 added the semantic merge tier: the config echo grew the
///   tier flag and its battery parameters, and records grew the
///   `sem_merges` / `sem_collisions` / `sem_escalations` counters.
/// * Version 3 added *frontier persistence* for partial exploration: a
///   record may end with a checkpoint of an incomplete enumeration's
///   level frontier ([`FrontierState`]), from which a later run resumes
///   expansion exactly where it stopped.
/// * Version 4 added the subsumption-pruned semantic tier
///   (`--merge-tier semantic-pruned`): the config echo grew the
///   `sem_pruned` flag (pruned-tier stores are distinct memo keys from
///   annotation-tier ones), records grew the `sem_prunes` /
///   `sem_mask_fallbacks` counters, and persisted nodes grew the
///   `pruned` flag and the `pruned_children` edge list.
///
/// Older stores still load ([`ResultStore::from_bytes`] reads
/// `1..=VERSION`) — missing fields default to the values every older
/// store was in fact produced under (semantic tier off, counters zero,
/// no frontier, no pruning).
pub const VERSION: u32 = 4;

/// Why a store could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file is not a store, is truncated, or fails a CRC check.
    Corrupt(String),
    /// The store was written under different enumeration bounds than the
    /// campaign now runs with.
    ConfigMismatch(String),
}

impl StoreError {
    /// Attaches the filesystem operation and offending path, so the
    /// error a CLI user finally sees names the file that failed.
    fn context(self, op: &str, path: &Path) -> StoreError {
        let at = format!("{op} {}", path.display());
        match self {
            StoreError::Io(e) => {
                let kind = e.kind();
                StoreError::Io(std::io::Error::new(kind, format!("{at}: {e}")))
            }
            StoreError::Corrupt(msg) => StoreError::Corrupt(format!("{at}: {msg}")),
            StoreError::ConfigMismatch(msg) => StoreError::ConfigMismatch(format!("{at}: {msg}")),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::ConfigMismatch(msg) => write!(f, "store config mismatch: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Corrupt(e.to_string())
    }
}

/// The result-affecting subset of the enumeration [`Config`], echoed in
/// the store header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConfigEcho {
    /// [`Config::max_nodes`].
    pub max_nodes: u64,
    /// [`Config::max_level_width`].
    pub max_level_width: u64,
    /// [`Config::replay`] (`0` = prefix sharing, `1` = naive replay).
    pub replay: u8,
    /// [`Config::skip_just_applied`].
    pub skip_just_applied: bool,
    /// [`Config::paranoid`].
    pub paranoid: bool,
    /// Whether the semantic merge tier was on (`--merge-tier semantic`
    /// or `semantic-pruned`).
    pub semantic: bool,
    /// [`SemanticConfig::battery`] (`0` when the tier is off).
    pub sem_battery: u32,
    /// [`SemanticConfig::seed`] (`0` when the tier is off).
    pub sem_seed: u64,
    /// [`SemanticConfig::fuel`] (`0` when the tier is off).
    pub sem_fuel: u64,
    /// Whether subsumption pruning was on (`--merge-tier
    /// semantic-pruned`). Pruned-tier spaces are genuinely smaller than
    /// annotation-tier ones, so the two tiers must never share a store
    /// (or a memo answer); echoing the flag makes them distinct keys.
    pub sem_pruned: bool,
}

impl ConfigEcho {
    /// Projects a full enumeration config (and the semantic tier's
    /// options, when that tier is on) onto its echoed subset.
    /// `sem_pruned` selects the subsumption-pruned variant of the
    /// semantic tier and must be `false` when `semantic` is `None`.
    pub fn of(config: &Config, semantic: Option<&SemanticConfig>, sem_pruned: bool) -> ConfigEcho {
        debug_assert!(semantic.is_some() || !sem_pruned, "pruning requires the semantic tier");
        ConfigEcho {
            max_nodes: config.max_nodes as u64,
            max_level_width: config.max_level_width as u64,
            replay: match config.replay {
                ReplayMode::PrefixSharing => 0,
                ReplayMode::NaiveReplay => 1,
            },
            skip_just_applied: config.skip_just_applied,
            paranoid: config.paranoid,
            semantic: semantic.is_some(),
            sem_battery: semantic.map_or(0, |s| s.battery as u32),
            sem_seed: semantic.map_or(0, |s| s.seed),
            sem_fuel: semantic.map_or(0, |s| s.fuel),
            sem_pruned,
        }
    }
}

/// One node of a checkpointed partial search space.
///
/// This is [`Node`] minus its `weight`: weights are only computed once
/// an enumeration completes, so mid-search every weight is zero and
/// persisting it would be noise. Re-inserting persisted nodes in id
/// order rebuilds the space bit-identically (ids are assigned
/// sequentially by [`crate::space::SearchSpace::insert`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PersistedNode {
    /// Canonical fingerprint of the instance.
    pub fp: Fingerprint,
    /// Phase-legality milestone flags.
    pub flags: FuncFlags,
    /// Discovery level.
    pub level: u32,
    /// Static instruction count.
    pub inst_count: u32,
    /// Control-flow shape signature.
    pub cf_sig: u64,
    /// Active-phase mask.
    pub active_mask: u16,
    /// Fingerprint edges `(phase, child id)`.
    pub children: Vec<(PhaseId, u32)>,
    /// Semantic-merge edges `(phase, representative id)`.
    pub sem_children: Vec<(PhaseId, u32)>,
    /// Subsumption-pruned edges `(phase, representative id)` — absent in
    /// pre-v4 stores, which no pruned-tier build could have written.
    pub pruned_children: Vec<(PhaseId, u32)>,
    /// Discovery edge `(parent id, phase)`; `None` for the root.
    pub discovered_from: Option<(u32, PhaseId)>,
    /// Whether this node was pruned by subsumption (never expanded).
    pub pruned: bool,
}

impl PersistedNode {
    /// Projects a live node for persistence.
    pub fn of(node: &Node) -> PersistedNode {
        PersistedNode {
            fp: node.fp,
            flags: node.flags,
            level: node.level,
            inst_count: node.inst_count,
            cf_sig: node.cf_sig,
            active_mask: node.active_mask,
            children: node.children.iter().map(|&(p, c)| (p, c.0)).collect(),
            sem_children: node.sem_children.iter().map(|&(p, c)| (p, c.0)).collect(),
            pruned_children: node.pruned_children.iter().map(|&(p, c)| (p, c.0)).collect(),
            discovered_from: node.discovered_from.map(|(p, ph)| (p.0, ph)),
            pruned: node.pruned,
        }
    }

    /// Rebuilds the live node (weight zero, as mid-search).
    pub fn to_node(&self) -> Node {
        Node {
            fp: self.fp,
            flags: self.flags,
            level: self.level,
            inst_count: self.inst_count,
            cf_sig: self.cf_sig,
            active_mask: self.active_mask,
            children: self.children.iter().map(|&(p, c)| (p, NodeId(c))).collect(),
            sem_children: self.sem_children.iter().map(|&(p, c)| (p, NodeId(c))).collect(),
            pruned_children: self.pruned_children.iter().map(|&(p, c)| (p, NodeId(c))).collect(),
            discovered_from: self.discovered_from.map(|(p, ph)| (NodeId(p), ph)),
            pruned: self.pruned,
            weight: 0,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_u32(out, self.fp.inst_count);
        wire::put_u64(out, self.fp.byte_sum);
        wire::put_u32(out, self.fp.crc);
        out.push(self.flags.regs_assigned as u8 | (self.flags.reg_allocated as u8) << 1);
        wire::put_u32(out, self.level);
        wire::put_u32(out, self.inst_count);
        wire::put_u64(out, self.cf_sig);
        wire::put_u16(out, self.active_mask);
        for edges in [&self.children, &self.sem_children, &self.pruned_children] {
            out.push(edges.len() as u8);
            for &(p, c) in edges {
                out.push(p.index() as u8);
                wire::put_u32(out, c);
            }
        }
        match self.discovered_from {
            Some((parent, phase)) => {
                out.push(1);
                wire::put_u32(out, parent);
                out.push(phase.index() as u8);
            }
            None => out.push(0),
        }
        out.push(self.pruned as u8);
    }

    fn decode(r: &mut Reader<'_>, version: u32) -> Result<PersistedNode, StoreError> {
        fn phase(b: u8) -> Result<PhaseId, StoreError> {
            if (b as usize) < PhaseId::COUNT {
                Ok(PhaseId::from_index(b as usize))
            } else {
                Err(StoreError::Corrupt(format!("phase index {b} out of range")))
            }
        }
        let fp = Fingerprint { inst_count: r.u32()?, byte_sum: r.u64()?, crc: r.u32()? };
        let flag_bits = r.u8()?;
        if flag_bits > 3 {
            return Err(StoreError::Corrupt(format!("invalid flag bits {flag_bits:#04x}")));
        }
        let flags =
            FuncFlags { regs_assigned: flag_bits & 1 != 0, reg_allocated: flag_bits & 2 != 0 };
        let level = r.u32()?;
        let inst_count = r.u32()?;
        let cf_sig = r.u64()?;
        let active_mask = r.u16()?;
        // Pre-v4 nodes carry two edge lists; v4 added pruned edges.
        let lists = if version >= 4 { 3 } else { 2 };
        let mut edge_lists = [Vec::new(), Vec::new(), Vec::new()];
        for edges in edge_lists.iter_mut().take(lists) {
            let n = r.u8()? as usize;
            for _ in 0..n {
                let p = phase(r.u8()?)?;
                edges.push((p, r.u32()?));
            }
        }
        let [children, sem_children, pruned_children] = edge_lists;
        let discovered_from = match r.bool()? {
            true => {
                let parent = r.u32()?;
                Some((parent, phase(r.u8()?)?))
            }
            false => None,
        };
        // No pre-v4 build pruned, so `false` is the faithful default.
        let pruned = if version >= 4 { r.bool()? } else { false };
        Ok(PersistedNode {
            fp,
            flags,
            level,
            inst_count,
            cf_sig,
            active_mask,
            children,
            sem_children,
            pruned_children,
            discovered_from,
            pruned,
        })
    }
}

/// Checkpoint of an incomplete enumeration, taken at a level boundary.
///
/// The deterministic level-order search only merges new instances at
/// level barriers, so a space snapshotted *between* barriers, together
/// with the ids of the instances awaiting expansion, is exactly the
/// state an uninterrupted run would pass through. Resuming from a
/// frontier therefore re-expands nothing and converges on a record
/// byte-identical to an uncapped run's. Function bodies are not
/// persisted: each frontier instance is rematerialized by replaying its
/// discovery sequence from the root.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FrontierState {
    /// Levels fully merged so far; the frontier instances sit at this
    /// level and their expansions will merge at `level + 1`.
    pub level: u32,
    /// Every node of the partial space, in id order.
    pub nodes: Vec<PersistedNode>,
    /// Ids of the instances awaiting expansion.
    pub frontier: Vec<u32>,
}

impl FrontierState {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_u32(out, self.level);
        wire::put_u32(out, self.nodes.len() as u32);
        for n in &self.nodes {
            n.encode(out);
        }
        wire::put_u32(out, self.frontier.len() as u32);
        for &id in &self.frontier {
            wire::put_u32(out, id);
        }
    }

    fn decode(r: &mut Reader<'_>, version: u32) -> Result<FrontierState, StoreError> {
        let level = r.u32()?;
        let count = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            nodes.push(PersistedNode::decode(r, version)?);
        }
        let flen = r.u32()? as usize;
        let mut frontier = Vec::with_capacity(flen.min(1024));
        for _ in 0..flen {
            let id = r.u32()?;
            if id as usize >= count {
                return Err(StoreError::Corrupt(format!(
                    "frontier id {id} out of range (space has {count} nodes)"
                )));
            }
            frontier.push(id);
        }
        if frontier.is_empty() {
            return Err(StoreError::Corrupt("frontier checkpoint with no frontier".into()));
        }
        Ok(FrontierState { level, nodes, frontier })
    }
}

/// One explored function: everything `vpoc campaign` needs to render
/// its Table-3 row again without re-enumerating, plus the raw per-phase
/// activity counts and the code-size-optimal sequence.
///
/// Statistics fields hold the values measured over the (possibly
/// partial) space; [`FunctionRecord::to_row`] maps them to the paper's
/// `N/A` convention when `complete` is false. An incomplete record
/// either carries a [`FrontierState`] (suspended under a budget —
/// resumable) or does not (truncated by `max_nodes`/`max_level_width` —
/// permanent under these bounds).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FunctionRecord {
    /// Campaign-qualified function name (e.g. `sha::sha_transform`).
    pub name: String,
    /// Whether the enumeration ran to completion.
    pub complete: bool,
    /// Level at which a bound truncated the search or a budget suspended
    /// it (`0` when complete).
    pub truncated_level: u32,
    /// Instructions in the unoptimized function.
    pub insts: u32,
    /// Basic blocks in the unoptimized function.
    pub blocks: u32,
    /// Transfers of control in the unoptimized function.
    pub branches: u32,
    /// Natural loops in the unoptimized function.
    pub loops: u32,
    /// Distinct function instances.
    pub fn_instances: u64,
    /// Leaf instances.
    pub leaves: u64,
    /// Distinct control flows.
    pub control_flows: u64,
    /// Largest active phase sequence length.
    pub max_seq_len: u32,
    /// Smallest leaf instruction count (`0` when there are no leaves).
    pub code_min: u32,
    /// Largest leaf instruction count (`0` when there are no leaves).
    pub code_max: u32,
    /// Phases attempted, including dormant ones.
    pub attempted_phases: u64,
    /// Attempts that were active.
    pub active_attempts: u64,
    /// Phase applications, including replay overhead.
    pub phases_applied: u64,
    /// Fingerprint collisions (paranoid mode; expected 0).
    pub collisions: u64,
    /// Fingerprint-fresh instances merged by the semantic tier (0 under
    /// the fingerprint tier and in version-1 stores).
    pub sem_merges: u64,
    /// Signature hits rejected by paranoid escalation (expected 0).
    pub sem_collisions: u64,
    /// Signature hits escalated to the extended battery.
    pub sem_escalations: u64,
    /// Behavioral merges whose subtree the pruned tier skipped entirely
    /// (0 under other tiers and in pre-v4 stores).
    pub sem_prunes: u64,
    /// Behavioral merges the pruned tier still expanded because the
    /// candidate's active-phase mask was not subsumed (0 under other
    /// tiers and in pre-v4 stores).
    pub sem_mask_fallbacks: u64,
    /// `active_counts[p]` = instances `PhaseId::from_index(p)` is active
    /// on.
    pub active_counts: [u64; PhaseId::COUNT],
    /// Discovery sequence of the code-size-optimal leaf, in letter
    /// notation (empty when the space has no leaves).
    pub best_sequence: String,
    /// Instruction count of that optimal leaf (`0` when none).
    pub best_insts: u32,
    /// Suspended-search checkpoint (`None` when complete or permanently
    /// truncated; absent in pre-v3 stores).
    pub frontier: Option<FrontierState>,
}

impl FunctionRecord {
    /// Builds a record from a completed (or truncated) enumeration.
    pub fn from_enumeration(name: impl Into<String>, f: &Function, e: &Enumeration) -> Self {
        use crate::enumerate::SearchOutcome;
        let cfg = vpo_rtl::cfg::Cfg::build(f);
        let (code_min, code_max) = e.space.leaf_code_size_range().unwrap_or((0, 0));
        let (best_sequence, best_insts) = match e.space.best_leaf() {
            Some(leaf) => (
                e.space.discovery_sequence(leaf).iter().map(|p| p.letter()).collect(),
                e.space.node(leaf).inst_count,
            ),
            None => (String::new(), 0),
        };
        FunctionRecord {
            name: name.into(),
            complete: e.outcome.is_complete(),
            truncated_level: match e.outcome {
                SearchOutcome::Complete => 0,
                SearchOutcome::TooBig { level } => level,
            },
            insts: f.inst_count() as u32,
            blocks: f.blocks.len() as u32,
            branches: f.branch_count() as u32,
            loops: vpo_rtl::loops::loop_count(&cfg) as u32,
            fn_instances: e.space.len() as u64,
            leaves: e.space.leaf_count() as u64,
            control_flows: e.space.distinct_control_flows() as u64,
            max_seq_len: e.space.max_active_sequence_length(),
            code_min,
            code_max,
            attempted_phases: e.stats.attempted_phases,
            active_attempts: e.stats.active_attempts,
            phases_applied: e.stats.phases_applied,
            collisions: e.stats.collisions,
            sem_merges: e.stats.sem_merges,
            sem_collisions: e.stats.sem_collisions,
            sem_escalations: e.stats.sem_escalations,
            sem_prunes: e.stats.sem_prunes,
            sem_mask_fallbacks: e.stats.sem_mask_fallbacks,
            active_counts: e.space.phase_active_counts(),
            best_sequence,
            best_insts,
            frontier: None,
        }
    }

    /// Renders the record as a Table-3 row, mapping truncated searches to
    /// the paper's `N/A` columns exactly as live enumeration does.
    pub fn to_row(&self) -> FunctionRow {
        let c = self.complete;
        let has_leaves = self.leaves > 0;
        FunctionRow {
            name: self.name.clone(),
            insts: self.insts as usize,
            blocks: self.blocks as usize,
            branches: self.branches as usize,
            loops: self.loops as usize,
            fn_instances: c.then_some(self.fn_instances as usize),
            attempted_phases: c.then_some(self.attempted_phases),
            max_seq_len: c.then_some(self.max_seq_len),
            control_flows: c.then_some(self.control_flows as usize),
            leaves: c.then_some(self.leaves as usize),
            code_max: (c && has_leaves).then_some(self.code_max),
            code_min: (c && has_leaves).then_some(self.code_min),
        }
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        wire::put_str(out, &self.name);
        out.push(self.complete as u8);
        wire::put_u32(out, self.truncated_level);
        for v in [self.insts, self.blocks, self.branches, self.loops] {
            wire::put_u32(out, v);
        }
        for v in [self.fn_instances, self.leaves, self.control_flows] {
            wire::put_u64(out, v);
        }
        wire::put_u32(out, self.max_seq_len);
        wire::put_u32(out, self.code_min);
        wire::put_u32(out, self.code_max);
        for v in [self.attempted_phases, self.active_attempts, self.phases_applied, self.collisions]
        {
            wire::put_u64(out, v);
        }
        for v in [self.sem_merges, self.sem_collisions, self.sem_escalations] {
            wire::put_u64(out, v);
        }
        for v in [self.sem_prunes, self.sem_mask_fallbacks] {
            wire::put_u64(out, v);
        }
        out.push(PhaseId::COUNT as u8);
        for &c in &self.active_counts {
            wire::put_u64(out, c);
        }
        wire::put_str(out, &self.best_sequence);
        wire::put_u32(out, self.best_insts);
        match &self.frontier {
            Some(fs) => {
                out.push(1);
                fs.encode(out);
            }
            None => out.push(0),
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>, version: u32) -> Result<FunctionRecord, StoreError> {
        let name = r.str()?;
        let complete = r.u8()? != 0;
        let truncated_level = r.u32()?;
        let [insts, blocks, branches, loops] = [r.u32()?, r.u32()?, r.u32()?, r.u32()?];
        let [fn_instances, leaves, control_flows] = [r.u64()?, r.u64()?, r.u64()?];
        let max_seq_len = r.u32()?;
        let code_min = r.u32()?;
        let code_max = r.u32()?;
        let [attempted_phases, active_attempts, phases_applied, collisions] =
            [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        // Version-1 records predate the semantic tier; they were all
        // produced with it off, so zero is the faithful value.
        let [sem_merges, sem_collisions, sem_escalations] =
            if version >= 2 { [r.u64()?, r.u64()?, r.u64()?] } else { [0, 0, 0] };
        // Pre-v4 records predate the subsumption-pruned tier; zero is
        // the faithful value for both of its counters.
        let [sem_prunes, sem_mask_fallbacks] =
            if version >= 4 { [r.u64()?, r.u64()?] } else { [0, 0] };
        let n = r.u8()? as usize;
        if n != PhaseId::COUNT {
            return Err(StoreError::Corrupt(format!(
                "record `{name}` carries {n} phase counts, compiler has {}",
                PhaseId::COUNT
            )));
        }
        let mut active_counts = [0u64; PhaseId::COUNT];
        for c in &mut active_counts {
            *c = r.u64()?;
        }
        let best_sequence = r.str()?;
        let best_insts = r.u32()?;
        // Pre-v3 records predate frontier persistence: every incomplete
        // record was a permanent truncation, i.e. no checkpoint.
        let frontier =
            if version >= 3 && r.bool()? { Some(FrontierState::decode(r, version)?) } else { None };
        if complete && frontier.is_some() {
            return Err(StoreError::Corrupt(format!(
                "record `{name}` is complete but carries a frontier checkpoint"
            )));
        }
        Ok(FunctionRecord {
            name,
            complete,
            truncated_level,
            insts,
            blocks,
            branches,
            loops,
            fn_instances,
            leaves,
            control_flows,
            max_seq_len,
            code_min,
            code_max,
            attempted_phases,
            active_attempts,
            phases_applied,
            collisions,
            sem_merges,
            sem_collisions,
            sem_escalations,
            sem_prunes,
            sem_mask_fallbacks,
            active_counts,
            best_sequence,
            best_insts,
            frontier,
        })
    }
}

/// How much of a function's phase-order space a memo record covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Completeness {
    /// The space was exhaustively enumerated.
    Complete,
    /// A bound (`max_nodes` / `max_level_width`) truncated the search at
    /// this level; under the same bounds re-running cannot get further.
    Truncated {
        /// Level the bound fired at.
        level: u32,
    },
    /// The search was suspended at this level with its frontier
    /// persisted; the next request deepens it from saved state.
    Frontier {
        /// Levels fully merged so far.
        level: u32,
    },
}

impl fmt::Display for Completeness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completeness::Complete => write!(f, "complete"),
            Completeness::Truncated { level } => write!(f, "truncated at level {level}"),
            Completeness::Frontier { level } => write!(f, "frontier at level {level}"),
        }
    }
}

/// Typed read-only view over a [`FunctionRecord`]: the daemon and the
/// CLI both render memo answers through these accessors instead of
/// poking record fields directly.
#[derive(Clone, Copy, Debug)]
pub struct MemoEntry<'a> {
    record: &'a FunctionRecord,
}

impl<'a> MemoEntry<'a> {
    /// Wraps a record.
    pub fn new(record: &'a FunctionRecord) -> MemoEntry<'a> {
        MemoEntry { record }
    }

    /// The underlying record.
    pub fn record(&self) -> &'a FunctionRecord {
        self.record
    }

    /// Campaign-qualified function name.
    pub fn name(&self) -> &'a str {
        &self.record.name
    }

    /// Whether the record is complete, permanently truncated, or
    /// suspended at a persisted frontier.
    pub fn completeness(&self) -> Completeness {
        if self.record.complete {
            Completeness::Complete
        } else if let Some(fs) = &self.record.frontier {
            Completeness::Frontier { level: fs.level }
        } else {
            Completeness::Truncated { level: self.record.truncated_level }
        }
    }

    /// Whether a later run can deepen this record from saved state.
    pub fn is_resumable(&self) -> bool {
        matches!(self.completeness(), Completeness::Frontier { .. })
    }

    /// The code-size-optimal phase ordering in letter notation — for an
    /// incomplete record, the best ordering found *so far*. `None` when
    /// the partial space has no candidate yet.
    pub fn optimal_ordering(&self) -> Option<&'a str> {
        (self.record.leaves > 0).then_some(self.record.best_sequence.as_str())
    }

    /// Instruction count of that ordering's instance.
    pub fn best_insts(&self) -> Option<u32> {
        (self.record.leaves > 0).then_some(self.record.best_insts)
    }

    /// The record's Table-3 row (`N/A` columns for incomplete records).
    pub fn table3_row(&self) -> FunctionRow {
        self.record.to_row()
    }
}

/// An in-memory store: the config echo plus records in campaign task
/// order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResultStore {
    /// Enumeration bounds the records were produced under.
    pub config: ConfigEcho,
    /// Per-function records, in campaign task order.
    pub records: Vec<FunctionRecord>,
}

impl ResultStore {
    /// An empty store for the given enumeration config (and semantic
    /// tier options, when that tier is on; `sem_pruned` selects the
    /// subsumption-pruned variant).
    pub fn new(
        config: &Config,
        semantic: Option<&SemanticConfig>,
        sem_pruned: bool,
    ) -> ResultStore {
        ResultStore { config: ConfigEcho::of(config, semantic, sem_pruned), records: Vec::new() }
    }

    /// Serializes the store. The encoding is a pure function of the
    /// contents: equal stores produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        wire::put_u32(&mut out, VERSION);
        wire::put_u64(&mut out, self.config.max_nodes);
        wire::put_u64(&mut out, self.config.max_level_width);
        out.push(self.config.replay);
        out.push(self.config.skip_just_applied as u8);
        out.push(self.config.paranoid as u8);
        out.push(self.config.semantic as u8);
        wire::put_u32(&mut out, self.config.sem_battery);
        wire::put_u64(&mut out, self.config.sem_seed);
        wire::put_u64(&mut out, self.config.sem_fuel);
        out.push(self.config.sem_pruned as u8);
        wire::put_u32(&mut out, self.records.len() as u32);
        for rec in &self.records {
            let mut payload = Vec::new();
            rec.encode(&mut payload);
            wire::put_u32(&mut out, payload.len() as u32);
            out.extend_from_slice(&payload);
            wire::put_u32(&mut out, crc::crc32(&payload));
        }
        out
    }

    /// Parses a store, validating magic, version, per-record lengths and
    /// CRCs, and that no bytes trail the last record.
    pub fn from_bytes(bytes: &[u8]) -> Result<ResultStore, StoreError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt("bad magic (not a campaign store)".into()));
        }
        let version = r.u32()?;
        if !(1..=VERSION).contains(&version) {
            return Err(StoreError::Corrupt(format!(
                "format version {version}, this build reads 1..={VERSION}"
            )));
        }
        let mut config = ConfigEcho {
            max_nodes: r.u64()?,
            max_level_width: r.u64()?,
            replay: r.u8()?,
            skip_just_applied: r.u8()? != 0,
            paranoid: r.u8()? != 0,
            // Version-1 stores predate the semantic tier; it was off.
            semantic: false,
            sem_battery: 0,
            sem_seed: 0,
            sem_fuel: 0,
            // Pre-v4 stores predate subsumption pruning; it was off.
            sem_pruned: false,
        };
        if version >= 2 {
            config.semantic = r.u8()? != 0;
            config.sem_battery = r.u32()?;
            config.sem_seed = r.u64()?;
            config.sem_fuel = r.u64()?;
        }
        if version >= 4 {
            config.sem_pruned = r.u8()? != 0;
        }
        let count = r.u32()? as usize;
        let mut records = Vec::with_capacity(count.min(1024));
        for i in 0..count {
            let len = r.u32()? as usize;
            let payload = r.take(len)?;
            let crc_stored = r.u32()?;
            if crc::crc32(payload) != crc_stored {
                return Err(StoreError::Corrupt(format!("record {i}: CRC mismatch")));
            }
            let mut pr = Reader::new(payload);
            let rec = FunctionRecord::decode(&mut pr, version)?;
            if pr.pos() != payload.len() {
                return Err(StoreError::Corrupt(format!(
                    "record {i} (`{}`): {} unparsed payload bytes",
                    rec.name,
                    payload.len() - pr.pos()
                )));
            }
            records.push(rec);
        }
        if r.pos() != bytes.len() {
            return Err(StoreError::Corrupt(format!(
                "{} bytes trail the last record",
                bytes.len() - r.pos()
            )));
        }
        Ok(ResultStore { config, records })
    }

    /// Reads a store from disk. Errors name the path and operation.
    pub fn load(path: &Path) -> Result<ResultStore, StoreError> {
        let parse = || ResultStore::from_bytes(&std::fs::read(path)?);
        parse().map_err(|e| e.context("reading store", path))
    }

    /// Writes the store atomically: the bytes go to a `.tmp` sibling
    /// first, then an atomic rename replaces the store, so a reader (or
    /// a resumed campaign) never observes a half-written file. Errors
    /// name the path and operation.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let write = || {
            let tmp = match path.file_name() {
                Some(name) => {
                    let mut n = name.to_os_string();
                    n.push(".tmp");
                    path.with_file_name(n)
                }
                None => {
                    return Err(StoreError::Io(std::io::Error::other(
                        "store path has no file name",
                    )))
                }
            };
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, path)?;
            Ok(())
        };
        write().map_err(|e| e.context("writing store", path))
    }

    /// Checks that `config` (and the merge-tier selection, including
    /// subsumption pruning) matches the bounds this store was written
    /// under (resume safety).
    pub fn check_config(
        &self,
        config: &Config,
        semantic: Option<&SemanticConfig>,
        sem_pruned: bool,
    ) -> Result<(), StoreError> {
        let now = ConfigEcho::of(config, semantic, sem_pruned);
        if self.config != now {
            return Err(StoreError::ConfigMismatch(format!(
                "store written under {:?}, campaign running with {:?}; \
                 re-run with matching bounds or remove the store",
                self.config, now
            )));
        }
        Ok(())
    }

    /// Looks up a record by its campaign-qualified name.
    pub fn find(&self, name: &str) -> Option<&FunctionRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Looks up a record as a typed [`MemoEntry`] view.
    pub fn entry(&self, name: &str) -> Option<MemoEntry<'_>> {
        self.find(name).map(MemoEntry::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(name: &str, seed: u64) -> FunctionRecord {
        let mut active_counts = [0u64; PhaseId::COUNT];
        for (i, c) in active_counts.iter_mut().enumerate() {
            *c = seed.wrapping_mul(i as u64 + 1) % 97;
        }
        FunctionRecord {
            name: name.to_owned(),
            complete: seed.is_multiple_of(2),
            truncated_level: if seed.is_multiple_of(2) { 0 } else { seed as u32 % 9 + 1 },
            insts: 40 + seed as u32,
            blocks: 7,
            branches: 5,
            loops: 1,
            fn_instances: 1000 + seed,
            leaves: 12,
            control_flows: 3,
            max_seq_len: 14,
            code_min: 21,
            code_max: 35,
            attempted_phases: 123_456 + seed,
            active_attempts: 4_321,
            phases_applied: 123_456 + seed,
            collisions: 0,
            sem_merges: seed * 3,
            sem_collisions: 0,
            sem_escalations: seed * 3,
            sem_prunes: seed * 2,
            sem_mask_fallbacks: seed,
            active_counts,
            best_sequence: "skcshu".to_owned(),
            best_insts: 21,
            frontier: None,
        }
    }

    fn sample_frontier() -> FrontierState {
        let root = PersistedNode {
            fp: Fingerprint { inst_count: 40, byte_sum: 777, crc: 0xABCD },
            flags: FuncFlags::default(),
            level: 0,
            inst_count: 40,
            cf_sig: 9,
            active_mask: 0b101,
            children: vec![(PhaseId::Cse, 1), (PhaseId::LoopUnroll, 2)],
            sem_children: vec![(PhaseId::DeadAssign, 0)],
            pruned_children: vec![(PhaseId::LoopUnroll, 1)],
            discovered_from: None,
            pruned: false,
        };
        let child = PersistedNode {
            fp: Fingerprint { inst_count: 33, byte_sum: 555, crc: 0x1234 },
            flags: FuncFlags { regs_assigned: true, reg_allocated: false },
            level: 1,
            inst_count: 33,
            cf_sig: 9,
            active_mask: 0,
            children: vec![],
            sem_children: vec![],
            pruned_children: vec![],
            discovered_from: Some((0, PhaseId::Cse)),
            pruned: false,
        };
        let pruned = PersistedNode {
            fp: Fingerprint { inst_count: 33, byte_sum: 601, crc: 0x5678 },
            flags: FuncFlags { regs_assigned: true, reg_allocated: false },
            level: 1,
            inst_count: 33,
            cf_sig: 9,
            active_mask: 0,
            children: vec![],
            sem_children: vec![],
            pruned_children: vec![],
            discovered_from: Some((0, PhaseId::LoopUnroll)),
            pruned: true,
        };
        FrontierState { level: 1, nodes: vec![root, child, pruned], frontier: vec![1] }
    }

    fn sample_store() -> ResultStore {
        let mut s = ResultStore::new(&Config::default(), None, false);
        s.records.push(sample_record("bitcount::bit_count", 2));
        s.records.push(sample_record("sha::sha_transform", 5));
        s
    }

    fn store_with_frontier() -> ResultStore {
        let mut s = sample_store();
        let mut partial = sample_record("qsort::partition", 7);
        assert!(!partial.complete);
        partial.frontier = Some(sample_frontier());
        s.records.push(partial);
        s
    }

    #[test]
    fn roundtrip_is_lossless_and_stable() {
        let s = sample_store();
        let bytes = s.to_bytes();
        assert_eq!(bytes, s.to_bytes(), "encoding must be deterministic");
        let back = ResultStore::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), bytes, "re-encoding must be byte-identical");
        assert!(back.find("sha::sha_transform").is_some());
        assert!(back.find("nope").is_none());
    }

    #[test]
    fn frontier_checkpoints_roundtrip() {
        let s = store_with_frontier();
        let bytes = s.to_bytes();
        let back = ResultStore::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), bytes);
        let fs = back.find("qsort::partition").unwrap().frontier.as_ref().unwrap();
        assert_eq!(fs.frontier, vec![1]);
        // Persisted nodes rebuild live nodes losslessly (weight zero).
        for pn in &fs.nodes {
            let node = pn.to_node();
            assert_eq!(PersistedNode::of(&node), *pn);
            assert_eq!(node.weight, 0);
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = store_with_frontier().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                matches!(ResultStore::from_bytes(&bytes[..cut]), Err(StoreError::Corrupt(_))),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_crc() {
        let good = sample_store().to_bytes();
        // Flip one byte inside each record's payload region.
        let header = 4 + 4 + 8 + 8 + 3 + 1 + 4 + 8 + 8 + 1 + 4;
        for offset in [header + 4 + 2, good.len() - 8] {
            let mut bad = good.clone();
            bad[offset] ^= 0x40;
            match ResultStore::from_bytes(&bad) {
                Err(StoreError::Corrupt(msg)) => {
                    assert!(msg.contains("CRC"), "offset {offset}: {msg}")
                }
                other => panic!("offset {offset}: corruption not caught: {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes.push(0);
        assert!(matches!(ResultStore::from_bytes(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(ResultStore::from_bytes(&bytes), Err(StoreError::Corrupt(_))));
        let mut bytes = sample_store().to_bytes();
        bytes[4] = 99;
        let err = ResultStore::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn config_echo_gates_resume() {
        let s = sample_store();
        s.check_config(&Config::default(), None, false).unwrap();
        let other = Config { max_nodes: 7, ..Config::default() };
        assert!(matches!(s.check_config(&other, None, false), Err(StoreError::ConfigMismatch(_))));
        // Switching merge tiers between runs also refuses to resume.
        let sem = SemanticConfig::default();
        assert!(matches!(
            s.check_config(&Config::default(), Some(&sem), false),
            Err(StoreError::ConfigMismatch(_))
        ));
        // The pruned and annotation variants of the semantic tier are
        // distinct memo keys: a pruned-tier store refuses an
        // annotation-tier resume and vice versa.
        let pruned = ResultStore::new(&Config::default(), Some(&sem), true);
        pruned.check_config(&Config::default(), Some(&sem), true).unwrap();
        assert!(matches!(
            pruned.check_config(&Config::default(), Some(&sem), false),
            Err(StoreError::ConfigMismatch(_))
        ));
        let annotated = ResultStore::new(&Config::default(), Some(&sem), false);
        assert!(matches!(
            annotated.check_config(&Config::default(), Some(&sem), true),
            Err(StoreError::ConfigMismatch(_))
        ));
    }

    #[test]
    fn version_1_stores_still_load() {
        // A store produced by the pre-semantic-tier build (format
        // version 1), checked in as a fixture. The new fields must
        // default to the fingerprint tier's values: tier off, all
        // semantic counters zero.
        let bytes: &[u8] = include_bytes!("../../../../tests/fixtures/campaign_store_v1.bin");
        let s = ResultStore::from_bytes(bytes).expect("v1 store must load");
        assert!(!s.config.semantic);
        assert!(!s.config.sem_pruned);
        assert_eq!((s.config.sem_battery, s.config.sem_seed, s.config.sem_fuel), (0, 0, 0));
        assert_eq!(s.records.len(), 9, "bitcount campaign explores 9 functions");
        for rec in &s.records {
            assert_eq!(
                (rec.sem_merges, rec.sem_collisions, rec.sem_escalations),
                (0, 0, 0),
                "record `{}` predates the semantic tier",
                rec.name
            );
            assert_eq!(
                (rec.sem_prunes, rec.sem_mask_fallbacks),
                (0, 0),
                "record `{}` predates the pruned tier",
                rec.name
            );
            assert!(rec.frontier.is_none(), "record `{}` predates frontier persistence", rec.name);
        }
        // A v1 store resumes under the matching current config
        // (fingerprint tier), since the echoed subset is identical.
        s.check_config(&Config::default(), None, false).unwrap();
    }

    /// Encodes a node exactly as the v2/v3 builds did: two edge lists,
    /// no pruned flag. Callers must pass pre-v4-shaped nodes.
    fn encode_node_v3(n: &PersistedNode, out: &mut Vec<u8>) {
        assert!(!n.pruned && n.pruned_children.is_empty(), "node carries v4 state");
        wire::put_u32(out, n.fp.inst_count);
        wire::put_u64(out, n.fp.byte_sum);
        wire::put_u32(out, n.fp.crc);
        out.push(n.flags.regs_assigned as u8 | (n.flags.reg_allocated as u8) << 1);
        wire::put_u32(out, n.level);
        wire::put_u32(out, n.inst_count);
        wire::put_u64(out, n.cf_sig);
        wire::put_u16(out, n.active_mask);
        for edges in [&n.children, &n.sem_children] {
            out.push(edges.len() as u8);
            for &(p, c) in edges {
                out.push(p.index() as u8);
                wire::put_u32(out, c);
            }
        }
        match n.discovered_from {
            Some((parent, phase)) => {
                out.push(1);
                wire::put_u32(out, parent);
                out.push(phase.index() as u8);
            }
            None => out.push(0),
        }
    }

    /// Encodes a store exactly as an older build (format `version` 2 or
    /// 3) would have written it, for load-regression tests. Drops every
    /// v4 field, so the store must carry none: `sem_pruned` off, pruned
    /// counters zero on every record, no pruned nodes in any frontier —
    /// which is every store those builds could write. A v3 frontier is
    /// rejected at `version` 2 (no v2 build persisted frontiers).
    fn encode_as_version(s: &ResultStore, version: u32) -> Vec<u8> {
        assert!((2..=3).contains(&version));
        assert!(!s.config.sem_pruned);
        let mut out = MAGIC.to_vec();
        wire::put_u32(&mut out, version);
        wire::put_u64(&mut out, s.config.max_nodes);
        wire::put_u64(&mut out, s.config.max_level_width);
        out.push(s.config.replay);
        out.push(s.config.skip_just_applied as u8);
        out.push(s.config.paranoid as u8);
        out.push(s.config.semantic as u8);
        wire::put_u32(&mut out, s.config.sem_battery);
        wire::put_u64(&mut out, s.config.sem_seed);
        wire::put_u64(&mut out, s.config.sem_fuel);
        wire::put_u32(&mut out, s.records.len() as u32);
        for rec in &s.records {
            assert_eq!((rec.sem_prunes, rec.sem_mask_fallbacks), (0, 0));
            let mut p = Vec::new();
            wire::put_str(&mut p, &rec.name);
            p.push(rec.complete as u8);
            wire::put_u32(&mut p, rec.truncated_level);
            for v in [rec.insts, rec.blocks, rec.branches, rec.loops] {
                wire::put_u32(&mut p, v);
            }
            for v in [rec.fn_instances, rec.leaves, rec.control_flows] {
                wire::put_u64(&mut p, v);
            }
            wire::put_u32(&mut p, rec.max_seq_len);
            wire::put_u32(&mut p, rec.code_min);
            wire::put_u32(&mut p, rec.code_max);
            for v in [
                rec.attempted_phases,
                rec.active_attempts,
                rec.phases_applied,
                rec.collisions,
                rec.sem_merges,
                rec.sem_collisions,
                rec.sem_escalations,
            ] {
                wire::put_u64(&mut p, v);
            }
            p.push(PhaseId::COUNT as u8);
            for &c in &rec.active_counts {
                wire::put_u64(&mut p, c);
            }
            wire::put_str(&mut p, &rec.best_sequence);
            wire::put_u32(&mut p, rec.best_insts);
            match &rec.frontier {
                Some(fs) => {
                    assert!(version >= 3, "no v2 build persisted frontiers");
                    p.push(1);
                    wire::put_u32(&mut p, fs.level);
                    wire::put_u32(&mut p, fs.nodes.len() as u32);
                    for n in &fs.nodes {
                        encode_node_v3(n, &mut p);
                    }
                    wire::put_u32(&mut p, fs.frontier.len() as u32);
                    for &id in &fs.frontier {
                        wire::put_u32(&mut p, id);
                    }
                }
                None if version >= 3 => p.push(0),
                None => {}
            }
            wire::put_u32(&mut out, p.len() as u32);
            out.extend_from_slice(&p);
            wire::put_u32(&mut out, crc::crc32(&p));
        }
        out
    }

    /// Strips the v4-only state from a store built by the current test
    /// helpers, leaving what an older build would have recorded.
    fn without_v4_state(s: &ResultStore) -> ResultStore {
        let mut old = s.clone();
        for rec in &mut old.records {
            rec.sem_prunes = 0;
            rec.sem_mask_fallbacks = 0;
            if let Some(fs) = &mut rec.frontier {
                for n in &mut fs.nodes {
                    n.pruned = false;
                    n.pruned_children.clear();
                }
            }
        }
        old
    }

    #[test]
    fn version_2_stores_still_load() {
        let s = without_v4_state(&sample_store());
        let v2 = encode_as_version(&s, 2);
        let back = ResultStore::from_bytes(&v2).expect("v2 store must load");
        // Loading a v2 store loses nothing: the later additions (the
        // frontier checkpoint, the pruned tier) are things no v2 build
        // could have produced.
        assert_eq!(back, s);
        back.check_config(&Config::default(), None, false).unwrap();
    }

    #[test]
    fn version_3_stores_still_load() {
        // A frontier-carrying v3 store: checkpointed nodes predate the
        // pruned flag and the third edge list, and must load with both
        // defaulted off.
        let s = without_v4_state(&store_with_frontier());
        let v3 = encode_as_version(&s, 3);
        let back = ResultStore::from_bytes(&v3).expect("v3 store must load");
        assert_eq!(back, s);
        assert!(!back.config.sem_pruned);
        let fs = back.find("qsort::partition").unwrap().frontier.as_ref().unwrap();
        assert!(fs.nodes.iter().all(|n| !n.pruned && n.pruned_children.is_empty()));
        back.check_config(&Config::default(), None, false).unwrap();
    }

    #[test]
    fn save_is_atomic_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("vpoc_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.store");
        let s = store_with_frontier();
        s.save(&path).unwrap();
        assert!(!path.with_file_name("campaign.store.tmp").exists(), "tmp file left behind");
        assert_eq!(ResultStore::load(&path).unwrap(), s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_and_save_errors_name_the_path() {
        let dir = std::env::temp_dir().join(format!("vpoc_store_err_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("no_such.store");
        let err = ResultStore::load(&missing).unwrap_err().to_string();
        assert!(err.contains("reading store"), "{err}");
        assert!(err.contains("no_such.store"), "{err}");
        let garbage = dir.join("garbage.store");
        std::fs::write(&garbage, b"not a store").unwrap();
        let err = ResultStore::load(&garbage).unwrap_err().to_string();
        assert!(err.contains("reading store"), "{err}");
        assert!(err.contains("garbage.store"), "{err}");
        assert!(err.contains("magic"), "{err}");
        // Saving into a directory that does not exist names the target.
        let bad_target = dir.join("absent_dir").join("x.store");
        let err = sample_store().save(&bad_target).unwrap_err().to_string();
        assert!(err.contains("writing store"), "{err}");
        assert!(err.contains("x.store"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_to_row_respects_na_convention() {
        let mut rec = sample_record("f", 2);
        assert!(rec.complete);
        let row = rec.to_row();
        assert_eq!(row.fn_instances, Some(rec.fn_instances as usize));
        assert_eq!(row.code_min, Some(21));
        rec.complete = false;
        let row = rec.to_row();
        assert_eq!(row.fn_instances, None);
        assert_eq!(row.code_min, None);
        assert!(row.render().contains("N/A"));
    }

    #[test]
    fn memo_entry_classifies_and_renders() {
        // Complete record.
        let complete = sample_record("f", 2);
        let e = MemoEntry::new(&complete);
        assert_eq!(e.completeness(), Completeness::Complete);
        assert!(!e.is_resumable());
        assert_eq!(e.optimal_ordering(), Some("skcshu"));
        assert_eq!(e.best_insts(), Some(21));
        assert_eq!(e.table3_row().code_min, Some(21));
        // Permanently truncated: incomplete, no frontier.
        let truncated = sample_record("g", 5);
        let e = MemoEntry::new(&truncated);
        assert_eq!(e.completeness(), Completeness::Truncated { level: truncated.truncated_level });
        assert!(!e.is_resumable());
        assert_eq!(e.table3_row().fn_instances, None);
        // Suspended at a frontier: incomplete, checkpoint attached.
        let mut partial = sample_record("h", 7);
        partial.frontier = Some(sample_frontier());
        let e = MemoEntry::new(&partial);
        assert_eq!(e.completeness(), Completeness::Frontier { level: 1 });
        assert!(e.is_resumable());
        assert_eq!(e.optimal_ordering(), Some("skcshu"), "best-so-far still renders");
        assert_eq!(format!("{}", e.completeness()), "frontier at level 1");
        // No leaves yet: no candidate ordering.
        let mut empty = sample_record("i", 7);
        empty.leaves = 0;
        let e = MemoEntry::new(&empty);
        assert_eq!(e.optimal_ordering(), None);
        assert_eq!(e.best_insts(), None);
        // Store-level typed lookup.
        let s = store_with_frontier();
        assert!(s.entry("qsort::partition").unwrap().is_resumable());
        assert!(s.entry("bitcount::bit_count").unwrap().optimal_ordering().is_some());
        assert!(s.entry("nope").is_none());
    }

    #[test]
    fn complete_record_with_frontier_is_rejected() {
        let mut s = sample_store();
        s.records[0].frontier = Some(sample_frontier());
        assert!(s.records[0].complete);
        let bytes = s.to_bytes();
        let err = ResultStore::from_bytes(&bytes).unwrap_err().to_string();
        assert!(err.contains("complete but carries a frontier"), "{err}");
    }
}
