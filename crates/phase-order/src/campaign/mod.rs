//! Resumable multi-function exploration campaigns.
//!
//! The paper's headline tables aggregate over *every* function of the
//! benchmark suite. This module turns the single-function enumeration of
//! [`crate::enumerate()`] into a long-running, checkpointed **campaign**:
//!
//! * **One shared worker pool.** Workers steal work at the granularity
//!   of a *parent expansion* (one frontier instance × all fifteen
//!   phases), not a whole function: while a giant function grinds
//!   through a wide level, idle lanes pick up the next functions in the
//!   task list. Per function, expansions race freely but every level is
//!   merged in frontier order at its barrier — the same
//!   expand-in-parallel / merge-deterministically core as
//!   [`crate::enumerate()`] — so each function's result is bit-identical
//!   to a serial enumeration, for any job count.
//! * **Checkpointing.** Each completed function becomes a
//!   [`store::FunctionRecord`]; the whole store is rewritten atomically
//!   (temp file + rename) after every completion, with records in task
//!   order. A campaign killed at *any* point leaves a valid store
//!   holding exactly the completed subset; resuming with
//!   [`CampaignConfig::resume`] skips those functions and converges on a
//!   store **byte-identical** to an uninterrupted run's.
//! * **Observability.** Progress streams through the [`Observer`] trait
//!   (function started / level completed / function done / store
//!   flushed); the CLI renders it as a live progress line, and later
//!   metrics work can tap the same events.
//!
//! Observer callbacks run under the campaign's internal scheduler lock:
//! they see a consistent, ordered event stream, and must be quick.

pub mod store;

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vpo_opt::{PhaseId, Target};
use vpo_rtl::canon::Fingerprint;
use vpo_rtl::{FuncFlags, Function, Program};

use crate::enumerate::{
    expand_parent, merge_parent, seed_root, AttemptRecord, Config, Enumeration, ExpandScratch,
    FrontierEntry, SearchOutcome, SearchStats,
};
use crate::semantic::{SemanticConfig, SemanticContext};
use crate::space::SearchSpace;
use store::{FunctionRecord, ResultStore, StoreError};

/// One unit of the campaign's task list: a function to explore, under a
/// campaign-unique qualified name (e.g. `sha::sha_transform`) that also
/// keys its record in the store.
#[derive(Clone, Debug)]
pub struct FunctionTask {
    /// Qualified name; must be unique within the campaign.
    pub name: String,
    /// The unoptimized function.
    pub func: Function,
    /// The program the function belongs to, for simulator execution.
    /// Required when the campaign runs the semantic merge tier
    /// ([`CampaignConfig::semantic`]); ignored otherwise.
    pub program: Option<Arc<Program>>,
}

/// Campaign options.
#[derive(Clone, Debug, Default)]
pub struct CampaignConfig {
    /// Per-function enumeration bounds. `enumerate.jobs` is ignored —
    /// the campaign pool is sized by [`CampaignConfig::jobs`].
    pub enumerate: Config,
    /// Worker pool size: `0` or `1` = run on the calling thread, `N` =
    /// `N` workers. The store contents are identical for any value.
    pub jobs: usize,
    /// Skip functions that already have a record in the store.
    pub resume: bool,
    /// Abandon the campaign after this many *fresh* checkpoints — the
    /// deterministic stand-in for killing the process mid-run (the store
    /// is left exactly as a kill at a checkpoint boundary would).
    pub stop_after: Option<usize>,
    /// Run the semantic merge tier (`--merge-tier semantic`) with these
    /// battery options. `None` (the default) keeps the fingerprint tier.
    /// Every task must then carry its [`FunctionTask::program`].
    pub semantic: Option<SemanticConfig>,
}

/// Why a campaign could not run (store trouble or a malformed task
/// list). Individual functions never fail: a function whose space
/// exceeds the bounds is recorded as truncated, like Table 3's `N/A`
/// rows.
#[derive(Debug)]
pub enum CampaignError {
    /// Reading or writing the result store failed.
    Store(StoreError),
    /// Two tasks share a qualified name.
    DuplicateName(String),
    /// The store exists but `resume` was not requested.
    StoreExists(PathBuf),
    /// The store holds a record for a function not in the task list.
    UnknownRecord(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Store(e) => write!(f, "{e}"),
            CampaignError::DuplicateName(n) => {
                write!(f, "duplicate task name `{n}` (task names key the store)")
            }
            CampaignError::StoreExists(p) => write!(
                f,
                "store {} already exists; pass --resume to continue it or remove it",
                p.display()
            ),
            CampaignError::UnknownRecord(n) => write!(
                f,
                "store holds a record for `{n}`, which is not in this campaign's task list"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<StoreError> for CampaignError {
    fn from(e: StoreError) -> Self {
        CampaignError::Store(e)
    }
}

/// Campaign progress events. All methods default to no-ops; implement
/// the ones you care about. Callbacks are invoked under the scheduler
/// lock — they are totally ordered and must not block.
#[allow(unused_variables)]
pub trait Observer: Sync {
    /// A function was taken off the pending list and its root seeded.
    fn function_started(&self, index: usize, total: usize, name: &str) {}
    /// One level of a function's space was merged.
    fn level_completed(&self, name: &str, level: u32, frontier: usize, nodes: usize) {}
    /// A function's space is fully explored (or truncated) and recorded.
    fn function_done(&self, index: usize, total: usize, record: &FunctionRecord) {}
    /// The store was rewritten on disk with `completed` of `total`
    /// records.
    fn store_flushed(&self, completed: usize, total: usize) {}
}

/// The do-nothing observer.
pub struct NullObserver;

impl Observer for NullObserver {}

/// What a finished (or interrupted) campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    /// Records of all completed functions in task order — resumed ones
    /// included, so this is exactly the store contents.
    pub records: Vec<FunctionRecord>,
    /// Functions skipped because the store already held their record.
    pub resumed: usize,
    /// Functions freshly explored by this run.
    pub explored: usize,
    /// Whether [`CampaignConfig::stop_after`] cut the run short.
    pub interrupted: bool,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// One in-flight function search: the per-function state of
/// `enumerate`'s level loop, opened up so the shared pool can claim
/// individual parent expansions.
struct Search<'p> {
    task: usize,
    root: Arc<Function>,
    space: SearchSpace,
    stats: SearchStats,
    paranoid_bytes: HashMap<(Fingerprint, FuncFlags), Vec<u8>>,
    /// Semantic-tier state (signature classes + shared simulator), when
    /// the campaign runs under `--merge-tier semantic`. Only touched at
    /// merge time, which is serial per function.
    sem: Option<SemanticContext<'p>>,
    start: Instant,
    /// Levels merged so far (children of the current frontier land on
    /// `level + 1`).
    level: u32,
    frontier: Vec<FrontierEntry>,
    /// One slot per frontier entry, filled by whichever worker expanded
    /// it.
    slots: Vec<Option<Vec<AttemptRecord>>>,
    /// Frontier entries handed out to workers.
    claimed: usize,
    /// Slots deposited back.
    filled: usize,
}

/// A claimed parent expansion, self-contained so the worker needs no
/// lock while it runs.
struct Job {
    task: usize,
    parent: usize,
    root: Arc<Function>,
    func: Arc<Function>,
    seq: Vec<PhaseId>,
    skip: Option<PhaseId>,
}

struct DriverState<'p> {
    next_pending: usize,
    active: Vec<Search<'p>>,
    completed: Vec<Option<FunctionRecord>>,
    fresh: usize,
    halt: bool,
    failure: Option<CampaignError>,
}

struct Ctx<'a> {
    names: &'a [String],
    funcs: &'a [Arc<Function>],
    programs: &'a [Option<Arc<Program>>],
    target: &'a Target,
    config: &'a CampaignConfig,
    store_path: Option<&'a Path>,
    observer: &'a dyn Observer,
    state: Mutex<DriverState<'a>>,
    cv: Condvar,
}

/// Runs a campaign over `tasks`, checkpointing to `store_path` (no
/// persistence when `None`).
///
/// Returns the summary, or an error before any work starts if the task
/// list or store is unusable. The records in the summary — and the
/// bytes in the store — are identical for any
/// [`CampaignConfig::jobs`], and an interrupted-then-resumed campaign
/// converges on the same bytes as an uninterrupted one.
pub fn run(
    tasks: Vec<FunctionTask>,
    target: &Target,
    store_path: Option<&Path>,
    config: &CampaignConfig,
    observer: &dyn Observer,
) -> Result<CampaignSummary, CampaignError> {
    let start = Instant::now();
    let mut seen = HashSet::new();
    for t in &tasks {
        if !seen.insert(t.name.as_str()) {
            return Err(CampaignError::DuplicateName(t.name.clone()));
        }
    }

    let mut completed: Vec<Option<FunctionRecord>> = vec![None; tasks.len()];
    let mut resumed = 0usize;
    if let Some(path) = store_path {
        if path.exists() {
            if !config.resume {
                return Err(CampaignError::StoreExists(path.to_owned()));
            }
            let prior = ResultStore::load(path)?;
            prior.check_config(&config.enumerate, config.semantic.as_ref())?;
            for rec in prior.records {
                match tasks.iter().position(|t| t.name == rec.name) {
                    Some(i) => {
                        completed[i] = Some(rec);
                        resumed += 1;
                    }
                    None => return Err(CampaignError::UnknownRecord(rec.name)),
                }
            }
        }
    }

    let mut names = Vec::with_capacity(tasks.len());
    let mut funcs = Vec::with_capacity(tasks.len());
    let mut programs = Vec::with_capacity(tasks.len());
    for t in tasks {
        names.push(t.name);
        funcs.push(Arc::new(t.func));
        programs.push(t.program);
    }
    let ctx = Ctx {
        names: &names,
        funcs: &funcs,
        programs: &programs,
        target,
        config,
        store_path,
        observer,
        state: Mutex::new(DriverState {
            next_pending: 0,
            active: Vec::new(),
            completed,
            fresh: 0,
            halt: false,
            failure: None,
        }),
        cv: Condvar::new(),
    };

    let workers = config.jobs.max(1);
    if workers == 1 {
        worker(&ctx);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker(&ctx));
            }
        });
    }

    let st = ctx.state.into_inner().unwrap();
    if let Some(err) = st.failure {
        return Err(err);
    }
    Ok(CampaignSummary {
        records: st.completed.into_iter().flatten().collect(),
        resumed,
        explored: st.fresh,
        interrupted: st.halt,
        elapsed: start.elapsed(),
    })
}

/// The worker loop: claim a parent expansion from any in-flight search
/// (activating the next pending function when every frontier is fully
/// claimed), expand it without holding the lock, deposit the records,
/// and merge/checkpoint when a level or function completes.
fn worker(ctx: &Ctx<'_>) {
    // Scratch buffers persist across every job this worker ever runs, so
    // steady-state expansions reuse the same heap blocks regardless of
    // which function the claimed parent belongs to.
    let mut scratch = ExpandScratch::new();
    loop {
        let job = {
            let mut st = ctx.state.lock().unwrap();
            loop {
                if st.halt || st.failure.is_some() {
                    return;
                }
                if let Some(job) = claim(ctx, &mut st) {
                    break job;
                }
                while st.next_pending < ctx.names.len() && st.completed[st.next_pending].is_some() {
                    st.next_pending += 1;
                }
                if st.next_pending < ctx.names.len() {
                    activate(ctx, &mut st);
                    continue;
                }
                if st.active.is_empty() {
                    return;
                }
                // Every frontier entry is claimed but some worker is
                // still expanding; its deposit will wake us.
                st = ctx.cv.wait(st).unwrap();
            }
        };
        let mut local = HashSet::new();
        let records = expand_parent(
            &job.root,
            ctx.target,
            &ctx.config.enumerate,
            &job.func,
            &job.seq,
            job.skip,
            // Dedup within this parent's own attempt stream; the merge
            // step decides insertion against the real space.
            |fp, flags| !local.insert((fp, flags)),
            &mut scratch,
        );
        let mut st = ctx.state.lock().unwrap();
        deposit(ctx, &mut st, job.task, job.parent, records);
        ctx.cv.notify_all();
    }
}

/// Hands out the next unclaimed frontier entry, preferring the earliest
/// activated search — later functions only soak up lanes the earlier
/// ones cannot fill.
fn claim(ctx: &Ctx<'_>, st: &mut DriverState<'_>) -> Option<Job> {
    let config = &ctx.config.enumerate;
    let tm = crate::telemetry::global();
    for (rank, s) in st.active.iter_mut().enumerate() {
        if s.claimed < s.frontier.len() {
            let parent = s.claimed;
            s.claimed += 1;
            tm.campaign_claims.inc();
            if rank > 0 {
                // A lane the earliest in-flight function could not fill,
                // soaked up by a later one — a cross-function steal.
                tm.campaign_steals.inc();
            }
            let entry = &s.frontier[parent];
            let skip = if config.skip_just_applied {
                s.space.node(entry.id).discovered_from.map(|(_, p)| p)
            } else {
                None
            };
            return Some(Job {
                task: s.task,
                parent,
                root: Arc::clone(&s.root),
                func: entry.func.clone(),
                seq: entry.seq.clone(),
                skip,
            });
        }
    }
    None
}

/// Seeds the next pending function and puts it in flight.
fn activate<'a>(ctx: &Ctx<'a>, st: &mut DriverState<'a>) {
    let task = st.next_pending;
    st.next_pending += 1;
    let root = Arc::clone(&ctx.funcs[task]);
    let mut space = SearchSpace::new();
    let mut paranoid_bytes = HashMap::new();
    let root_id = seed_root(&mut space, &mut paranoid_bytes, &ctx.config.enumerate, &root);
    let sem = ctx.config.semantic.as_ref().map(|sc| {
        let program = ctx.programs[task]
            .as_deref()
            .expect("semantic campaign tasks must carry their program");
        let mut sem = SemanticContext::new(program, &root, sc, ctx.config.enumerate.paranoid);
        let sig = sem.signature(&root);
        sem.register(sig, root_id, &root);
        sem
    });
    let frontier = vec![FrontierEntry { id: root_id, func: Arc::clone(&root), seq: Vec::new() }];
    st.active.push(Search {
        task,
        root,
        space,
        stats: SearchStats::default(),
        paranoid_bytes,
        sem,
        start: Instant::now(),
        level: 0,
        slots: frontier.iter().map(|_| None).collect(),
        frontier,
        claimed: 0,
        filled: 0,
    });
    crate::telemetry::global().campaign_functions_started.inc();
    ctx.observer.function_started(task, ctx.names.len(), &ctx.names[task]);
}

/// Parks one parent's attempt records; when the level's last expansion
/// lands, merges the level in frontier order (restoring the serial
/// discovery order) and either refills the frontier or finalizes and
/// checkpoints the function.
fn deposit(
    ctx: &Ctx<'_>,
    st: &mut DriverState<'_>,
    task: usize,
    parent: usize,
    records: Vec<AttemptRecord>,
) {
    // A checkpoint that reached `stop_after` halts the campaign the
    // moment it lands; expansions still in flight on other workers are
    // discarded so the store stays exactly at the cut boundary instead
    // of racing in one more record.
    if st.halt || st.failure.is_some() {
        return;
    }
    let pos = st
        .active
        .iter()
        .position(|s| s.task == task)
        .expect("deposit for a search no longer in flight");
    let s = &mut st.active[pos];
    debug_assert!(s.slots[parent].is_none(), "parent expanded twice");
    s.slots[parent] = Some(records);
    s.filled += 1;
    if s.filled < s.frontier.len() {
        return;
    }

    // Level barrier reached: merge every parent in frontier order.
    let tm = crate::telemetry::global();
    let config = &ctx.config.enumerate;
    s.level += 1;
    tm.peak_frontier.set_max(s.frontier.len() as u64);
    let frontier = std::mem::take(&mut s.frontier);
    let slots = std::mem::take(&mut s.slots);
    let mut next = Vec::new();
    let mut truncated = false;
    for (entry, slot) in frontier.iter().zip(slots) {
        let records = slot.expect("barrier reached with an unfilled slot");
        if !merge_parent(
            &mut s.space,
            &mut s.stats,
            &mut s.paranoid_bytes,
            config,
            s.level,
            entry,
            records,
            &mut next,
            s.sem.as_mut(),
        ) {
            truncated = true;
            break;
        }
        if next.len() > config.max_level_width {
            truncated = true;
            break;
        }
    }
    tm.levels.inc();
    ctx.observer.level_completed(&ctx.names[task], s.level, next.len(), s.space.len());

    if !truncated && !next.is_empty() {
        s.slots = next.iter().map(|_| None).collect();
        s.frontier = next;
        s.claimed = 0;
        s.filled = 0;
        return;
    }

    // Function complete (or truncated): build its record and checkpoint.
    let mut s = st.active.remove(pos);
    s.space.compute_weights().expect("phase-order space must be acyclic");
    s.stats.elapsed = s.start.elapsed();
    let outcome =
        if truncated { SearchOutcome::TooBig { level: s.level } } else { SearchOutcome::Complete };
    tm.campaign_functions_completed.inc();
    if truncated {
        tm.campaign_functions_truncated.inc();
    }
    let e = Enumeration { space: s.space, outcome, stats: s.stats };
    let record = FunctionRecord::from_enumeration(ctx.names[task].clone(), &s.root, &e);
    st.completed[task] = Some(record.clone());
    st.fresh += 1;
    if let Some(path) = ctx.store_path {
        let snapshot = ResultStore {
            config: store::ConfigEcho::of(config, ctx.config.semantic.as_ref()),
            records: st.completed.iter().flatten().cloned().collect(),
        };
        let flush_start = std::time::Instant::now();
        match snapshot.save(path) {
            Ok(()) => {
                tm.store_flush_wall_ns.observe(flush_start.elapsed());
                tm.store_flushes.inc();
                tm.store_bytes.set(std::fs::metadata(path).map(|m| m.len()).unwrap_or(0));
                ctx.observer.store_flushed(snapshot.records.len(), ctx.names.len())
            }
            Err(err) => {
                st.failure = Some(CampaignError::Store(err));
                return;
            }
        }
    }
    ctx.observer.function_done(task, ctx.names.len(), &record);
    if ctx.config.stop_after == Some(st.fresh) {
        st.halt = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tasks_from(src: &str) -> Vec<FunctionTask> {
        vpo_frontend::compile(src)
            .unwrap()
            .functions
            .into_iter()
            .map(|f| FunctionTask { name: f.name.clone(), func: f, program: None })
            .collect()
    }

    fn three_functions() -> Vec<FunctionTask> {
        tasks_from(
            r#"
            int add(int a, int b) { return a + b + a; }
            int tri(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }
            int pick(int a, int b) { if (a > b) return a - b; return b - a; }
            "#,
        )
    }

    fn tmp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vpoc_campaign_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("campaign.store")
    }

    #[test]
    fn records_match_direct_enumeration() {
        let tasks = three_functions();
        let target = Target::default();
        let summary =
            run(tasks.clone(), &target, None, &CampaignConfig::default(), &NullObserver).unwrap();
        assert_eq!(summary.records.len(), 3);
        assert_eq!(summary.explored, 3);
        assert_eq!(summary.resumed, 0);
        assert!(!summary.interrupted);
        for (task, rec) in tasks.iter().zip(&summary.records) {
            let e = crate::enumerate(&task.func, &target, &Config::default());
            let direct = FunctionRecord::from_enumeration(task.name.clone(), &task.func, &e);
            assert_eq!(*rec, direct, "{}", task.name);
        }
    }

    #[test]
    fn store_bytes_identical_for_any_job_count() {
        let target = Target::default();
        let mut stores = Vec::new();
        for jobs in [0usize, 1, 4, 8] {
            let path = tmp_store(&format!("jobs{jobs}"));
            std::fs::remove_file(&path).ok();
            let config = CampaignConfig { jobs, ..CampaignConfig::default() };
            run(three_functions(), &target, Some(&path), &config, &NullObserver).unwrap();
            stores.push(std::fs::read(&path).unwrap());
            std::fs::remove_file(&path).ok();
        }
        for s in &stores[1..] {
            assert_eq!(*s, stores[0], "store bytes differ across job counts");
        }
    }

    #[test]
    fn interrupt_and_resume_converge_for_every_cut_point() {
        let target = Target::default();
        let uninterrupted = tmp_store("full");
        std::fs::remove_file(&uninterrupted).ok();
        run(
            three_functions(),
            &target,
            Some(&uninterrupted),
            &CampaignConfig { jobs: 4, ..CampaignConfig::default() },
            &NullObserver,
        )
        .unwrap();
        let want = std::fs::read(&uninterrupted).unwrap();
        for cut in 1..=2usize {
            for jobs in [1usize, 4] {
                let path = tmp_store(&format!("cut{cut}_j{jobs}"));
                std::fs::remove_file(&path).ok();
                let stopped =
                    CampaignConfig { jobs, stop_after: Some(cut), ..CampaignConfig::default() };
                let s1 =
                    run(three_functions(), &target, Some(&path), &stopped, &NullObserver).unwrap();
                assert!(s1.interrupted, "cut {cut} jobs {jobs}");
                assert_eq!(s1.explored, cut);
                let resume = CampaignConfig { jobs, resume: true, ..CampaignConfig::default() };
                let s2 =
                    run(three_functions(), &target, Some(&path), &resume, &NullObserver).unwrap();
                assert!(!s2.interrupted);
                assert_eq!(s2.resumed, cut);
                assert_eq!(s2.explored, 3 - cut);
                assert_eq!(
                    std::fs::read(&path).unwrap(),
                    want,
                    "cut {cut} jobs {jobs}: resumed store differs from uninterrupted"
                );
                std::fs::remove_file(&path).ok();
            }
        }
        std::fs::remove_file(&uninterrupted).ok();
    }

    #[test]
    fn truncated_functions_are_recorded_not_fatal() {
        let target = Target::default();
        let config = CampaignConfig {
            enumerate: Config { max_nodes: 5, ..Config::default() },
            ..CampaignConfig::default()
        };
        let summary = run(three_functions(), &target, None, &config, &NullObserver).unwrap();
        assert_eq!(summary.records.len(), 3);
        assert!(summary.records.iter().any(|r| !r.complete), "a 5-node cap must truncate");
        for r in &summary.records {
            if !r.complete {
                assert!(r.truncated_level > 0);
                assert!(r.fn_instances <= 5);
            }
        }
    }

    #[test]
    fn observer_sees_the_whole_lifecycle() {
        struct Counting {
            started: AtomicUsize,
            levels: AtomicUsize,
            done: AtomicUsize,
            flushed: AtomicUsize,
        }
        impl Observer for Counting {
            fn function_started(&self, _i: usize, _t: usize, _n: &str) {
                self.started.fetch_add(1, Ordering::Relaxed);
            }
            fn level_completed(&self, _n: &str, _l: u32, _f: usize, _s: usize) {
                self.levels.fetch_add(1, Ordering::Relaxed);
            }
            fn function_done(&self, _i: usize, _t: usize, _r: &FunctionRecord) {
                self.done.fetch_add(1, Ordering::Relaxed);
            }
            fn store_flushed(&self, _c: usize, _t: usize) {
                self.flushed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let obs = Counting {
            started: AtomicUsize::new(0),
            levels: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            flushed: AtomicUsize::new(0),
        };
        let path = tmp_store("observer");
        std::fs::remove_file(&path).ok();
        let target = Target::default();
        run(
            three_functions(),
            &target,
            Some(&path),
            &CampaignConfig { jobs: 2, ..CampaignConfig::default() },
            &obs,
        )
        .unwrap();
        assert_eq!(obs.started.load(Ordering::Relaxed), 3);
        assert_eq!(obs.done.load(Ordering::Relaxed), 3);
        assert_eq!(obs.flushed.load(Ordering::Relaxed), 3);
        assert!(obs.levels.load(Ordering::Relaxed) >= 3, "each function has at least one level");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn task_list_and_store_misuse_are_rejected() {
        let target = Target::default();
        let mut tasks = three_functions();
        tasks[1].name = tasks[0].name.clone();
        assert!(matches!(
            run(tasks, &target, None, &CampaignConfig::default(), &NullObserver),
            Err(CampaignError::DuplicateName(_))
        ));

        // Existing store without --resume.
        let path = tmp_store("misuse");
        std::fs::remove_file(&path).ok();
        run(three_functions(), &target, Some(&path), &CampaignConfig::default(), &NullObserver)
            .unwrap();
        assert!(matches!(
            run(three_functions(), &target, Some(&path), &CampaignConfig::default(), &NullObserver),
            Err(CampaignError::StoreExists(_))
        ));

        // Resume under different bounds.
        let other = CampaignConfig {
            enumerate: Config { max_nodes: 9, ..Config::default() },
            resume: true,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            run(three_functions(), &target, Some(&path), &other, &NullObserver),
            Err(CampaignError::Store(StoreError::ConfigMismatch(_)))
        ));

        // Resume against a store whose records are not in the task list.
        let fewer = vec![three_functions().swap_remove(0)];
        let resume = CampaignConfig { resume: true, ..CampaignConfig::default() };
        assert!(matches!(
            run(fewer, &target, Some(&path), &resume, &NullObserver),
            Err(CampaignError::UnknownRecord(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_complete_store_is_a_noop() {
        let target = Target::default();
        let path = tmp_store("noop");
        std::fs::remove_file(&path).ok();
        run(three_functions(), &target, Some(&path), &CampaignConfig::default(), &NullObserver)
            .unwrap();
        let before = std::fs::read(&path).unwrap();
        let resume = CampaignConfig { resume: true, ..CampaignConfig::default() };
        let summary = run(three_functions(), &target, Some(&path), &resume, &NullObserver).unwrap();
        assert_eq!(summary.resumed, 3);
        assert_eq!(summary.explored, 0);
        assert_eq!(std::fs::read(&path).unwrap(), before);
        std::fs::remove_file(&path).ok();
    }
}
