//! Resumable multi-function exploration campaigns.
//!
//! The paper's headline tables aggregate over *every* function of the
//! benchmark suite. This module turns the single-function enumeration of
//! [`crate::enumerate()`] into a long-running, checkpointed **campaign**:
//!
//! * **One shared worker pool.** Workers steal work at the granularity
//!   of a *parent expansion* (one frontier instance × all fifteen
//!   phases), not a whole function: while a giant function grinds
//!   through a wide level, idle lanes pick up the next functions in the
//!   task list. Per function, expansions race freely but every level is
//!   merged in frontier order at its barrier — the same
//!   expand-in-parallel / merge-deterministically core as
//!   [`crate::enumerate()`] — so each function's result is bit-identical
//!   to a serial enumeration, for any job count.
//! * **Checkpointing.** Each completed function becomes a
//!   [`store::FunctionRecord`]; the whole store is rewritten atomically
//!   (temp file + rename) after every completion, with records in task
//!   order. A campaign killed at *any* point leaves a valid store
//!   holding exactly the completed subset; resuming with
//!   [`CampaignConfig::resume`] skips those functions and converges on a
//!   store **byte-identical** to an uninterrupted run's.
//! * **Partial exploration.** Under a [`CampaignConfig::budget`] a
//!   function's search is *suspended* at the level boundary where the
//!   budget ran out: its record checkpoints the partial space and the
//!   unexpanded frontier ([`store::FrontierState`]), and a later run
//!   (or the next memo-service request — see [`explore_function`])
//!   restores the search and keeps deepening it from exactly that
//!   state. Because the level-order search only mutates its space at
//!   level barriers, the restored state is precisely what an
//!   uninterrupted run passes through: no persisted prefix is ever
//!   re-expanded, and once the search finally completes its record —
//!   and the store — is byte-identical to an uncapped run's.
//!   [`CampaignConfig::cancel`] suspends every in-flight search the
//!   same way, which is how the daemon turns SIGTERM into flushed
//!   checkpoints.
//! * **Observability.** Progress streams through the [`Observer`] trait
//!   (function started / level completed / function done / store
//!   flushed); the CLI renders it as a live progress line, and later
//!   metrics work can tap the same events.
//!
//! Observer callbacks run under the campaign's internal scheduler lock:
//! they see a consistent, ordered event stream, and must be quick.

pub mod store;

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vpo_opt::{PhaseId, Target};
use vpo_rtl::canon::{self, Fingerprint};
use vpo_rtl::{FuncFlags, Function, Program};

use crate::enumerate::{
    expand_parent, merge_parent, rematerialize, seed_root, AttemptRecord, Config, Enumeration,
    ExpandScratch, FrontierEntry, ReplayMode, SearchOutcome, SearchStats,
};
use crate::semantic::{SemanticConfig, SemanticContext};
use crate::space::{NodeId, SearchSpace};
use store::{FrontierState, FunctionRecord, PersistedNode, ResultStore, StoreError};

/// One unit of the campaign's task list: a function to explore, under a
/// campaign-unique qualified name (e.g. `sha::sha_transform`) that also
/// keys its record in the store.
#[derive(Clone, Debug)]
pub struct FunctionTask {
    /// Qualified name; must be unique within the campaign.
    pub name: String,
    /// The unoptimized function.
    pub func: Function,
    /// The program the function belongs to, for simulator execution.
    /// Required when the campaign runs the semantic merge tier
    /// ([`CampaignConfig::semantic`]); ignored otherwise.
    pub program: Option<Arc<Program>>,
}

/// Campaign options.
#[derive(Clone, Debug, Default)]
pub struct CampaignConfig {
    /// Per-function enumeration bounds. `enumerate.jobs` is ignored —
    /// the campaign pool is sized by [`CampaignConfig::jobs`].
    pub enumerate: Config,
    /// Worker pool size: `0` or `1` = run on the calling thread, `N` =
    /// `N` workers. The store contents are identical for any value.
    pub jobs: usize,
    /// Skip functions that already have a record in the store.
    pub resume: bool,
    /// Abandon the campaign after this many *fresh* checkpoints — the
    /// deterministic stand-in for killing the process mid-run (the store
    /// is left exactly as a kill at a checkpoint boundary would).
    pub stop_after: Option<usize>,
    /// Run the semantic merge tier (`--merge-tier semantic`) with these
    /// battery options. `None` (the default) keeps the fingerprint tier.
    /// Every task must then carry its [`FunctionTask::program`].
    pub semantic: Option<SemanticConfig>,
    /// Subsumption-prune behaviorally merged subtrees (`--merge-tier
    /// semantic-pruned`). Requires [`CampaignConfig::semantic`]. The
    /// pruned tier produces a genuinely smaller space, so its stores are
    /// distinct memo keys from annotation-tier ones ([`store::ConfigEcho`]).
    pub sem_pruned: bool,
    /// Per-function expansion budget for this run: once a search has
    /// merged this many parent expansions *in this session*, it is
    /// suspended at the next level boundary with its frontier persisted
    /// in its record, instead of running to completion. `None` (the
    /// default) explores without suspending. The budget is checked at
    /// level barriers, where merging is deterministic, so the suspended
    /// record — and the eventual completed one — is identical for any
    /// job count.
    pub budget: Option<u64>,
    /// Cooperative cancellation: when this flag flips to `true`, every
    /// in-flight search is suspended at its last merged level (frontier
    /// persisted, store flushed) and the campaign returns with
    /// [`CampaignSummary::interrupted`] set. The daemon's SIGTERM
    /// handler sets it; `None` never cancels.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// Why a campaign could not run (store trouble or a malformed task
/// list). Individual functions never fail: a function whose space
/// exceeds the bounds is recorded as truncated, like Table 3's `N/A`
/// rows.
#[derive(Debug)]
pub enum CampaignError {
    /// Reading or writing the result store failed.
    Store(StoreError),
    /// Two tasks share a qualified name.
    DuplicateName(String),
    /// The store exists but `resume` was not requested.
    StoreExists(PathBuf),
    /// The store holds a record for a function not in the task list.
    UnknownRecord(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Store(e) => write!(f, "{e}"),
            CampaignError::DuplicateName(n) => {
                write!(f, "duplicate task name `{n}` (task names key the store)")
            }
            CampaignError::StoreExists(p) => write!(
                f,
                "store {} already exists; pass --resume to continue it or remove it",
                p.display()
            ),
            CampaignError::UnknownRecord(n) => write!(
                f,
                "store holds a record for `{n}`, which is not in this campaign's task list"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<StoreError> for CampaignError {
    fn from(e: StoreError) -> Self {
        CampaignError::Store(e)
    }
}

/// Campaign progress events. All methods default to no-ops; implement
/// the ones you care about. Callbacks are invoked under the scheduler
/// lock — they are totally ordered and must not block.
#[allow(unused_variables)]
pub trait Observer: Sync {
    /// A function was taken off the pending list and its root seeded.
    fn function_started(&self, index: usize, total: usize, name: &str) {}
    /// One level of a function's space was merged.
    fn level_completed(&self, name: &str, level: u32, frontier: usize, nodes: usize) {}
    /// A function's space is fully explored (or truncated) and recorded.
    fn function_done(&self, index: usize, total: usize, record: &FunctionRecord) {}
    /// A function's search was suspended at a level boundary with its
    /// frontier persisted (budget exhausted or campaign cancelled).
    fn function_suspended(&self, index: usize, total: usize, record: &FunctionRecord) {}
    /// The store was rewritten on disk with `completed` of `total`
    /// records.
    fn store_flushed(&self, completed: usize, total: usize) {}
}

/// The do-nothing observer.
pub struct NullObserver;

impl Observer for NullObserver {}

/// What a finished (or interrupted) campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    /// Records of all recorded functions in task order — resumed and
    /// suspended ones included, so this is exactly the store contents.
    pub records: Vec<FunctionRecord>,
    /// Functions skipped because the store already held their terminal
    /// (complete or permanently truncated) record.
    pub resumed: usize,
    /// Functions this run carried to a terminal record.
    pub explored: usize,
    /// Functions suspended at a persisted frontier by the budget or a
    /// cancellation.
    pub suspended: usize,
    /// Functions restored from a persisted frontier and deepened.
    pub deepened: usize,
    /// Parent expansions merged by this run, across all functions — the
    /// node counter that proves resumed runs never re-expand a stored
    /// prefix (each distinct instance is expanded exactly once over a
    /// function's lifetime, however many sessions that spans).
    pub expanded: u64,
    /// Whether [`CampaignConfig::stop_after`] or
    /// [`CampaignConfig::cancel`] cut the run short.
    pub interrupted: bool,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// One in-flight function search: the per-function state of
/// `enumerate`'s level loop, opened up so the shared pool can claim
/// individual parent expansions.
struct Search<'p> {
    task: usize,
    root: Arc<Function>,
    space: SearchSpace,
    stats: SearchStats,
    paranoid_bytes: HashMap<(Fingerprint, FuncFlags), Vec<u8>>,
    /// Semantic-tier state (signature classes + shared simulator), when
    /// the campaign runs under `--merge-tier semantic`. Only touched at
    /// merge time, which is serial per function.
    sem: Option<SemanticContext<'p>>,
    start: Instant,
    /// Levels merged so far (children of the current frontier land on
    /// `level + 1`).
    level: u32,
    frontier: Vec<FrontierEntry>,
    /// One slot per frontier entry, filled by whichever worker expanded
    /// it.
    slots: Vec<Option<Vec<AttemptRecord>>>,
    /// Frontier entries handed out to workers.
    claimed: usize,
    /// Slots deposited back.
    filled: usize,
    /// Parent expansions merged *this session* — the quantity
    /// [`CampaignConfig::budget`] caps. Restored searches start from
    /// zero again: the budget is per request, not per lifetime.
    session_expanded: u64,
}

/// A claimed parent expansion, self-contained so the worker needs no
/// lock while it runs.
struct Job {
    task: usize,
    parent: usize,
    root: Arc<Function>,
    func: Arc<Function>,
    seq: Vec<PhaseId>,
    skip: Option<PhaseId>,
}

struct DriverState<'p> {
    next_pending: usize,
    active: Vec<Search<'p>>,
    /// One slot per task; a `Some` holds either a terminal record or a
    /// suspended checkpoint awaiting restoration.
    completed: Vec<Option<FunctionRecord>>,
    fresh: usize,
    suspended: usize,
    deepened: usize,
    expanded: u64,
    halt: bool,
    failure: Option<CampaignError>,
}

/// Whether a record is a suspended checkpoint a later run can deepen
/// (as opposed to a terminal record: complete, or permanently truncated
/// by a bound).
fn is_resumable(rec: &FunctionRecord) -> bool {
    !rec.complete && rec.frontier.is_some()
}

struct Ctx<'a> {
    names: &'a [String],
    funcs: &'a [Arc<Function>],
    programs: &'a [Option<Arc<Program>>],
    target: &'a Target,
    config: &'a CampaignConfig,
    store_path: Option<&'a Path>,
    observer: &'a dyn Observer,
    state: Mutex<DriverState<'a>>,
    cv: Condvar,
}

impl Ctx<'_> {
    fn cancelled(&self) -> bool {
        self.config.cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

/// Runs a campaign over `tasks`, checkpointing to `store_path` (no
/// persistence when `None`).
///
/// Returns the summary, or an error before any work starts if the task
/// list or store is unusable. The records in the summary — and the
/// bytes in the store — are identical for any
/// [`CampaignConfig::jobs`], and an interrupted-then-resumed campaign
/// converges on the same bytes as an uninterrupted one.
pub fn run(
    tasks: Vec<FunctionTask>,
    target: &Target,
    store_path: Option<&Path>,
    config: &CampaignConfig,
    observer: &dyn Observer,
) -> Result<CampaignSummary, CampaignError> {
    let start = Instant::now();
    let mut seen = HashSet::new();
    for t in &tasks {
        if !seen.insert(t.name.as_str()) {
            return Err(CampaignError::DuplicateName(t.name.clone()));
        }
    }

    let mut completed: Vec<Option<FunctionRecord>> = vec![None; tasks.len()];
    let mut resumed = 0usize;
    if let Some(path) = store_path {
        if path.exists() {
            if !config.resume {
                return Err(CampaignError::StoreExists(path.to_owned()));
            }
            let prior = ResultStore::load(path)?;
            prior.check_config(&config.enumerate, config.semantic.as_ref(), config.sem_pruned)?;
            for rec in prior.records {
                match tasks.iter().position(|t| t.name == rec.name) {
                    Some(i) => {
                        // A suspended checkpoint is not a finished
                        // function: it stays in `completed` as the
                        // restore source, but the task will be
                        // activated (and deepened) again.
                        if !is_resumable(&rec) {
                            resumed += 1;
                        }
                        completed[i] = Some(rec);
                    }
                    None => return Err(CampaignError::UnknownRecord(rec.name)),
                }
            }
        }
    }
    drive(tasks, target, store_path, config, observer, completed, resumed, start)
}

/// What one memo-service request produced: the function's record after
/// this request's work, plus how much expansion the request paid for.
#[derive(Clone, Debug)]
pub struct RequestOutcome {
    /// The record — terminal, or suspended with a fresh frontier
    /// checkpoint. `None` only when the request was cancelled before
    /// its search produced a single checkpoint (and no prior existed).
    pub record: Option<FunctionRecord>,
    /// Parent expansions merged by this request; `0` for a warm answer.
    pub expanded: u64,
}

/// Serves one function — the daemon's per-query entry point.
///
/// A *warm* query (the prior record is terminal) returns it immediately
/// without spawning any enumeration worker. A *cold* or *partial* query
/// runs the campaign driver on just this task — restoring the persisted
/// frontier if the prior record carries one — under
/// [`CampaignConfig::budget`], and returns the resulting record:
/// complete if the budget sufficed, suspended with a new frontier
/// checkpoint otherwise. The caller owns persistence (the daemon flushes
/// its whole store, in task order, after every request that ran).
pub fn explore_function(
    task: FunctionTask,
    target: &Target,
    config: &CampaignConfig,
    prior: Option<FunctionRecord>,
) -> Result<RequestOutcome, CampaignError> {
    if let Some(rec) = &prior {
        if rec.name != task.name {
            return Err(CampaignError::UnknownRecord(rec.name.clone()));
        }
        if !is_resumable(rec) {
            return Ok(RequestOutcome { record: prior, expanded: 0 });
        }
    }
    let start = Instant::now();
    let summary = drive(vec![task], target, None, config, &NullObserver, vec![prior], 0, start)?;
    Ok(RequestOutcome { record: summary.records.into_iter().next(), expanded: summary.expanded })
}

/// The scheduler core shared by [`run`] and [`explore_function`]:
/// drives `tasks` on the worker pool, with `completed` pre-seeded from
/// whatever prior records the caller resumed.
#[allow(clippy::too_many_arguments)]
fn drive(
    tasks: Vec<FunctionTask>,
    target: &Target,
    store_path: Option<&Path>,
    config: &CampaignConfig,
    observer: &dyn Observer,
    completed: Vec<Option<FunctionRecord>>,
    resumed: usize,
    start: Instant,
) -> Result<CampaignSummary, CampaignError> {
    let mut names = Vec::with_capacity(tasks.len());
    let mut funcs = Vec::with_capacity(tasks.len());
    let mut programs = Vec::with_capacity(tasks.len());
    for t in tasks {
        names.push(t.name);
        funcs.push(Arc::new(t.func));
        programs.push(t.program);
    }
    let ctx = Ctx {
        names: &names,
        funcs: &funcs,
        programs: &programs,
        target,
        config,
        store_path,
        observer,
        state: Mutex::new(DriverState {
            next_pending: 0,
            active: Vec::new(),
            completed,
            fresh: 0,
            suspended: 0,
            deepened: 0,
            expanded: 0,
            halt: false,
            failure: None,
        }),
        cv: Condvar::new(),
    };

    let workers = config.jobs.max(1);
    if workers == 1 {
        worker(&ctx);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker(&ctx));
            }
        });
    }

    let st = ctx.state.into_inner().unwrap();
    if let Some(err) = st.failure {
        return Err(err);
    }
    Ok(CampaignSummary {
        records: st.completed.into_iter().flatten().collect(),
        resumed,
        explored: st.fresh,
        suspended: st.suspended,
        deepened: st.deepened,
        expanded: st.expanded,
        interrupted: st.halt,
        elapsed: start.elapsed(),
    })
}

/// The worker loop: claim a parent expansion from any in-flight search
/// (activating the next pending function when every frontier is fully
/// claimed), expand it without holding the lock, deposit the records,
/// and merge/checkpoint when a level or function completes.
fn worker(ctx: &Ctx<'_>) {
    // Scratch buffers persist across every job this worker ever runs, so
    // steady-state expansions reuse the same heap blocks regardless of
    // which function the claimed parent belongs to.
    let mut scratch = ExpandScratch::new();
    loop {
        let job = {
            let mut st = ctx.state.lock().unwrap();
            loop {
                if st.halt || st.failure.is_some() {
                    return;
                }
                if ctx.cancelled() {
                    suspend_all(ctx, &mut st);
                    st.halt = true;
                    ctx.cv.notify_all();
                    return;
                }
                if let Some(job) = claim(ctx, &mut st) {
                    break job;
                }
                // Skip tasks the store already answers; a suspended
                // checkpoint is *not* an answer — it gets restored.
                while st.next_pending < ctx.names.len()
                    && st.completed[st.next_pending].as_ref().is_some_and(|r| !is_resumable(r))
                {
                    st.next_pending += 1;
                }
                if st.next_pending < ctx.names.len() {
                    activate(ctx, &mut st);
                    continue;
                }
                if st.active.is_empty() {
                    return;
                }
                // Every frontier entry is claimed but some worker is
                // still expanding; its deposit will wake us.
                st = ctx.cv.wait(st).unwrap();
            }
        };
        let mut local = HashSet::new();
        let records = expand_parent(
            &job.root,
            ctx.target,
            &ctx.config.enumerate,
            &job.func,
            &job.seq,
            job.skip,
            // Dedup within this parent's own attempt stream; the merge
            // step decides insertion against the real space.
            |fp, flags| !local.insert((fp, flags)),
            &mut scratch,
        );
        let mut st = ctx.state.lock().unwrap();
        deposit(ctx, &mut st, job.task, job.parent, records);
        ctx.cv.notify_all();
    }
}

/// Hands out the next unclaimed frontier entry, preferring the earliest
/// activated search — later functions only soak up lanes the earlier
/// ones cannot fill.
fn claim(ctx: &Ctx<'_>, st: &mut DriverState<'_>) -> Option<Job> {
    let config = &ctx.config.enumerate;
    let tm = crate::telemetry::global();
    for (rank, s) in st.active.iter_mut().enumerate() {
        if s.claimed < s.frontier.len() {
            let parent = s.claimed;
            s.claimed += 1;
            tm.campaign_claims.inc();
            if rank > 0 {
                // A lane the earliest in-flight function could not fill,
                // soaked up by a later one — a cross-function steal.
                tm.campaign_steals.inc();
            }
            let entry = &s.frontier[parent];
            let skip = if config.skip_just_applied {
                s.space.node(entry.id).discovered_from.map(|(_, p)| p)
            } else {
                None
            };
            return Some(Job {
                task: s.task,
                parent,
                root: Arc::clone(&s.root),
                func: entry.func.clone(),
                seq: entry.seq.clone(),
                skip,
            });
        }
    }
    None
}

/// Puts the next pending function in flight: seeds a fresh search, or —
/// when its record holds a suspended checkpoint — restores the search
/// from the persisted frontier and deepens it.
fn activate<'a>(ctx: &Ctx<'a>, st: &mut DriverState<'a>) {
    let task = st.next_pending;
    st.next_pending += 1;
    let search = match st.completed[task].as_ref().filter(|r| is_resumable(r)) {
        Some(rec) => {
            st.deepened += 1;
            crate::telemetry::global().campaign_functions_deepened.inc();
            restore_search(ctx, task, rec)
        }
        None => fresh_search(ctx, task),
    };
    st.active.push(search);
    crate::telemetry::global().campaign_functions_started.inc();
    ctx.observer.function_started(task, ctx.names.len(), &ctx.names[task]);
}

/// Seeds a search at the unoptimized root.
fn fresh_search<'a>(ctx: &Ctx<'a>, task: usize) -> Search<'a> {
    let root = Arc::clone(&ctx.funcs[task]);
    let mut space = SearchSpace::new();
    let mut paranoid_bytes = HashMap::new();
    let root_id = seed_root(&mut space, &mut paranoid_bytes, &ctx.config.enumerate, &root);
    let sem = ctx.config.semantic.as_ref().map(|sc| {
        let program = ctx.programs[task]
            .as_deref()
            .expect("semantic campaign tasks must carry their program");
        let mut sem = SemanticContext::new(program, &root, sc, ctx.config.enumerate.paranoid);
        if ctx.config.sem_pruned {
            sem.enable_pruning();
        }
        let sig = sem.signature(&root);
        sem.register(sig, root_id, &root);
        sem
    });
    let frontier = vec![FrontierEntry { id: root_id, func: Arc::clone(&root), seq: Vec::new() }];
    Search {
        task,
        root,
        space,
        stats: SearchStats::default(),
        paranoid_bytes,
        sem,
        start: Instant::now(),
        level: 0,
        slots: frontier.iter().map(|_| None).collect(),
        frontier,
        claimed: 0,
        filled: 0,
        session_expanded: 0,
    }
}

/// Rebuilds a suspended search from its checkpoint so expansion
/// continues exactly where it left off.
///
/// The checkpoint persists only the space topology; everything derived
/// from function *bodies* is regrown by replaying discovery sequences
/// from the unoptimized root ([`rematerialize`]): the frontier
/// instances themselves, the canonical byte table in paranoid mode, and
/// — under the semantic tier — the signature classes, re-registered for
/// every founder in id order (discovery order), reproducing the exact
/// class table the original run had at this barrier. Search counters
/// resume from the record's persisted values, so the completed record's
/// statistics equal an uncapped run's.
fn restore_search<'a>(ctx: &Ctx<'a>, task: usize, rec: &FunctionRecord) -> Search<'a> {
    let fs = rec.frontier.as_ref().expect("restoring a search without a checkpoint");
    let config = &ctx.config.enumerate;
    let root = Arc::clone(&ctx.funcs[task]);
    let mut space = SearchSpace::new();
    for pn in &fs.nodes {
        space.insert(pn.to_node());
    }
    let remat = |id: NodeId| -> Function {
        // The root rematerializes trivially (empty discovery sequence),
        // but cloning it directly skips the replay walk.
        rematerialize(&root, ctx.target, &space, id)
    };
    let mut paranoid_bytes = HashMap::new();
    if config.paranoid {
        for (id, node) in space.iter() {
            paranoid_bytes.insert((node.fp, node.flags), canon::canonical_bytes(&remat(id)));
        }
    }
    let sem = ctx.config.semantic.as_ref().map(|sc| {
        let program = ctx.programs[task]
            .as_deref()
            .expect("semantic campaign tasks must carry their program");
        let mut sem = SemanticContext::new(program, &root, sc, config.paranoid);
        if ctx.config.sem_pruned {
            sem.enable_pruning();
        }
        // Pruned nodes are never founders (their `sem_rep` resolves
        // through the parent's pruned edge), so the founder walk below
        // re-registers only representatives and re-records every merged
        // node's class membership — rebuilding the exact class table
        // *and* node→representative map (the pruned tier's lookahead
        // consults it) the original run had at this barrier.
        for (id, _) in space.iter() {
            let rep = space.sem_rep(id);
            if rep != id {
                sem.record_merge(id, rep);
                continue;
            }
            let func = if id == space.root() { Arc::clone(&root) } else { Arc::new(remat(id)) };
            let sig = sem.signature(&func);
            sem.register(sig, id, &func);
        }
        sem
    });
    let naive = config.replay == ReplayMode::NaiveReplay;
    let frontier: Vec<FrontierEntry> = fs
        .frontier
        .iter()
        .map(|&id| {
            let id = NodeId(id);
            let func = if id == space.root() { Arc::clone(&root) } else { Arc::new(remat(id)) };
            let seq = if naive { space.discovery_sequence(id) } else { Vec::new() };
            FrontierEntry { id, func, seq }
        })
        .collect();
    let stats = SearchStats {
        attempted_phases: rec.attempted_phases,
        active_attempts: rec.active_attempts,
        phases_applied: rec.phases_applied,
        // Wall time is not persisted (it never reaches store bytes).
        elapsed: Duration::ZERO,
        collisions: rec.collisions,
        sem_merges: rec.sem_merges,
        sem_collisions: rec.sem_collisions,
        sem_escalations: rec.sem_escalations,
        sem_prunes: rec.sem_prunes,
        sem_mask_fallbacks: rec.sem_mask_fallbacks,
    };
    Search {
        task,
        root,
        space,
        stats,
        paranoid_bytes,
        sem,
        start: Instant::now(),
        level: fs.level,
        slots: frontier.iter().map(|_| None).collect(),
        frontier,
        claimed: 0,
        filled: 0,
        session_expanded: 0,
    }
}

/// Parks one parent's attempt records; when the level's last expansion
/// lands, merges the level in frontier order (restoring the serial
/// discovery order) and either refills the frontier or finalizes and
/// checkpoints the function.
fn deposit(
    ctx: &Ctx<'_>,
    st: &mut DriverState<'_>,
    task: usize,
    parent: usize,
    records: Vec<AttemptRecord>,
) {
    // A checkpoint that reached `stop_after` halts the campaign the
    // moment it lands; expansions still in flight on other workers are
    // discarded so the store stays exactly at the cut boundary instead
    // of racing in one more record.
    if st.halt || st.failure.is_some() {
        return;
    }
    let pos = st
        .active
        .iter()
        .position(|s| s.task == task)
        .expect("deposit for a search no longer in flight");
    let s = &mut st.active[pos];
    debug_assert!(s.slots[parent].is_none(), "parent expanded twice");
    s.slots[parent] = Some(records);
    s.filled += 1;
    if s.filled < s.frontier.len() {
        return;
    }

    // Level barrier reached: merge every parent in frontier order.
    let tm = crate::telemetry::global();
    let config = &ctx.config.enumerate;
    s.level += 1;
    tm.peak_frontier.set_max(s.frontier.len() as u64);
    let merged = s.frontier.len() as u64;
    s.session_expanded += merged;
    let frontier = std::mem::take(&mut s.frontier);
    let slots = std::mem::take(&mut s.slots);
    let mut next = Vec::new();
    let mut truncated = false;
    for (entry, slot) in frontier.iter().zip(slots) {
        let records = slot.expect("barrier reached with an unfilled slot");
        if !merge_parent(
            &mut s.space,
            &mut s.stats,
            &mut s.paranoid_bytes,
            config,
            ctx.target,
            s.level,
            entry,
            records,
            &mut next,
            s.sem.as_mut(),
        ) {
            truncated = true;
            break;
        }
        if next.len() > config.max_level_width {
            truncated = true;
            break;
        }
    }
    tm.levels.inc();
    ctx.observer.level_completed(&ctx.names[task], s.level, next.len(), s.space.len());
    let over_budget = ctx.config.budget.is_some_and(|b| s.session_expanded >= b);

    if !truncated && !next.is_empty() {
        if over_budget {
            // Budget exhausted with work left: checkpoint the frontier
            // the next session will expand.
            let ids = next.iter().map(|e| e.id.0).collect();
            st.expanded += merged;
            suspend(ctx, st, pos, ids);
        } else {
            s.slots = next.iter().map(|_| None).collect();
            s.frontier = next;
            s.claimed = 0;
            s.filled = 0;
            st.expanded += merged;
        }
        return;
    }
    st.expanded += merged;

    // Function complete (or truncated): build its record and checkpoint.
    let mut s = st.active.remove(pos);
    s.space.compute_weights().expect("phase-order space must be acyclic");
    s.stats.elapsed = s.start.elapsed();
    let outcome =
        if truncated { SearchOutcome::TooBig { level: s.level } } else { SearchOutcome::Complete };
    tm.campaign_functions_completed.inc();
    if truncated {
        tm.campaign_functions_truncated.inc();
    }
    let e = Enumeration { space: s.space, outcome, stats: s.stats };
    let record = FunctionRecord::from_enumeration(ctx.names[task].clone(), &s.root, &e);
    st.completed[task] = Some(record.clone());
    st.fresh += 1;
    if !flush_store(ctx, st) {
        return;
    }
    ctx.observer.function_done(task, ctx.names.len(), &record);
    if ctx.config.stop_after == Some(st.fresh) {
        st.halt = true;
    }
}

/// Suspends the in-flight search at `pos` in `st.active`: its partial
/// space and the given frontier ids become a [`FrontierState`]
/// checkpoint inside an incomplete record, flushed like any other
/// checkpoint. Used at a budget barrier (with the *next* level's
/// frontier) and on cancellation (with the current, unmerged frontier —
/// in-flight expansions are discarded, which is sound because the space
/// only mutates at barriers).
fn suspend(ctx: &Ctx<'_>, st: &mut DriverState<'_>, pos: usize, frontier_ids: Vec<u32>) {
    let mut s = st.active.remove(pos);
    let task = s.task;
    s.stats.elapsed = s.start.elapsed();
    let fs = FrontierState {
        level: s.level,
        nodes: s.space.iter().map(|(_, n)| PersistedNode::of(n)).collect(),
        frontier: frontier_ids,
    };
    // Weights stay uncomputed: they are only defined on a finished
    // space, and the record's statistics don't read them.
    let e = Enumeration {
        space: s.space,
        outcome: SearchOutcome::TooBig { level: s.level },
        stats: s.stats,
    };
    let mut record = FunctionRecord::from_enumeration(ctx.names[task].clone(), &s.root, &e);
    record.frontier = Some(fs);
    st.completed[task] = Some(record.clone());
    st.suspended += 1;
    crate::telemetry::global().campaign_functions_suspended.inc();
    if !flush_store(ctx, st) {
        return;
    }
    ctx.observer.function_suspended(task, ctx.names.len(), &record);
}

/// Suspends every in-flight search (cancellation path). Each search is
/// checkpointed at its last merged level; claimed-but-unmerged
/// expansions are dropped.
fn suspend_all(ctx: &Ctx<'_>, st: &mut DriverState<'_>) {
    while let Some(s) = st.active.first() {
        let ids = s.frontier.iter().map(|e| e.id.0).collect();
        suspend(ctx, st, 0, ids);
        if st.failure.is_some() {
            return;
        }
    }
}

/// Rewrites the store with the current record set (no-op without a
/// store path). Returns `false` — with `st.failure` set — if the write
/// failed.
fn flush_store(ctx: &Ctx<'_>, st: &mut DriverState<'_>) -> bool {
    let Some(path) = ctx.store_path else { return true };
    let tm = crate::telemetry::global();
    let snapshot = ResultStore {
        config: store::ConfigEcho::of(
            &ctx.config.enumerate,
            ctx.config.semantic.as_ref(),
            ctx.config.sem_pruned,
        ),
        records: st.completed.iter().flatten().cloned().collect(),
    };
    let flush_start = Instant::now();
    match snapshot.save(path) {
        Ok(()) => {
            tm.store_flush_wall_ns.observe(flush_start.elapsed());
            tm.store_flushes.inc();
            tm.store_bytes.set(std::fs::metadata(path).map(|m| m.len()).unwrap_or(0));
            ctx.observer.store_flushed(snapshot.records.len(), ctx.names.len());
            true
        }
        Err(err) => {
            st.failure = Some(CampaignError::Store(err));
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::store::MemoEntry;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tasks_from(src: &str) -> Vec<FunctionTask> {
        vpo_frontend::compile(src)
            .unwrap()
            .functions
            .into_iter()
            .map(|f| FunctionTask { name: f.name.clone(), func: f, program: None })
            .collect()
    }

    fn three_functions() -> Vec<FunctionTask> {
        tasks_from(
            r#"
            int add(int a, int b) { return a + b + a; }
            int tri(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }
            int pick(int a, int b) { if (a > b) return a - b; return b - a; }
            "#,
        )
    }

    fn tmp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vpoc_campaign_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("campaign.store")
    }

    #[test]
    fn records_match_direct_enumeration() {
        let tasks = three_functions();
        let target = Target::default();
        let summary =
            run(tasks.clone(), &target, None, &CampaignConfig::default(), &NullObserver).unwrap();
        assert_eq!(summary.records.len(), 3);
        assert_eq!(summary.explored, 3);
        assert_eq!(summary.resumed, 0);
        assert!(!summary.interrupted);
        for (task, rec) in tasks.iter().zip(&summary.records) {
            let e = crate::enumerate(&task.func, &target, &Config::default());
            let direct = FunctionRecord::from_enumeration(task.name.clone(), &task.func, &e);
            assert_eq!(*rec, direct, "{}", task.name);
        }
    }

    #[test]
    fn store_bytes_identical_for_any_job_count() {
        let target = Target::default();
        let mut stores = Vec::new();
        for jobs in [0usize, 1, 4, 8] {
            let path = tmp_store(&format!("jobs{jobs}"));
            std::fs::remove_file(&path).ok();
            let config = CampaignConfig { jobs, ..CampaignConfig::default() };
            run(three_functions(), &target, Some(&path), &config, &NullObserver).unwrap();
            stores.push(std::fs::read(&path).unwrap());
            std::fs::remove_file(&path).ok();
        }
        for s in &stores[1..] {
            assert_eq!(*s, stores[0], "store bytes differ across job counts");
        }
    }

    #[test]
    fn interrupt_and_resume_converge_for_every_cut_point() {
        let target = Target::default();
        let uninterrupted = tmp_store("full");
        std::fs::remove_file(&uninterrupted).ok();
        run(
            three_functions(),
            &target,
            Some(&uninterrupted),
            &CampaignConfig { jobs: 4, ..CampaignConfig::default() },
            &NullObserver,
        )
        .unwrap();
        let want = std::fs::read(&uninterrupted).unwrap();
        for cut in 1..=2usize {
            for jobs in [1usize, 4] {
                let path = tmp_store(&format!("cut{cut}_j{jobs}"));
                std::fs::remove_file(&path).ok();
                let stopped =
                    CampaignConfig { jobs, stop_after: Some(cut), ..CampaignConfig::default() };
                let s1 =
                    run(three_functions(), &target, Some(&path), &stopped, &NullObserver).unwrap();
                assert!(s1.interrupted, "cut {cut} jobs {jobs}");
                assert_eq!(s1.explored, cut);
                let resume = CampaignConfig { jobs, resume: true, ..CampaignConfig::default() };
                let s2 =
                    run(three_functions(), &target, Some(&path), &resume, &NullObserver).unwrap();
                assert!(!s2.interrupted);
                assert_eq!(s2.resumed, cut);
                assert_eq!(s2.explored, 3 - cut);
                assert_eq!(
                    std::fs::read(&path).unwrap(),
                    want,
                    "cut {cut} jobs {jobs}: resumed store differs from uninterrupted"
                );
                std::fs::remove_file(&path).ok();
            }
        }
        std::fs::remove_file(&uninterrupted).ok();
    }

    #[test]
    fn truncated_functions_are_recorded_not_fatal() {
        let target = Target::default();
        let config = CampaignConfig {
            enumerate: Config { max_nodes: 5, ..Config::default() },
            ..CampaignConfig::default()
        };
        let summary = run(three_functions(), &target, None, &config, &NullObserver).unwrap();
        assert_eq!(summary.records.len(), 3);
        assert!(summary.records.iter().any(|r| !r.complete), "a 5-node cap must truncate");
        for r in &summary.records {
            if !r.complete {
                assert!(r.truncated_level > 0);
                assert!(r.fn_instances <= 5);
            }
        }
    }

    #[test]
    fn observer_sees_the_whole_lifecycle() {
        struct Counting {
            started: AtomicUsize,
            levels: AtomicUsize,
            done: AtomicUsize,
            flushed: AtomicUsize,
        }
        impl Observer for Counting {
            fn function_started(&self, _i: usize, _t: usize, _n: &str) {
                self.started.fetch_add(1, Ordering::Relaxed);
            }
            fn level_completed(&self, _n: &str, _l: u32, _f: usize, _s: usize) {
                self.levels.fetch_add(1, Ordering::Relaxed);
            }
            fn function_done(&self, _i: usize, _t: usize, _r: &FunctionRecord) {
                self.done.fetch_add(1, Ordering::Relaxed);
            }
            fn store_flushed(&self, _c: usize, _t: usize) {
                self.flushed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let obs = Counting {
            started: AtomicUsize::new(0),
            levels: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            flushed: AtomicUsize::new(0),
        };
        let path = tmp_store("observer");
        std::fs::remove_file(&path).ok();
        let target = Target::default();
        run(
            three_functions(),
            &target,
            Some(&path),
            &CampaignConfig { jobs: 2, ..CampaignConfig::default() },
            &obs,
        )
        .unwrap();
        assert_eq!(obs.started.load(Ordering::Relaxed), 3);
        assert_eq!(obs.done.load(Ordering::Relaxed), 3);
        assert_eq!(obs.flushed.load(Ordering::Relaxed), 3);
        assert!(obs.levels.load(Ordering::Relaxed) >= 3, "each function has at least one level");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn task_list_and_store_misuse_are_rejected() {
        let target = Target::default();
        let mut tasks = three_functions();
        tasks[1].name = tasks[0].name.clone();
        assert!(matches!(
            run(tasks, &target, None, &CampaignConfig::default(), &NullObserver),
            Err(CampaignError::DuplicateName(_))
        ));

        // Existing store without --resume.
        let path = tmp_store("misuse");
        std::fs::remove_file(&path).ok();
        run(three_functions(), &target, Some(&path), &CampaignConfig::default(), &NullObserver)
            .unwrap();
        assert!(matches!(
            run(three_functions(), &target, Some(&path), &CampaignConfig::default(), &NullObserver),
            Err(CampaignError::StoreExists(_))
        ));

        // Resume under different bounds.
        let other = CampaignConfig {
            enumerate: Config { max_nodes: 9, ..Config::default() },
            resume: true,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            run(three_functions(), &target, Some(&path), &other, &NullObserver),
            Err(CampaignError::Store(StoreError::ConfigMismatch(_)))
        ));

        // Resume against a store whose records are not in the task list.
        let fewer = vec![three_functions().swap_remove(0)];
        let resume = CampaignConfig { resume: true, ..CampaignConfig::default() };
        assert!(matches!(
            run(fewer, &target, Some(&path), &resume, &NullObserver),
            Err(CampaignError::UnknownRecord(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_capped_sessions_converge_on_uncapped_bytes() {
        let target = Target::default();
        let uncapped = tmp_store("uncapped");
        std::fs::remove_file(&uncapped).ok();
        let full = run(
            three_functions(),
            &target,
            Some(&uncapped),
            &CampaignConfig::default(),
            &NullObserver,
        )
        .unwrap();
        let want = std::fs::read(&uncapped).unwrap();
        let total_nodes: u64 = full.records.iter().map(|r| r.fn_instances).sum();
        assert_eq!(full.expanded, total_nodes, "each instance is expanded exactly once");

        let path = tmp_store("budget");
        std::fs::remove_file(&path).ok();
        let mut expanded = 0u64;
        let mut sessions = 0usize;
        let mut deepened = 0usize;
        loop {
            let config = CampaignConfig {
                budget: Some(1),
                resume: path.exists(),
                ..CampaignConfig::default()
            };
            let s = run(three_functions(), &target, Some(&path), &config, &NullObserver).unwrap();
            expanded += s.expanded;
            deepened += s.deepened;
            sessions += 1;
            assert!(sessions < 200, "budgeted sessions must converge");
            if s.records.iter().all(|r| !MemoEntry::new(r).is_resumable()) {
                break;
            }
            assert!(s.suspended > 0, "an unfinished budgeted session suspends something");
        }
        assert!(sessions > 1, "budget 1 cannot finish these spaces in one session");
        assert!(deepened > 0, "later sessions restore persisted frontiers");
        assert_eq!(expanded, total_nodes, "budgeted sessions must never re-expand a stored prefix");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            want,
            "finished budgeted store differs from the uncapped store"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&uncapped).ok();
    }

    #[test]
    fn cancellation_suspends_and_resume_converges() {
        struct CancelAfterLevels(Arc<AtomicBool>, AtomicUsize);
        impl Observer for CancelAfterLevels {
            fn level_completed(&self, _n: &str, _l: u32, _f: usize, _s: usize) {
                if self.1.fetch_add(1, Ordering::Relaxed) + 1 >= 2 {
                    self.0.store(true, Ordering::Relaxed);
                }
            }
        }
        let target = Target::default();
        let uncapped = tmp_store("cancel_full");
        std::fs::remove_file(&uncapped).ok();
        run(three_functions(), &target, Some(&uncapped), &CampaignConfig::default(), &NullObserver)
            .unwrap();
        let want = std::fs::read(&uncapped).unwrap();

        let path = tmp_store("cancel");
        std::fs::remove_file(&path).ok();
        let flag = Arc::new(AtomicBool::new(false));
        let obs = CancelAfterLevels(Arc::clone(&flag), AtomicUsize::new(0));
        let config =
            CampaignConfig { cancel: Some(Arc::clone(&flag)), ..CampaignConfig::default() };
        let s = run(three_functions(), &target, Some(&path), &config, &obs).unwrap();
        assert!(s.interrupted, "cancellation must interrupt the campaign");
        assert!(s.suspended > 0, "the in-flight search is checkpointed");

        let resume = CampaignConfig { resume: true, ..CampaignConfig::default() };
        let s = run(three_functions(), &target, Some(&path), &resume, &NullObserver).unwrap();
        assert!(!s.interrupted);
        assert!(s.deepened > 0, "the cancelled search resumes from its frontier");
        assert_eq!(std::fs::read(&path).unwrap(), want);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&uncapped).ok();
    }

    #[test]
    fn explore_function_serves_cold_partial_and_warm() {
        let target = Target::default();
        let tasks = three_functions();
        let task = tasks[1].clone(); // `tri` has the deepest space here
        let direct = crate::enumerate(&task.func, &target, &Config::default());
        let want = FunctionRecord::from_enumeration(task.name.clone(), &task.func, &direct);

        // Cold query under a tiny budget: best-so-far plus a frontier.
        let config = CampaignConfig { budget: Some(1), ..CampaignConfig::default() };
        let out = explore_function(task.clone(), &target, &config, None).unwrap();
        let first = out.record.clone().unwrap();
        assert!(out.expanded > 0);
        assert!(MemoEntry::new(&first).is_resumable(), "budget 1 cannot finish this space");
        assert!(first.fn_instances < want.fn_instances);

        // Repeated queries strictly deepen until the record completes.
        let mut rec = first;
        let mut total = out.expanded;
        let mut rounds = 0;
        while MemoEntry::new(&rec).is_resumable() {
            let out = explore_function(task.clone(), &target, &config, Some(rec)).unwrap();
            assert!(out.expanded > 0, "a partial query must make progress");
            rec = out.record.unwrap();
            total += out.expanded;
            rounds += 1;
            assert!(rounds < 100, "partial queries must converge");
        }
        assert_eq!(rec, want, "converged record must equal direct enumeration");
        assert_eq!(total, want.fn_instances, "no prefix may be re-expanded across queries");

        // Warm query: answered from the memo, no expansion at all.
        let out = explore_function(task.clone(), &target, &config, Some(rec.clone())).unwrap();
        assert_eq!(out.expanded, 0);
        assert_eq!(out.record.unwrap(), rec);

        // A prior under the wrong name is rejected.
        let mut wrong = rec;
        wrong.name = "other::fn".into();
        assert!(matches!(
            explore_function(task, &target, &config, Some(wrong)),
            Err(CampaignError::UnknownRecord(_))
        ));
    }

    #[test]
    fn suspended_records_flow_through_the_observer() {
        struct Suspends(AtomicUsize);
        impl Observer for Suspends {
            fn function_suspended(&self, _i: usize, _t: usize, r: &FunctionRecord) {
                assert!(r.frontier.is_some());
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let obs = Suspends(AtomicUsize::new(0));
        let target = Target::default();
        let config = CampaignConfig { budget: Some(1), ..CampaignConfig::default() };
        let s = run(three_functions(), &target, None, &config, &obs).unwrap();
        assert_eq!(s.suspended, obs.0.load(Ordering::Relaxed));
        assert!(s.suspended > 0);
        // Without a store, the summary still carries the checkpoints.
        assert!(s.records.iter().any(|r| MemoEntry::new(r).is_resumable()));
    }

    fn semantic_tasks() -> Vec<FunctionTask> {
        let program = Arc::new(
            vpo_frontend::compile(
                r#"
                int add(int a, int b) { return a + b + a; }
                int tri(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }
                int dbl(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i * 2; return s; }
                "#,
            )
            .unwrap(),
        );
        program
            .functions
            .iter()
            .map(|f| FunctionTask {
                name: f.name.clone(),
                func: f.clone(),
                program: Some(Arc::clone(&program)),
            })
            .collect()
    }

    #[test]
    fn pruned_tier_store_bytes_identical_across_jobs_and_resume() {
        let target = Target::default();
        let pruned = |jobs: usize| CampaignConfig {
            jobs,
            semantic: Some(SemanticConfig::default()),
            sem_pruned: true,
            ..CampaignConfig::default()
        };

        // Jobs sweep: expansion order races, merge order does not.
        let mut stores = Vec::new();
        for jobs in [0usize, 2, 8] {
            let path = tmp_store(&format!("pruned_jobs{jobs}"));
            std::fs::remove_file(&path).ok();
            run(semantic_tasks(), &target, Some(&path), &pruned(jobs), &NullObserver).unwrap();
            stores.push(std::fs::read(&path).unwrap());
            std::fs::remove_file(&path).ok();
        }
        for s in &stores[1..] {
            assert_eq!(*s, stores[0], "pruned-tier store bytes differ across job counts");
        }
        let full = ResultStore::from_bytes(&stores[0]).unwrap();
        assert!(full.config.sem_pruned);
        let (merges, prunes, fallbacks) = full.records.iter().fold((0, 0, 0), |a, r| {
            (a.0 + r.sem_merges, a.1 + r.sem_prunes, a.2 + r.sem_mask_fallbacks)
        });
        assert_eq!(merges, prunes + fallbacks, "every behavioral merge is pruned or falls back");

        // Budgeted sessions (frontiers persisting pruned nodes) converge
        // on the uncapped bytes, at every job count.
        for jobs in [0usize, 2, 8] {
            let path = tmp_store(&format!("pruned_budget_j{jobs}"));
            std::fs::remove_file(&path).ok();
            let mut sessions = 0;
            loop {
                let config =
                    CampaignConfig { budget: Some(1), resume: path.exists(), ..pruned(jobs) };
                let s =
                    run(semantic_tasks(), &target, Some(&path), &config, &NullObserver).unwrap();
                sessions += 1;
                assert!(sessions < 200, "budgeted pruned sessions must converge");
                if s.records.iter().all(|r| !MemoEntry::new(r).is_resumable()) {
                    break;
                }
            }
            assert!(sessions > 1, "budget 1 cannot finish these spaces in one session");
            assert_eq!(
                std::fs::read(&path).unwrap(),
                stores[0],
                "jobs {jobs}: resumed pruned store differs from uninterrupted"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn pruned_and_annotation_stores_never_interchange() {
        let target = Target::default();
        let path = tmp_store("tier_mismatch");
        std::fs::remove_file(&path).ok();
        let pruned = CampaignConfig {
            semantic: Some(SemanticConfig::default()),
            sem_pruned: true,
            ..CampaignConfig::default()
        };
        run(semantic_tasks(), &target, Some(&path), &pruned, &NullObserver).unwrap();
        // Resuming the pruned store under the annotation tier refuses.
        let annotation = CampaignConfig {
            semantic: Some(SemanticConfig::default()),
            resume: true,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            run(semantic_tasks(), &target, Some(&path), &annotation, &NullObserver),
            Err(CampaignError::Store(StoreError::ConfigMismatch(_)))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_complete_store_is_a_noop() {
        let target = Target::default();
        let path = tmp_store("noop");
        std::fs::remove_file(&path).ok();
        run(three_functions(), &target, Some(&path), &CampaignConfig::default(), &NullObserver)
            .unwrap();
        let before = std::fs::read(&path).unwrap();
        let resume = CampaignConfig { resume: true, ..CampaignConfig::default() };
        let summary = run(three_functions(), &target, Some(&path), &resume, &NullObserver).unwrap();
        assert_eq!(summary.resumed, 3);
        assert_eq!(summary.explored, 0);
        assert_eq!(std::fs::read(&path).unwrap(), before);
        std::fs::remove_file(&path).ok();
    }
}
