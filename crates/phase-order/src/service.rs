//! The memo service wire protocol.
//!
//! `vpoc serve` answers phase-order queries over a Unix domain socket.
//! Each connection carries exactly one [`Request`] frame and receives
//! exactly one [`Response`] frame — frames are the length-prefixed,
//! CRC-protected envelopes of [`crate::wire`], and payloads are the
//! versioned encodings below. Function records travel in the store's
//! own serialization (version [`crate::campaign::store::VERSION`]), so
//! a daemon response is bit-compatible with what `ResultStore` holds on
//! disk.
//!
//! Decoding is total: truncated, oversized, or bit-flipped payloads
//! come back as [`ProtocolError`], never a panic — the daemon must
//! survive arbitrary bytes from the socket.

use std::fmt;

use crate::campaign::store::{self, Completeness, FunctionRecord, StoreError};
use crate::wire::{self, Reader, WireError};

/// Version of the request/response payload encodings. Bumped on any
/// incompatible change; a daemon rejects frames from other versions
/// with a clean [`Response::Error`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Why a protocol payload could not be decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The payload is truncated or structurally invalid.
    Malformed(String),
    /// The peer speaks a different protocol version.
    Version { got: u16 },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Malformed(m) => write!(f, "malformed protocol payload: {m}"),
            ProtocolError::Version { got } => {
                write!(f, "protocol version {got}, this build speaks {PROTOCOL_VERSION}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Malformed(e.to_string())
    }
}

impl From<StoreError> for ProtocolError {
    fn from(e: StoreError) -> Self {
        ProtocolError::Malformed(e.to_string())
    }
}

/// A client-to-daemon message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Ask for a function's memo. Warm entries answer from the store;
    /// cold or partially-explored entries run enumeration under
    /// `budget` (daemon default when `None`) and deepen the stored
    /// frontier.
    Query {
        /// Function name, as stored (qualified `bench::func` or bare).
        function: String,
        /// Per-request expansion budget override.
        budget: Option<u64>,
    },
    /// List every function the daemon tracks with its exploration
    /// state.
    List,
    /// Ask for a telemetry snapshot (JSON).
    Telemetry,
    /// Ask the daemon to checkpoint and exit.
    Shutdown,
}

/// How a [`Response::Memo`] was produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Served {
    /// Straight from the memo store, no enumeration spawned.
    Warm,
    /// An enumeration session ran for this request, expanding this
    /// many merged parents before completing or suspending.
    Cold {
        /// Merged-parent expansions performed by this request.
        expanded: u64,
    },
}

/// One row of a [`Response::List`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ListEntry {
    /// Stored function name.
    pub name: String,
    /// Exploration state: `None` = not yet explored, otherwise the
    /// record's completeness.
    pub state: Option<Completeness>,
}

/// A daemon-to-client message.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// The function's memo entry: best-known ordering and Table-3
    /// counters, plus whether it is final or resumable.
    Memo {
        /// The stored record after this request's work.
        record: Box<FunctionRecord>,
        /// Whether enumeration ran.
        served: Served,
    },
    /// Every tracked function and its state.
    List {
        /// One entry per function, in task order.
        entries: Vec<ListEntry>,
    },
    /// A telemetry snapshot rendered as JSON.
    Telemetry {
        /// Output of [`crate::telemetry::Snapshot::to_json`].
        json: String,
    },
    /// The request was understood but cannot be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Admission control rejected the request: too many enumerations
    /// in flight and the queue is full. Retry later.
    Overloaded,
    /// The daemon acknowledged a shutdown (or is already draining).
    ShuttingDown,
}

fn header(kind: u8) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_u16(&mut out, PROTOCOL_VERSION);
    out.push(kind);
    out
}

fn open(bytes: &[u8]) -> Result<(Reader<'_>, u8), ProtocolError> {
    let mut r = Reader::new(bytes);
    let got = r.u16()?;
    if got != PROTOCOL_VERSION {
        return Err(ProtocolError::Version { got });
    }
    let kind = r.u8()?;
    Ok((r, kind))
}

fn finish(r: Reader<'_>) -> Result<(), ProtocolError> {
    if r.remaining() != 0 {
        return Err(ProtocolError::Malformed(format!("{} bytes trail the payload", r.remaining())));
    }
    Ok(())
}

impl Request {
    /// Serializes the request payload (version, kind, body).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Request::Query { function, budget } => {
                let mut out = header(0);
                wire::put_str(&mut out, function);
                match budget {
                    Some(b) => {
                        out.push(1);
                        wire::put_u64(&mut out, *b);
                    }
                    None => out.push(0),
                }
                out
            }
            Request::List => header(1),
            Request::Telemetry => header(2),
            Request::Shutdown => header(3),
        }
    }

    /// Parses a request payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Request, ProtocolError> {
        let (mut r, kind) = open(bytes)?;
        let req = match kind {
            0 => {
                let function = r.str()?;
                let budget = if r.bool()? { Some(r.u64()?) } else { None };
                Request::Query { function, budget }
            }
            1 => Request::List,
            2 => Request::Telemetry,
            3 => Request::Shutdown,
            d => return Err(ProtocolError::Malformed(format!("invalid request discriminant {d}"))),
        };
        finish(r)?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response payload (version, kind, body).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Response::Memo { record, served } => {
                let mut out = header(0);
                match served {
                    Served::Warm => out.push(0),
                    Served::Cold { expanded } => {
                        out.push(1);
                        wire::put_u64(&mut out, *expanded);
                    }
                }
                record.encode(&mut out);
                out
            }
            Response::List { entries } => {
                let mut out = header(1);
                wire::put_u32(&mut out, entries.len() as u32);
                for e in entries {
                    wire::put_str(&mut out, &e.name);
                    match e.state {
                        None => out.push(0),
                        Some(Completeness::Complete) => out.push(1),
                        Some(Completeness::Truncated { level }) => {
                            out.push(2);
                            wire::put_u32(&mut out, level);
                        }
                        Some(Completeness::Frontier { level }) => {
                            out.push(3);
                            wire::put_u32(&mut out, level);
                        }
                    }
                }
                out
            }
            Response::Telemetry { json } => {
                let mut out = header(2);
                wire::put_str(&mut out, json);
                out
            }
            Response::Error { message } => {
                let mut out = header(3);
                wire::put_str(&mut out, message);
                out
            }
            Response::Overloaded => header(4),
            Response::ShuttingDown => header(5),
        }
    }

    /// Parses a response payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Response, ProtocolError> {
        let (mut r, kind) = open(bytes)?;
        let resp = match kind {
            0 => {
                let served = match r.u8()? {
                    0 => Served::Warm,
                    1 => Served::Cold { expanded: r.u64()? },
                    d => {
                        return Err(ProtocolError::Malformed(format!(
                            "invalid served discriminant {d}"
                        )))
                    }
                };
                let record = Box::new(FunctionRecord::decode(&mut r, store::VERSION)?);
                Response::Memo { record, served }
            }
            1 => {
                let count = r.u32()? as usize;
                let mut entries = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let name = r.str()?;
                    let state = match r.u8()? {
                        0 => None,
                        1 => Some(Completeness::Complete),
                        2 => Some(Completeness::Truncated { level: r.u32()? }),
                        3 => Some(Completeness::Frontier { level: r.u32()? }),
                        d => {
                            return Err(ProtocolError::Malformed(format!(
                                "invalid state discriminant {d}"
                            )))
                        }
                    };
                    entries.push(ListEntry { name, state });
                }
                Response::List { entries }
            }
            2 => Response::Telemetry { json: r.str()? },
            3 => Response::Error { message: r.str()? },
            4 => Response::Overloaded,
            5 => Response::ShuttingDown,
            d => {
                return Err(ProtocolError::Malformed(format!("invalid response discriminant {d}")))
            }
        };
        finish(r)?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, complete: bool) -> Box<FunctionRecord> {
        Box::new(FunctionRecord {
            name: name.into(),
            complete,
            insts: 42,
            fn_instances: 1234,
            leaves: 17,
            ..FunctionRecord::default()
        })
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Query { function: "bitcount::tri".into(), budget: Some(64) },
            Request::Query { function: "main".into(), budget: None },
            Request::List,
            Request::Telemetry,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Memo { record: record("tri", true), served: Served::Warm },
            Response::Memo { record: record("tri", false), served: Served::Cold { expanded: 99 } },
            Response::List {
                entries: vec![
                    ListEntry { name: "a".into(), state: None },
                    ListEntry { name: "b".into(), state: Some(Completeness::Complete) },
                    ListEntry {
                        name: "c".into(),
                        state: Some(Completeness::Truncated { level: 7 }),
                    },
                    ListEntry {
                        name: "d".into(),
                        state: Some(Completeness::Frontier { level: 3 }),
                    },
                ],
            },
            Response::Telemetry { json: "{\"metrics\":[]}".into() },
            Response::Error { message: "no such function".into() },
            Response::Overloaded,
            Response::ShuttingDown,
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let bytes = req.to_bytes();
            assert_eq!(Request::from_bytes(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let bytes = resp.to_bytes();
            assert_eq!(Response::from_bytes(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn version_mismatch_is_a_clean_error() {
        let mut bytes = Request::List.to_bytes();
        bytes[0] = 0xFF;
        match Request::from_bytes(&bytes) {
            Err(ProtocolError::Version { got }) => assert_ne!(got, PROTOCOL_VERSION),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payloads_never_panic() {
        for req in sample_requests() {
            let good = req.to_bytes();
            for cut in 0..good.len() {
                assert!(Request::from_bytes(&good[..cut]).is_err());
            }
        }
        for resp in sample_responses() {
            let good = resp.to_bytes();
            for cut in 0..good.len() {
                assert!(Response::from_bytes(&good[..cut]).is_err());
            }
        }
    }

    #[test]
    fn corrupt_payloads_decode_to_errors_not_panics() {
        // Deterministic fuzz: flip each byte of every sample message to
        // a handful of values; decode must return (any) Ok or Err, and
        // Ok values must re-encode without panicking.
        for resp in sample_responses() {
            let good = resp.to_bytes();
            for i in 0..good.len() {
                for v in [0x00, 0x01, 0x7F, 0xFF] {
                    let mut bad = good.clone();
                    bad[i] = v;
                    if let Ok(decoded) = Response::from_bytes(&bad) {
                        let _ = decoded.to_bytes();
                    }
                }
            }
        }
        for req in sample_requests() {
            let good = req.to_bytes();
            for i in 0..good.len() {
                for v in [0x00, 0x01, 0x7F, 0xFF] {
                    let mut bad = req.clone().to_bytes();
                    bad[i] = v;
                    if let Ok(decoded) = Request::from_bytes(&bad) {
                        let _ = decoded.to_bytes();
                    }
                }
            }
        }
        let _ = good_trailing_guard();
    }

    fn good_trailing_guard() -> bool {
        let mut bytes = Request::Shutdown.to_bytes();
        bytes.push(0);
        Request::from_bytes(&bytes).is_err()
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        assert!(good_trailing_guard());
        let mut bytes = Response::Overloaded.to_bytes();
        bytes.extend_from_slice(b"junk");
        assert!(Response::from_bytes(&bytes).is_err());
    }
}
