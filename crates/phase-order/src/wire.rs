//! Shared little-endian byte helpers and the CRC frame codec.
//!
//! Two layers live here, both used by the campaign store
//! ([`crate::campaign::store`]), the typed exploration request
//! ([`crate::request`]) and the `vpod` wire protocol
//! ([`crate::service`]):
//!
//! * **Byte helpers** — `put_*` writers and the bounds-checked
//!   [`Reader`] cursor. All integers are little-endian; strings are a
//!   `u16` length followed by UTF-8 bytes. Every read is validated and
//!   returns a [`WireError`] on truncation or malformed data — decoders
//!   built on [`Reader`] never panic on hostile input.
//! * **Frame codec** — the length-prefixed, CRC-framed unit the store
//!   uses per record and the daemon uses per message:
//!
//!   ```text
//!   frame: payload length u32 | payload | CRC-32(payload) u32
//!   ```
//!
//!   [`read_frame`] distinguishes a clean close (EOF before any byte of
//!   a frame) from a truncated or corrupt frame, and bounds the length
//!   prefix by [`MAX_FRAME`] so a hostile peer cannot make the reader
//!   allocate arbitrarily.

use std::fmt;
use std::io::{Read, Write};

use vpo_rtl::crc;

/// Upper bound on a frame's payload length. Large enough for any store
/// record, request or telemetry snapshot; small enough that a corrupt
/// or hostile length prefix cannot drive an unbounded allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Why a byte-level decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value being read.
    Truncated,
    /// The bytes were present but not a valid encoding.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "unexpected end of input"),
            WireError::Malformed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends a `u16` in little-endian order.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a string as a `u16` length prefix plus UTF-8 bytes.
///
/// Panics if the string exceeds `u16::MAX` bytes; every string that
/// crosses this layer (function names, phase sequences, error messages)
/// is far shorter.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string too long for wire format");
    put_u16(out, bytes.len() as u16);
    out.extend_from_slice(bytes);
}

/// Bounds-checked little-endian cursor over a byte slice.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(WireError::Truncated)?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("non-UTF-8 string".into()))
    }

    /// Reads a one-byte boolean (`0` or `1`; anything else is malformed,
    /// so re-encoding what was decoded is always byte-identical).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!("invalid boolean byte {b:#04x}"))),
        }
    }
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// The peer closed the connection cleanly (EOF before any byte of a
    /// new frame).
    Closed,
    /// The frame's declared length exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// The frame was truncated mid-way or failed its CRC check.
    Corrupt(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: `len u32 | payload | crc32(payload)`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(payload.len() as u32));
    }
    let mut head = Vec::with_capacity(4);
    put_u32(&mut head, payload.len() as u32);
    w.write_all(&head)?;
    w.write_all(payload)?;
    let mut tail = Vec::with_capacity(4);
    put_u32(&mut tail, crc::crc32(payload));
    w.write_all(&tail)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, validating the length bound and the CRC.
///
/// EOF before the first byte of the length prefix is a clean
/// [`FrameError::Closed`]; EOF anywhere later is a truncation and
/// reported as [`FrameError::Corrupt`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Corrupt(format!(
                    "EOF after {got} of 4 length-prefix bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len as usize > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len as usize + 4];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Corrupt(format!("EOF inside a {len}-byte frame"))
        } else {
            FrameError::Io(e)
        }
    })?;
    let crc_stored = u32::from_le_bytes(body[len as usize..].try_into().unwrap());
    body.truncate(len as usize);
    if crc::crc32(&body) != crc_stored {
        return Err(FrameError::Corrupt("CRC mismatch".into()));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_roundtrips_every_primitive() {
        let mut out = Vec::new();
        out.push(7u8);
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "sha::sha_transform");
        out.push(1);
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "sha::sha_transform");
        assert!(r.bool().unwrap());
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.pos(), out.len());
    }

    #[test]
    fn reader_rejects_truncation_and_bad_bytes() {
        let mut out = Vec::new();
        put_str(&mut out, "hello");
        for cut in 0..out.len() {
            let mut r = Reader::new(&out[..cut]);
            assert!(r.str().is_err(), "prefix of {cut} bytes must fail");
        }
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::Malformed("invalid boolean byte 0x02".into())));
        let bad_utf8 = [2, 0, 0xFF, 0xFE];
        let mut r = Reader::new(&bad_utf8);
        assert!(matches!(r.str(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn frames_roundtrip() {
        let payloads: [&[u8]; 3] = [b"", b"x", b"a longer payload with bytes \x00\xff"];
        let mut stream = Vec::new();
        for p in payloads {
            write_frame(&mut stream, p).unwrap();
        }
        let mut cursor = &stream[..];
        for p in payloads {
            assert_eq!(read_frame(&mut cursor).unwrap(), p);
        }
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn every_frame_truncation_is_a_clean_error() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"payload under test").unwrap();
        for cut in 1..stream.len() {
            let mut cursor = &stream[..cut];
            match read_frame(&mut cursor) {
                Err(FrameError::Corrupt(_)) => {}
                other => panic!("prefix of {cut} bytes: expected Corrupt, got {other:?}"),
            }
        }
        // Zero bytes is a clean close, not corruption.
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Err(FrameError::Closed)));
    }

    #[test]
    fn every_single_bit_flip_is_caught_or_harmless() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"bit flip battery").unwrap();
        for byte in 0..stream.len() {
            for bit in 0..8 {
                let mut bad = stream.clone();
                bad[byte] ^= 1 << bit;
                let mut cursor = &bad[..];
                match read_frame(&mut cursor) {
                    // A flip in the length prefix usually truncates or
                    // oversizes; a flip in payload or CRC must fail the
                    // check. No flip may decode to the original bytes.
                    Err(_) => {}
                    Ok(p) => assert_ne!(p, b"bit flip battery", "byte {byte} bit {bit}"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_bounded() {
        let mut stream = Vec::new();
        put_u32(&mut stream, u32::MAX);
        stream.extend_from_slice(&[0; 32]);
        let mut cursor = &stream[..];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::TooLarge(_))));
    }
}
