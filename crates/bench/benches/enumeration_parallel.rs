//! Bench: serial vs parallel level-order enumeration on MiBench
//! kernels, exercising the expand-in-parallel / merge-at-the-barrier
//! engine behind [`phase_order::enumerate`] with `Config::jobs > 0`.
//!
//! Also verifies on every kernel — outside the timed region — that the
//! parallel space is identical to the serial one (node count, leaf
//! count, root weight), and prints the speedup of each job count over
//! serial so the scalability of the level-barrier design is visible at
//! a glance.

use bench::harness::Harness;
use phase_order::enumerate::{enumerate, Config};
use vpo_opt::Target;

/// The largest suite kernels whose spaces still enumerate quickly enough
/// to sample repeatedly: wide frontiers are where the parallel engine
/// earns its keep.
fn kernels() -> Vec<(String, vpo_rtl::Function)> {
    let mut out = Vec::new();
    for b in mibench::all() {
        let p = b.compile().unwrap();
        for f in p.functions {
            if (40..=120).contains(&f.inst_count()) {
                out.push((format!("{}_{}", b.name, f.name), f));
            }
        }
    }
    // Largest first; keep a handful so the bench stays under a minute.
    out.sort_by_key(|(_, f)| std::cmp::Reverse(f.inst_count()));
    out.truncate(3);
    out
}

fn main() {
    let target = Target::default();
    let config = Config { max_nodes: 200_000, max_level_width: 100_000, ..Config::default() };
    let h = Harness::from_args();
    let mut group = h.group("enumeration_parallel");
    group.sample_size(5);
    for (name, f) in kernels() {
        let serial_result = enumerate(&f, &target, &config);
        let serial = group.bench_function(format!("{name}/serial"), |b| {
            b.iter(|| enumerate(std::hint::black_box(&f), &target, &config).space.len())
        });
        for jobs in [2usize, 4, 8] {
            let jc = Config { jobs, ..config.clone() };
            let par_result = enumerate(&f, &target, &jc);
            assert_eq!(par_result.space.len(), serial_result.space.len(), "{name} jobs={jobs}");
            assert_eq!(
                par_result.space.leaf_count(),
                serial_result.space.leaf_count(),
                "{name} jobs={jobs}"
            );
            assert_eq!(
                par_result.space.node(par_result.space.root()).weight,
                serial_result.space.node(serial_result.space.root()).weight,
                "{name} jobs={jobs}"
            );
            let par = group.bench_function(format!("{name}/jobs{jobs}"), |b| {
                b.iter(|| enumerate(std::hint::black_box(&f), &target, &jc).space.len())
            });
            if let (Some(s), Some(p)) = (serial, par) {
                if !p.is_zero() {
                    eprintln!(
                        "[parallel] {name}: {jobs} jobs -> {:.2}x over serial",
                        s.as_secs_f64() / p.as_secs_f64()
                    );
                }
            }
        }
    }
    group.finish();
}
