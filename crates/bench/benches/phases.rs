//! Criterion bench: cost of each optimization phase on naive code (one
//! attempt each, cloning the input per iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use vpo_opt::{attempt, PhaseId, Target};

fn bench_phases(c: &mut Criterion) {
    let target = Target::default();
    let b = mibench::sha::benchmark();
    let prog = b.compile().unwrap();
    let f = prog.function("sha_transform").unwrap();
    let mut group = c.benchmark_group("phase_on_sha_transform");
    group.sample_size(20);
    for p in PhaseId::ALL {
        group.bench_function(p.name().replace(' ', "_"), |bch| {
            bch.iter(|| {
                let mut g = f.clone();
                std::hint::black_box(attempt(&mut g, p, &target))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
