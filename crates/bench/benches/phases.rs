//! Bench: cost of each optimization phase on naive code (one attempt
//! each, cloning the input per iteration).

use bench::harness::Harness;
use vpo_opt::{attempt, PhaseId, Target};

fn main() {
    let target = Target::default();
    let b = mibench::sha::benchmark();
    let prog = b.compile().unwrap();
    let f = prog.function("sha_transform").unwrap();
    let h = Harness::from_args();
    let mut group = h.group("phase_on_sha_transform");
    group.sample_size(20);
    for p in PhaseId::ALL {
        group.bench_function(p.name().replace(' ', "_"), |bch| {
            bch.iter(|| {
                let mut g = f.clone();
                std::hint::black_box(attempt(&mut g, p, &target))
            })
        });
    }
    group.finish();
}
