//! Bench for the Table 7 claim: probabilistic compilation takes roughly
//! a third of the conventional batch loop's time.

use bench::harness::Harness;
use phase_order::enumerate::{enumerate, Config};
use phase_order::interaction::InteractionAnalysis;
use phase_order::prob::{probabilistic_compile, ProbTables};
use vpo_opt::batch::batch_compile;
use vpo_opt::Target;

fn main() {
    let target = Target::default();
    let b = mibench::bitcount::benchmark();
    let prog = b.compile().unwrap();
    // Tables mined once, outside the timed region (as in the paper).
    let mut ia = InteractionAnalysis::new();
    for f in &prog.functions {
        let e = enumerate(f, &target, &Config::default());
        if e.outcome.is_complete() {
            ia.add_space(&e.space);
        }
    }
    let tables = ProbTables::from_analysis(&ia);

    let h = Harness::from_args();
    let mut group = h.group("table7_bitcount");
    group.bench_function("old_batch", |bch| {
        bch.iter(|| {
            for f in &prog.functions {
                let mut g = f.clone();
                std::hint::black_box(batch_compile(&mut g, &target));
            }
        })
    });
    group.bench_function("probabilistic", |bch| {
        bch.iter(|| {
            for f in &prog.functions {
                let mut g = f.clone();
                std::hint::black_box(probabilistic_compile(&mut g, &target, &tables));
            }
        })
    });
    group.finish();
}
