//! Bench: canonicalization + fingerprinting throughput — the
//! Section 4.2.1 machinery executed once per attempted active phase.

use bench::harness::Harness;
use vpo_rtl::canon;

fn main() {
    let suite = mibench::all();
    let mut biggest = None;
    for b in &suite {
        let p = b.compile().unwrap();
        for f in p.functions {
            if biggest
                .as_ref()
                .map(|g: &vpo_rtl::Function| f.inst_count() > g.inst_count())
                .unwrap_or(true)
            {
                biggest = Some(f);
            }
        }
    }
    let f = biggest.unwrap();
    let h = Harness::from_args();
    let mut group = h.group("fingerprint");
    group.bench_function(format!("fingerprint_{}insts", f.inst_count()), |b| {
        b.iter(|| canon::fingerprint(std::hint::black_box(&f)))
    });
    group.bench_function("crc32_4k", |b| {
        let data = vec![0xA5u8; 4096];
        b.iter(|| vpo_rtl::crc::crc32(std::hint::black_box(&data)))
    });
    group.finish();
}
