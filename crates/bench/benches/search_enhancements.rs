//! Bench for the Section 4.3 / Figure 6 claim: prefix-sharing
//! evaluation vs naive per-sequence replay.

use bench::harness::Harness;
use phase_order::enumerate::{enumerate, Config, ReplayMode};
use vpo_opt::Target;

fn main() {
    let target = Target::default();
    let src =
        "int f(int a, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += a * i; return s; }";
    let p = vpo_frontend::compile(src).unwrap();
    let f = &p.functions[0];
    let h = Harness::from_args();
    let mut group = h.group("figure6");
    group.sample_size(10);
    group.bench_function("prefix_sharing", |b| {
        b.iter(|| enumerate(std::hint::black_box(f), &target, &Config::default()).space.len())
    });
    group.bench_function("naive_replay", |b| {
        b.iter(|| {
            enumerate(
                std::hint::black_box(f),
                &target,
                &Config { replay: ReplayMode::NaiveReplay, ..Config::default() },
            )
            .space
            .len()
        })
    });
    group.finish();
}
