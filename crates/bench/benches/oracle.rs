//! Bench: the differential equivalence oracle over enumerated spaces —
//! how fast can every distinct instance of a kernel be rematerialized
//! and executed on the input battery, serially and in parallel.
//!
//! Also checks on every kernel — outside the timed region — that the
//! oracle verdict is clean and identical for every job count, and prints
//! the simulations-per-second throughput so regressions in the
//! materialize/execute loop are visible at a glance.

use bench::harness::Harness;
use phase_order::enumerate::{enumerate, Config};
use phase_order::oracle::{verify, OracleConfig};
use vpo_opt::Target;

/// Small kernels with non-trivial spaces: enough instances to amortize
/// setup, few enough that one verification fits a bench sample.
fn kernels() -> Vec<(String, vpo_rtl::Program, String)> {
    let picks = [("bitcount", "bit_count"), ("bitcount", "bit_shifter"), ("jpeg", "range_limit")];
    picks
        .iter()
        .map(|(b, f)| {
            let bench = mibench::all().into_iter().find(|x| x.name == *b).unwrap();
            (format!("{b}_{f}"), bench.compile().unwrap(), (*f).to_owned())
        })
        .collect()
}

fn main() {
    let target = Target::default();
    let enum_config = Config { max_nodes: 20_000, ..Config::default() };
    let h = Harness::from_args();
    let mut group = h.group("oracle");
    group.sample_size(5);
    for (name, program, func) in kernels() {
        let f = program.function(&func).unwrap();
        let e = enumerate(f, &target, &enum_config);
        for jobs in [1usize, 4] {
            let config = OracleConfig { jobs, ..OracleConfig::default() };
            let report = verify(&program, f, &e, &target, &config);
            assert!(report.is_clean(), "{name} jobs={jobs}: {:?}", report.findings);
            let t = group.bench_function(format!("{name}/jobs{jobs}"), |b| {
                b.iter(|| {
                    verify(std::hint::black_box(&program), f, &e, &target, &config).simulations
                })
            });
            if let Some(t) = t {
                if !t.is_zero() {
                    eprintln!(
                        "[oracle] {name}/jobs{jobs}: {} instances, {} sims -> {:.0} sims/s",
                        report.instances,
                        report.simulations,
                        report.simulations as f64 / t.as_secs_f64()
                    );
                }
            }
        }
    }
    group.finish();
}
