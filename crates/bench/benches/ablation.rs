//! Ablation bench for the design choices called out in `DESIGN.md`:
//!
//! * **direct-only vs. address-form-robust register allocation** — the
//!   paper's documented `k`-after-`s` constraint vs. a dataflow-based
//!   allocator. The robust allocator collapses most of the leaf
//!   code-size spread (the phase-order sensitivity the paper studies).
//! * **the Figure 2 shortcut** (`skip_just_applied`) — not re-attempting
//!   the phase that just ran, measured as attempted-phase savings.

use bench::harness::Harness;
use phase_order::enumerate::{enumerate, Config};
use vpo_opt::Target;

fn ablation_targets() -> Vec<(String, vpo_rtl::Function)> {
    let mut out = Vec::new();
    for b in mibench::all() {
        let p = b.compile().unwrap();
        for f in p.functions {
            if (20..=60).contains(&f.inst_count()) {
                out.push((format!("{}_{}", b.name, f.name), f));
            }
        }
    }
    out.truncate(6);
    out
}

fn bench_allocator_strictness(h: &Harness) {
    let strict = Target::default();
    let robust = Target { regalloc_requires_direct: false, ..Target::default() };
    let mut group = h.group("allocator_ablation");
    group.sample_size(10);
    for (name, f) in ablation_targets() {
        group.bench_function(format!("{name}/direct_only"), |b| {
            b.iter(|| enumerate(std::hint::black_box(&f), &strict, &Config::default()).space.len())
        });
        group.bench_function(format!("{name}/robust"), |b| {
            b.iter(|| enumerate(std::hint::black_box(&f), &robust, &Config::default()).space.len())
        });
    }
    group.finish();

    // Report the qualitative effect once.
    let spread = |t: &Target| {
        let mut total = 0.0;
        let mut n = 0;
        for (_, f) in ablation_targets() {
            let e = enumerate(&f, t, &Config::default());
            if let Some((lo, hi)) = e.space.leaf_code_size_range() {
                if lo > 0 {
                    total += (hi - lo) as f64 * 100.0 / lo as f64;
                    n += 1;
                }
            }
        }
        total / n.max(1) as f64
    };
    eprintln!(
        "[ablation] leaf code-size spread: direct-only {:.1}% vs robust {:.1}%",
        spread(&strict),
        spread(&robust)
    );
}

fn bench_skip_shortcut(h: &Harness) {
    let target = Target::default();
    let mut group = h.group("figure2_shortcut");
    group.sample_size(10);
    for (name, f) in ablation_targets().into_iter().take(3) {
        group.bench_function(format!("{name}/attempt_all"), |b| {
            b.iter(|| {
                enumerate(std::hint::black_box(&f), &target, &Config::default())
                    .stats
                    .attempted_phases
            })
        });
        group.bench_function(format!("{name}/skip_just_applied"), |b| {
            b.iter(|| {
                enumerate(
                    std::hint::black_box(&f),
                    &target,
                    &Config { skip_just_applied: true, ..Config::default() },
                )
                .stats
                .attempted_phases
            })
        });
    }
    group.finish();
}

fn main() {
    let h = Harness::from_args();
    bench_allocator_strictness(&h);
    bench_skip_shortcut(&h);
}
