//! Bench: exhaustive enumeration throughput on representative suite
//! functions (the engine behind Table 3).

use bench::harness::Harness;
use phase_order::enumerate::{enumerate, Config};
use vpo_opt::Target;

fn main() {
    let target = Target::default();
    let h = Harness::from_args();
    let mut group = h.group("enumerate");
    group.sample_size(10);
    for (name, src) in [
        ("square", "int square(int x) { return x * x; }"),
        (
            "sumloop",
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
        ),
        (
            "clamp",
            "int clamp(int x, int lo, int hi) { if (x < lo) return lo; if (x > hi) return hi; return x; }",
        ),
    ] {
        let p = vpo_frontend::compile(src).unwrap();
        let f = &p.functions[0];
        group.bench_function(name, |b| {
            b.iter(|| {
                let e = enumerate(std::hint::black_box(f), &target, &Config::default());
                std::hint::black_box(e.space.len())
            })
        });
    }
    group.finish();
}
