//! Minimal in-tree micro-benchmark harness.
//!
//! The workspace's hermetic build policy (see `DESIGN.md`) forbids
//! registry crates, so the `[[bench]]` targets use this tiny
//! criterion-shaped harness instead of `criterion` itself: named groups,
//! a substring filter taken from the command line (the argument `cargo
//! bench -- <filter>` forwards), one warmup run, and a fixed number of
//! timed samples reported as min / median / mean.
//!
//! The numbers are honest wall-clock measurements but carry none of
//! criterion's statistical machinery — good enough for the order-of-
//! magnitude comparisons the paper's experiments need (prefix sharing vs
//! naive replay, serial vs parallel enumeration, batch vs probabilistic
//! compilation).

use std::time::{Duration, Instant};

/// Top-level harness: parses the filter and hosts benchmark groups.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Builds a harness from the process arguments. Flags (anything
    /// starting with `-`, e.g. the `--bench` cargo passes) are ignored;
    /// the first positional argument is a substring filter on the full
    /// `group/benchmark` name.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    /// Opens a named benchmark group.
    pub fn group(&self, name: impl Into<String>) -> Group<'_> {
        Group { harness: self, name: name.into(), sample_size: 20 }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct Group<'h> {
    harness: &'h Harness,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets the number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and reports it, returning the median sample
    /// (`None` when the filter excluded it). The closure receives a
    /// [`Bencher`] and must call [`Bencher::iter`] exactly once.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> Option<Duration> {
        let full = if self.name.is_empty() {
            id.as_ref().to_owned()
        } else {
            format!("{}/{}", self.name, id.as_ref())
        };
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return None;
            }
        }
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        Some(report(&full, &b.samples))
    }

    /// Ends the group (kept for criterion-API familiarity; reporting is
    /// incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`: one untimed warmup call, then `sample_size` timed
    /// calls. The result of every call is passed through
    /// [`std::hint::black_box`] so the computation cannot be elided.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        println!("{name:<48} (no samples — closure never called iter)");
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<48} min {:>10}   med {:>10}   mean {:>10}   ({} samples)",
        fmt_duration(sorted[0]),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
    median
}

/// Renders a duration with an adaptive unit (ns / µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples_is_reported() {
        let h = Harness { filter: None };
        let mut g = h.group("t");
        g.sample_size(5);
        let med = g.bench_function("noop", |b| b.iter(|| 1 + 1)).unwrap();
        assert!(med < Duration::from_millis(50));
    }

    #[test]
    fn filter_excludes_benchmarks() {
        let h = Harness { filter: Some("match_me".into()) };
        let mut g = h.group("t");
        assert!(g.bench_function("other", |b| b.iter(|| ())).is_none());
        assert!(g.bench_function("match_me_too", |b| b.iter(|| ())).is_some());
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00s");
    }
}
