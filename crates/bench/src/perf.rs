//! The perf-suite report model and baseline comparator (DESIGN.md §9).
//!
//! `perfsuite` runs a pinned workload set and captures, per workload,
//! the wall time of every trial plus the deterministic telemetry
//! counters of the run. This module owns the on-disk shape of that
//! report (`phase-order-perfsuite-v1` JSON, written as `BENCH_<label>.json`
//! and checked in as `bench/baseline.json`) and the comparison that
//! turns it into a CI gate:
//!
//! * **Counters** are logical event counts (nodes inserted, phases
//!   attempted, fingerprint hits…) that must be *bit-identical* run to
//!   run — any drift against the baseline fails, whatever the
//!   threshold.
//! * **Wall medians** are allowed to regress up to `threshold` percent.
//!   Machines differ, so each report carries a `calibration_ns` figure
//!   (the median wall time of a fixed busy-loop); the comparator scales
//!   the baseline's medians by `current.calibration / baseline.calibration`
//!   before applying the threshold, which keeps a baseline recorded on
//!   one machine meaningful on another.

use crate::json::Value;

/// Schema tag emitted in (and required of) every perf report.
pub const SCHEMA: &str = "phase-order-perfsuite-v1";

/// One pinned workload's measurements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadReport {
    /// Stable workload name, e.g. `enumerate/bitcount::bit_count/serial`.
    pub name: String,
    /// Wall time of each trial, nanoseconds, in run order.
    pub trials_ns: Vec<u64>,
    /// Deterministic telemetry counters after a trial (identical for
    /// every trial by construction — perfsuite verifies that).
    pub counters: Vec<(String, u64)>,
}

impl WorkloadReport {
    /// Median trial wall time (mean of the middle two for even counts).
    pub fn median_ns(&self) -> u64 {
        let mut v = self.trials_ns.clone();
        v.sort_unstable();
        match v.len() {
            0 => 0,
            n if n % 2 == 1 => v[n / 2],
            n => (v[n / 2 - 1] + v[n / 2]) / 2,
        }
    }

    /// Interquartile range of the trial wall times (nearest-rank
    /// quartiles) — the noise figure printed next to each median.
    pub fn iqr_ns(&self) -> u64 {
        let mut v = self.trials_ns.clone();
        v.sort_unstable();
        if v.len() < 2 {
            return 0;
        }
        let q1 = v[v.len() / 4];
        let q3 = v[(3 * v.len()) / 4];
        q3.saturating_sub(q1)
    }
}

/// A full perf-suite report: what `BENCH_<label>.json` holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PerfReport {
    /// Report label (the `<label>` of `BENCH_<label>.json`).
    pub label: String,
    /// Median wall time of the fixed calibration busy-loop on the
    /// machine that produced this report, nanoseconds.
    pub calibration_ns: u64,
    /// Per-workload measurements, in suite order.
    pub workloads: Vec<WorkloadReport>,
}

impl PerfReport {
    /// Renders the report as deterministic-schema JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"label\": \"{}\",\n", self.label));
        out.push_str(&format!("  \"calibration_ns\": {},\n", self.calibration_ns));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", w.name));
            out.push_str(&format!("      \"median_ns\": {},\n", w.median_ns()));
            out.push_str(&format!("      \"iqr_ns\": {},\n", w.iqr_ns()));
            out.push_str("      \"trials_ns\": [");
            for (j, t) in w.trials_ns.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&t.to_string());
            }
            out.push_str("],\n      \"counters\": [\n");
            for (j, (name, value)) in w.counters.iter().enumerate() {
                out.push_str(&format!("        [\"{name}\", {value}]"));
                if j + 1 < w.counters.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("      ]\n    }");
            if i + 1 < self.workloads.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report emitted by [`PerfReport::to_json`].
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, a missing or unknown `schema` tag, and
    /// structurally wrong documents.
    pub fn parse(src: &str) -> Result<PerfReport, String> {
        let doc = Value::parse(src)?;
        let schema = doc.get("schema").and_then(Value::as_str).ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("unknown schema `{schema}` (expected `{SCHEMA}`)"));
        }
        let label = doc.get("label").and_then(Value::as_str).ok_or("missing label")?.to_owned();
        let calibration_ns =
            doc.get("calibration_ns").and_then(Value::as_u64).ok_or("missing calibration_ns")?;
        let mut workloads = Vec::new();
        for w in doc.get("workloads").and_then(Value::as_arr).ok_or("missing workloads")? {
            let name = w.get("name").and_then(Value::as_str).ok_or("workload missing name")?;
            let trials_ns = w
                .get("trials_ns")
                .and_then(Value::as_arr)
                .ok_or("workload missing trials_ns")?
                .iter()
                .map(|t| t.as_u64().ok_or("bad trial value"))
                .collect::<Result<Vec<_>, _>>()?;
            let mut counters = Vec::new();
            for pair in
                w.get("counters").and_then(Value::as_arr).ok_or("workload missing counters")?
            {
                let pair = pair.as_arr().ok_or("counter entry is not a pair")?;
                match pair {
                    [k, v] => counters.push((
                        k.as_str().ok_or("bad counter name")?.to_owned(),
                        v.as_u64().ok_or("bad counter value")?,
                    )),
                    _ => return Err("counter entry is not a pair".into()),
                }
            }
            workloads.push(WorkloadReport { name: name.to_owned(), trials_ns, counters });
        }
        Ok(PerfReport { label, calibration_ns, workloads })
    }
}

/// Compares a fresh report against the pinned baseline; returns one
/// human-readable failure per violation (empty = gate passes).
///
/// Counter drift of any size fails. Wall-median regressions beyond
/// `threshold_percent` fail, after scaling the baseline by the two
/// reports' calibration ratio; improvements never fail. Workloads
/// missing from the current report fail; *extra* current workloads are
/// ignored (adding coverage must not break the gate until the baseline
/// is re-pinned).
pub fn compare(baseline: &PerfReport, current: &PerfReport, threshold_percent: f64) -> Vec<String> {
    let mut failures = Vec::new();
    let scale = current.calibration_ns as f64 / baseline.calibration_ns.max(1) as f64;
    for b in &baseline.workloads {
        let Some(c) = current.workloads.iter().find(|w| w.name == b.name) else {
            failures.push(format!("{}: workload missing from current report", b.name));
            continue;
        };
        for (name, bv) in &b.counters {
            match c.counters.iter().find(|(n, _)| n == name) {
                Some((_, cv)) if cv == bv => {}
                Some((_, cv)) => failures.push(format!(
                    "{}: deterministic counter {name} drifted: baseline {bv}, current {cv}",
                    b.name
                )),
                None => failures.push(format!("{}: deterministic counter {name} missing", b.name)),
            }
        }
        for (name, _) in &c.counters {
            if !b.counters.iter().any(|(n, _)| n == name) {
                failures.push(format!(
                    "{}: counter {name} absent from baseline (re-pin bench/baseline.json)",
                    b.name
                ));
            }
        }
        let allowed = b.median_ns() as f64 * scale * (1.0 + threshold_percent / 100.0);
        let got = c.median_ns() as f64;
        if got > allowed {
            failures.push(format!(
                "{}: wall median {:.2}ms exceeds {:.2}ms \
                 (baseline {:.2}ms × {:.2} calibration × {}% threshold)",
                b.name,
                got / 1e6,
                allowed / 1e6,
                b.median_ns() as f64 / 1e6,
                scale,
                threshold_percent
            ));
        }
    }
    failures
}

/// Renders a baseline-vs-current delta as a GitHub-flavored markdown
/// table — what the perf-gate job appends to its step summary, so a
/// regression (or a healthy margin) is readable in the run page without
/// downloading `BENCH_*.json`. One row per current workload: current
/// median, calibration-scaled baseline median, the wall delta against
/// that scaled figure, and whether the deterministic counters match.
/// Workloads absent from the baseline render a `new` row (the gate
/// ignores them until the baseline is re-pinned).
pub fn delta_table(baseline: &PerfReport, current: &PerfReport) -> String {
    let scale = current.calibration_ns as f64 / baseline.calibration_ns.max(1) as f64;
    let mut out = String::with_capacity(2048);
    out.push_str("### Perf gate: baseline vs current\n\n");
    out.push_str(&format!(
        "Baseline `{}` scaled by calibration ratio {scale:.2} \
         ({} ns → {} ns busy-loop median).\n\n",
        baseline.label, baseline.calibration_ns, current.calibration_ns
    ));
    out.push_str("| workload | baseline (scaled) | current | Δ wall | counters |\n");
    out.push_str("|---|---:|---:|---:|---|\n");
    for c in &current.workloads {
        let Some(b) = baseline.workloads.iter().find(|b| b.name == c.name) else {
            out.push_str(&format!(
                "| `{}` | — | {:.2}ms | new | — |\n",
                c.name,
                c.median_ns() as f64 / 1e6
            ));
            continue;
        };
        let scaled = b.median_ns() as f64 * scale;
        let got = c.median_ns() as f64;
        let delta = (got - scaled) / scaled.max(1.0) * 100.0;
        let drifted = b.counters != c.counters;
        out.push_str(&format!(
            "| `{}` | {:.2}ms | {:.2}ms | {delta:+.1}% | {} |\n",
            c.name,
            scaled / 1e6,
            got / 1e6,
            if drifted { "**DRIFTED**" } else { "match" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(label: &str, cal: u64, trials: &[u64], counters: &[(&str, u64)]) -> PerfReport {
        PerfReport {
            label: label.into(),
            calibration_ns: cal,
            workloads: vec![WorkloadReport {
                name: "w".into(),
                trials_ns: trials.to_vec(),
                counters: counters.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            }],
        }
    }

    #[test]
    fn median_and_iqr() {
        let w = WorkloadReport {
            name: "w".into(),
            trials_ns: vec![50, 10, 30, 20, 40],
            counters: vec![],
        };
        assert_eq!(w.median_ns(), 30);
        assert_eq!(w.iqr_ns(), 40 - 20);
        let even = WorkloadReport { name: "w".into(), trials_ns: vec![10, 20], counters: vec![] };
        assert_eq!(even.median_ns(), 15);
    }

    #[test]
    fn json_round_trips() {
        let r = report("t", 1000, &[5, 7, 6], &[("a.b", 42), ("c.d", 0)]);
        let parsed = PerfReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        assert!(PerfReport::parse("{}").is_err());
        assert!(PerfReport::parse(r#"{"schema": "bogus"}"#).is_err());
    }

    #[test]
    fn identical_reports_pass() {
        let r = report("t", 1000, &[100], &[("n", 5)]);
        assert!(compare(&r, &r, 25.0).is_empty());
    }

    #[test]
    fn counter_drift_fails_regardless_of_threshold() {
        let base = report("b", 1000, &[100], &[("n", 5)]);
        let cur = report("c", 1000, &[100], &[("n", 6)]);
        let failures = compare(&base, &cur, 1000.0);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("drifted"), "{failures:?}");
    }

    #[test]
    fn wall_regression_beyond_threshold_fails() {
        let base = report("b", 1000, &[100], &[]);
        assert!(compare(&base, &report("c", 1000, &[124], &[]), 25.0).is_empty());
        let failures = compare(&base, &report("c", 1000, &[126], &[]), 25.0);
        assert_eq!(failures.len(), 1, "{failures:?}");
        // Getting faster is never a failure.
        assert!(compare(&base, &report("c", 1000, &[10], &[]), 25.0).is_empty());
    }

    #[test]
    fn calibration_ratio_rescales_the_wall_threshold() {
        // Current machine is 2× slower (calibration 2000 vs 1000): a 2×
        // wall time is within budget, 3× is not.
        let base = report("b", 1000, &[100], &[]);
        assert!(compare(&base, &report("c", 2000, &[240], &[]), 25.0).is_empty());
        assert_eq!(compare(&base, &report("c", 2000, &[300], &[]), 25.0).len(), 1);
    }

    #[test]
    fn delta_table_scales_flags_drift_and_marks_new_workloads() {
        // Current machine 2× slower: a 2× wall median is a 0% delta.
        let base = report("pinned", 1000, &[100], &[("n", 5)]);
        let mut cur = report("ci", 2000, &[200], &[("n", 6)]);
        cur.workloads.push(WorkloadReport {
            name: "extra".into(),
            trials_ns: vec![50],
            counters: vec![],
        });
        let t = delta_table(&base, &cur);
        assert!(t.contains("| `w` |"), "{t}");
        assert!(t.contains("+0.0%"), "{t}");
        assert!(t.contains("**DRIFTED**"), "{t}");
        assert!(t.contains("| `extra` | — |"), "{t}");
        cur.workloads[0].counters = vec![("n".into(), 5)];
        assert!(delta_table(&base, &cur).contains("| match |"));
    }

    #[test]
    fn missing_workloads_fail_extra_ones_do_not() {
        let base = report("b", 1000, &[100], &[]);
        let mut cur = report("c", 1000, &[100], &[]);
        cur.workloads[0].name = "other".into();
        let failures = compare(&base, &cur, 25.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
        // Extra workload in current only: fine.
        let mut wide = base.clone();
        wide.workloads.push(WorkloadReport {
            name: "new".into(),
            trials_ns: vec![1],
            counters: vec![],
        });
        assert!(compare(&base, &wide, 25.0).is_empty());
    }
}
