//! Regenerates **Tables 4, 5 and 6** of the paper: the enabling,
//! disabling, and independence probabilities between optimization phases,
//! mined from the exhaustively enumerated spaces of the whole suite.
//!
//! ```text
//! cargo run --release -p bench --bin tables456 [enable|disable|independence]
//! ```
//!
//! With no argument, all three tables print.

use vpo_opt::PhaseId;

fn main() {
    let which = std::env::args().nth(1);
    eprintln!("enumerating the suite (this mines every completed space)...");
    let ia = bench::suite_interaction(&bench::harness_config());
    eprintln!("accumulated {} functions", ia.function_count());

    let all = which.is_none();
    let which = which.unwrap_or_default();
    if all || which == "enable" {
        print_enabling(&ia);
    }
    if all || which == "disable" {
        print_disabling(&ia);
    }
    if all || which == "independence" {
        print_independence(&ia);
    }
}

fn header() -> String {
    let mut h = format!("{:>5} |", "Phase");
    h.push_str(&format!(" {:>4}", "St"));
    for x in PhaseId::ALL {
        h.push_str(&format!(" {:>4}", x.letter()));
    }
    h
}

fn print_enabling(ia: &phase_order::interaction::InteractionAnalysis) {
    println!("\nTable 4: Enabling Interaction between Optimization Phases");
    println!("(row y, column x: probability that x enables y; St = active at start;");
    println!(" blank: probability under 0.005 or never observed)");
    println!("{}", header());
    for y in PhaseId::ALL {
        let mut line = format!("{:>5} |", y.letter());
        line.push_str(&format!(" {:>4}", bench::fmt_prob(ia.start_probability(y), 0.005)));
        for x in PhaseId::ALL {
            let p = if x == y { None } else { ia.enabling_probability(y, x) };
            line.push_str(&format!(" {:>4}", bench::fmt_prob(p, 0.005)));
        }
        println!("{line}");
    }
}

fn print_disabling(ia: &phase_order::interaction::InteractionAnalysis) {
    println!("\nTable 5: Disabling Interaction between Optimization Phases");
    println!("(row y, column x: probability that x disables y; blank under 0.005)");
    println!("{}", header().replacen(" St  ", "", 1));
    for y in PhaseId::ALL {
        let mut line = format!("{:>5} |", y.letter());
        for x in PhaseId::ALL {
            line.push_str(&format!(
                " {:>4}",
                bench::fmt_prob(ia.disabling_probability(y, x), 0.005)
            ));
        }
        println!("{line}");
    }
}

fn print_independence(ia: &phase_order::interaction::InteractionAnalysis) {
    println!("\nTable 6: Independence Relationship between Optimization Phases");
    println!("(row p, column q: probability the pair commutes when consecutively");
    println!(" active; blank: independence above 0.995 or never observed together)");
    println!("{}", header().replacen(" St  ", "", 1));
    for p in PhaseId::ALL {
        let mut line = format!("{:>5} |", p.letter());
        for q in PhaseId::ALL {
            // The paper blanks *high* independence (> 0.995) to highlight
            // the interacting pairs.
            let v = ia.independence_probability(p, q);
            let s = match v {
                Some(x) if x <= 0.995 => format!("{x:.2}"),
                _ => "    ".to_owned(),
            };
            line.push_str(&format!(" {s:>4}"));
        }
        println!("{line}");
    }
}
