//! Regenerates **Table 3** of the paper: per-function search-space
//! statistics for the MiBench suite.
//!
//! ```text
//! cargo run --release -p bench --bin table3
//! ```
//!
//! Environment: `PHASE_ORDER_MAX_NODES` caps the per-function instance
//! count (default 400,000); functions exceeding it print `N/A`, matching
//! the paper's treatment of `fft_float` and `main(f)`.

use phase_order::stats::FunctionRow;

fn main() {
    let config = bench::harness_config();
    eprintln!(
        "enumerating phase-order spaces (cap: {} instances per function)...",
        config.max_nodes
    );
    let mut rows = bench::table3_rows(&config);
    // The paper sorts by unoptimized instruction count, descending.
    rows.sort_by_key(|(row, _)| std::cmp::Reverse(row.insts));

    println!("Table 3: Function-Level Search Space Statistics");
    println!("{}", FunctionRow::header());
    let mut complete = 0usize;
    let mut total = 0usize;
    let mut sum_diff = 0.0;
    let mut diffs = 0usize;
    let mut sums = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64); // insts, fninst, attempt, len, cf, leaf
    for (row, _e) in &rows {
        println!("{}", row.render());
        total += 1;
        if let Some(instances) = row.fn_instances {
            complete += 1;
            sums.0 += row.insts as u64;
            sums.1 += instances as u64;
            sums.2 += row.attempted_phases.unwrap_or(0);
            sums.3 += row.max_seq_len.unwrap_or(0) as u64;
            sums.4 += row.control_flows.unwrap_or(0) as u64;
            sums.5 += row.leaves.unwrap_or(0) as u64;
        }
        if let Some(d) = row.code_diff_percent() {
            sum_diff += d;
            diffs += 1;
        }
    }
    if complete > 0 {
        let n = complete as f64;
        println!(
            "{:<22} {:>6.1} {:>4} {:>4} {:>4} {:>9.1} {:>11.1} {:>4.1} {:>5.1} {:>6.1}",
            "average",
            sums.0 as f64 / n,
            "",
            "",
            "",
            sums.1 as f64 / n,
            sums.2 as f64 / n,
            sums.3 as f64 / n,
            sums.4 as f64 / n,
            sums.5 as f64 / n,
        );
    }
    println!();
    println!(
        "exhaustively enumerated {complete} of {total} functions ({:.1}%)",
        complete as f64 * 100.0 / total as f64
    );
    if diffs > 0 {
        println!("average leaf code-size spread: {:.1}% (paper: 37.8%)", sum_diff / diffs as f64);
    }
}
