//! Regenerates the paper's **figures** (and the descriptive Tables 1–2):
//!
//! * `table1` — the candidate optimization phases and designations;
//! * `table2` — the MiBench subset;
//! * `fig1` / `fig2` / `fig4` — naive space vs dormant-phase pruning vs
//!   identical-instance DAG, as node counts for a real function;
//! * `fig3` — different optimizations producing the same code;
//! * `fig5` — register/label remapping detecting equivalent instances;
//! * `fig6` — naive re-evaluation vs the prefix-sharing enhancements;
//! * `fig7` — a weighted DAG in Graphviz syntax;
//! * `fig8` — a probabilistic-compilation trace.
//!
//! ```text
//! cargo run --release -p bench --bin figures -- [table1|table2|fig1|...]
//! ```
//! With no argument, everything prints in order.

use phase_order::enumerate::{enumerate, Config, ReplayMode};
use phase_order::interaction::InteractionAnalysis;
use phase_order::prob::{probabilistic_compile, ProbTables};
use vpo_opt::{attempt, PhaseId, Target};
use vpo_rtl::canon;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    let all = which.is_empty();
    if all || which == "table1" {
        table1();
    }
    if all || which == "table2" {
        table2();
    }
    if all || which == "fig1" || which == "fig2" || which == "fig4" {
        figs_1_2_4();
    }
    if all || which == "fig3" {
        fig3();
    }
    if all || which == "fig5" {
        fig5();
    }
    if all || which == "fig6" {
        fig6();
    }
    if all || which == "fig7" {
        fig7();
    }
    if all || which == "fig8" {
        fig8();
    }
}

fn table1() {
    println!("Table 1: Candidate Optimization Phases with Their Designations");
    println!("{:<34} {:>2}  {:<13} legal-when", "Optimization Phase", "Id", "requires-regs");
    for p in PhaseId::ALL {
        let legal = match p {
            PhaseId::EvalOrder => "before register assignment",
            PhaseId::LoopUnroll | PhaseId::LoopXform => "after register allocation",
            _ => "always",
        };
        println!(
            "{:<34} {:>2}  {:<13} {legal}",
            p.name(),
            p.letter(),
            if p.requires_registers() { "yes" } else { "no" },
        );
    }
    println!();
}

fn table2() {
    println!("Table 2: MiBench Benchmarks Used");
    println!("{:<10} {:<14} Description", "Category", "Program");
    for b in mibench::all() {
        println!("{:<10} {:<14} {}", b.category, b.name, b.description);
    }
    println!();
}

fn figs_1_2_4() {
    // The three views of the same space (Figures 1, 2, 4) on a real
    // function, reported as node counts per level.
    let src = "int f(int a) { int x = a + 1; return x * 4; }";
    let p = vpo_frontend::compile(src).unwrap();
    let f = &p.functions[0];
    let e = enumerate(f, &Target::default(), &Config::default());
    let space = &e.space;

    // Figure 2 (tree with dormant pruning): distinct active sequences =
    // path counts through the DAG.
    let mut paths = vec![0u64; space.len()];
    paths[space.root().0 as usize] = 1;
    // Process in level order (level = shortest discovery depth, and all
    // edges go from expanded nodes, so repeated passes converge quickly).
    for _ in 0..space.len() {
        let mut changed = false;
        let mut next = vec![0u64; space.len()];
        next[space.root().0 as usize] = 1;
        for (id, n) in space.iter() {
            for &(_, c) in &n.children {
                next[c.0 as usize] += paths[id.0 as usize];
            }
        }
        if next != paths {
            paths = next;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    let tree_nodes: u64 = paths.iter().sum();
    let depth = space.max_active_sequence_length();
    let naive: f64 = (0..=depth).map(|n| 15f64.powi(n as i32)).sum();

    println!("Figures 1, 2 and 4: three views of one phase-order space");
    println!("function: {src}");
    println!("  Figure 1 (naive attempted space, 15 phases, depth {depth}): {naive:.3e} sequences");
    println!("  Figure 2 (tree after dormant-phase pruning): {tree_nodes} nodes");
    println!(
        "  Figure 4 (DAG after identical-instance detection): {} nodes, {} leaves",
        space.len(),
        space.leaf_count()
    );
    println!();
}

/// Finds a node with at least two parents in `space` and returns two
/// distinct phase sequences from the root that reach it.
fn converging_sequences(
    space: &phase_order::SearchSpace,
) -> Option<(Vec<PhaseId>, Vec<PhaseId>, phase_order::NodeId)> {
    // Discovery path of a node.
    let path_to = |mut id: phase_order::NodeId| {
        let mut seq = Vec::new();
        while let Some((parent, phase)) = space.node(id).discovered_from {
            seq.push(phase);
            id = parent;
        }
        seq.reverse();
        seq
    };
    // Scan edges for one that reaches an already-discovered node through a
    // different parent (a convergence edge).
    let mut best: Option<(Vec<PhaseId>, Vec<PhaseId>, phase_order::NodeId)> = None;
    for (uid, u) in space.iter() {
        for &(phase, v) in &u.children {
            let discovered = space.node(v).discovered_from;
            if discovered != Some((uid, phase)) && discovered.is_some() {
                let via_discovery = path_to(v);
                let mut via_here = path_to(uid);
                via_here.push(phase);
                if via_discovery != via_here {
                    let cand = (via_discovery, via_here, v);
                    // Prefer the shortest demonstration.
                    let len = cand.0.len() + cand.1.len();
                    if best.as_ref().map(|(a, b, _)| a.len() + b.len() > len).unwrap_or(true) {
                        best = Some(cand);
                    }
                }
            }
        }
    }
    best
}

fn replay(f: &vpo_rtl::Function, seq: &[PhaseId], target: &Target) -> vpo_rtl::Function {
    let mut g = f.clone();
    for &p in seq {
        attempt(&mut g, p, target);
    }
    g
}

fn fig3() {
    println!("Figure 3: Different Optimizations Having the Same Effect");
    // The paper's example: r[2]=1; r[3]=r[4]+r[2]; — reachable through
    // instruction selection or through constant propagation + dead
    // assignment elimination. Rather than hand-pick orders, find a real
    // convergence in the exhaustively enumerated space.
    let src = "int f(int r4) { int r2 = 1; return r4 + r2; }";
    let p = vpo_frontend::compile(src).unwrap();
    let target = Target::default();
    let e = enumerate(&p.functions[0], &target, &Config::default());
    let Some((seq_a, seq_b, node)) = converging_sequences(&e.space) else {
        println!("no convergence found (space too small)\n");
        return;
    };
    let fa = replay(&p.functions[0], &seq_a, &target);
    let fb = replay(&p.functions[0], &seq_b, &target);
    let letters = |s: &[PhaseId]| s.iter().map(|p| p.letter()).collect::<String>();
    println!("source: {src}");
    println!(
        "sequences `{}` and `{}` both produce instance {node}:",
        letters(&seq_a),
        letters(&seq_b)
    );
    println!("{fa}");
    println!("identical instances: {}", canon::fingerprint(&fa) == canon::fingerprint(&fb));
    println!();
}

fn fig5() {
    println!("Figure 5: Different Functions with Equivalent Code");
    // Find a convergence whose two replayed instances differ *textually*
    // (register numbers or labels) yet canonicalize identically — the
    // situation the remapping of Section 4.2.1 exists for.
    let src = r#"
        int a[1000];
        int sum() {
            int s = 0;
            int i;
            for (i = 0; i < 1000; i++) s += a[i];
            return s;
        }
    "#;
    let p = vpo_frontend::compile(src).unwrap();
    let target = Target::default();
    let e = enumerate(&p.functions[0], &target, &Config::default());
    let letters = |s: &[PhaseId]| s.iter().map(|p| p.letter()).collect::<String>();
    // Search all convergences for a textual mismatch.
    let mut shown = false;
    'outer: for (uid, u) in e.space.iter() {
        for &(phase, v) in &u.children {
            let discovered = e.space.node(v).discovered_from;
            if discovered == Some((uid, phase)) || discovered.is_none() {
                continue;
            }
            let path_to = |mut id: phase_order::NodeId| {
                let mut seq = Vec::new();
                while let Some((parent, ph)) = e.space.node(id).discovered_from {
                    seq.push(ph);
                    id = parent;
                }
                seq.reverse();
                seq
            };
            let seq_a = path_to(v);
            let mut seq_b = path_to(uid);
            seq_b.push(phase);
            let fa = replay(&p.functions[0], &seq_a, &target);
            let fb = replay(&p.functions[0], &seq_b, &target);
            if fa != fb {
                println!(
                    "orders `{}` and `{}` produce textually different code:",
                    letters(&seq_a),
                    letters(&seq_b)
                );
                println!("(a)\n{fa}");
                println!("(b)\n{fb}");
                println!(
                    "canonically equal after register/label remapping: {}",
                    canon::canonically_equal(&fa, &fb)
                );
                shown = true;
                break 'outer;
            }
        }
    }
    if !shown {
        println!("every convergence here was already textually identical");
    }
    println!();
}

fn fig6() {
    println!("Figure 6: Enhancements for Faster Searches");
    println!("(naive per-sequence re-evaluation vs prefix-sharing)");
    let target = Target::default();
    println!("{:<22} {:>12} {:>12} {:>7}", "function", "naive-apps", "shared-apps", "factor");
    let mut shown = 0;
    for sf in bench::suite_functions() {
        if sf.function.inst_count() > 60 {
            continue; // keep the naive mode affordable
        }
        let fast = enumerate(&sf.function, &target, &Config::default());
        if !fast.outcome.is_complete() || fast.space.len() > 3000 {
            continue;
        }
        let slow = enumerate(
            &sf.function,
            &target,
            &Config { replay: ReplayMode::NaiveReplay, ..Config::default() },
        );
        println!(
            "{:<22} {:>12} {:>12} {:>6.1}x",
            sf.display,
            slow.stats.phases_applied,
            fast.stats.phases_applied,
            slow.stats.phases_applied as f64 / fast.stats.phases_applied as f64
        );
        shown += 1;
        if shown >= 8 {
            break;
        }
    }
    println!("(the paper reports a 5–10x reduction)\n");
}

fn fig7() {
    println!("Figure 7: Weighted DAG (Graphviz)");
    let p = vpo_frontend::compile("int f(int a) { return a * 4 + 0; }").unwrap();
    let e = enumerate(&p.functions[0], &Target::default(), &Config::default());
    println!("{}", e.space.to_dot());
}

fn fig8() {
    println!("Figure 8: Probabilistic Compilation (one trace)");
    let config = Config::default();
    let target = Target::default();
    // Mine tables from the bitcount benchmark only — quick but realistic.
    let b = mibench::bitcount::benchmark();
    let prog = b.compile().unwrap();
    let mut ia = InteractionAnalysis::new();
    for f in &prog.functions {
        let e = enumerate(f, &target, &config);
        if e.outcome.is_complete() {
            ia.add_space(&e.space);
        }
    }
    let tables = ProbTables::from_analysis(&ia);
    let mut f = prog.functions[0].clone();
    let stats = probabilistic_compile(&mut f, &target, &tables);
    println!(
        "bit_count: attempted {} phases, {} active, sequence {}",
        stats.attempted,
        stats.active,
        phase_order::enumerate::sequence_letters(&stats.sequence)
    );
    println!();
}
