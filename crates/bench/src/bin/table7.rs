//! Regenerates **Table 7** of the paper: the conventional batch compiler
//! versus the probabilistic batch compiler (Figure 8), per function —
//! attempted/active phases, compilation time, and the probabilistic/old
//! ratios for time, code size, and dynamic instruction count.
//!
//! ```text
//! cargo run --release -p bench --bin table7
//! ```
//!
//! The probability tables are mined from the suite's own exhaustive
//! enumerations first, exactly as in the paper.

use phase_order::prob::ProbTables;

fn main() {
    eprintln!("mining enabling/disabling probabilities from exhaustive enumerations...");
    let ia = bench::suite_interaction(&bench::harness_config());
    let tables = ProbTables::from_analysis(&ia);

    eprintln!("compiling the suite twice (batch, probabilistic)...");
    let rows = bench::table7_rows(&tables);

    println!("Table 7: Old Batch vs Probabilistic Compilation");
    println!(
        "{:<22} {:>7} {:>6} {:>9} | {:>7} {:>6} {:>9} | {:>6} {:>6} {:>6}",
        "Function",
        "OldAtt",
        "OldAct",
        "OldTime",
        "PrAtt",
        "PrAct",
        "PrTime",
        "T-rat",
        "Size",
        "Speed"
    );
    let mut sums = (0u64, 0u64, 0.0f64, 0u64, 0u64, 0.0f64);
    let mut size_sum = 0.0;
    let mut speed_sum = 0.0;
    let mut speed_n = 0usize;
    for r in &rows {
        let t_ratio = r.prob_time.as_secs_f64() / r.old_time.as_secs_f64().max(1e-9);
        println!(
            "{:<22} {:>7} {:>6} {:>8.2}µ | {:>7} {:>6} {:>8.2}µ | {:>6.3} {:>6.3} {:>6}",
            r.display,
            r.old.attempted,
            r.old.active,
            r.old_time.as_secs_f64() * 1e6,
            r.prob.attempted,
            r.prob.active,
            r.prob_time.as_secs_f64() * 1e6,
            t_ratio,
            r.size_ratio,
            r.speed_ratio.map(|s| format!("{s:.3}")).unwrap_or_else(|| "N/A".into()),
        );
        sums.0 += r.old.attempted as u64;
        sums.1 += r.old.active as u64;
        sums.2 += r.old_time.as_secs_f64();
        sums.3 += r.prob.attempted as u64;
        sums.4 += r.prob.active as u64;
        sums.5 += r.prob_time.as_secs_f64();
        size_sum += r.size_ratio;
        if let Some(s) = r.speed_ratio {
            speed_sum += s;
            speed_n += 1;
        }
    }
    let n = rows.len() as f64;
    println!();
    println!(
        "averages: old attempted {:.1}, old active {:.1}; prob attempted {:.1}, prob active {:.1}",
        sums.0 as f64 / n,
        sums.1 as f64 / n,
        sums.3 as f64 / n,
        sums.4 as f64 / n
    );
    println!(
        "time ratio prob/old: {:.3} (paper: 0.297); size ratio: {:.3} (paper: 1.015); speed ratio: {} (paper: 1.005)",
        sums.5 / sums.2.max(1e-12),
        size_sum / n,
        if speed_n > 0 { format!("{:.3}", speed_sum / speed_n as f64) } else { "N/A".into() },
    );
}
