//! `perfsuite` — the pinned perf-baseline harness and CI regression gate
//! (DESIGN.md §9).
//!
//! ```text
//! perfsuite [--label L] [--trials N] [--metrics-dir DIR]
//!           [--engine scratch|reference] [--sim-engine interp|threaded]
//!           [--check] [--threshold PCT] [--baseline PATH]
//!           [--summary PATH]
//! ```
//!
//! Runs the pinned workload set — three MiBench kernels enumerated
//! serially and with `--jobs 2`, a campaign over `bitcount`, and an
//! oracle verification — `N` times each (default 5), recording per-trial
//! wall times and the deterministic telemetry counters of each run, and
//! writes `BENCH_<label>.json` at the repo root. Within one invocation
//! the deterministic counters must be identical across trials; any
//! in-process drift aborts the suite (that is the determinism
//! self-check of the acceptance criteria).
//!
//! `--check` then compares the fresh report against `bench/baseline.json`
//! (or `--baseline PATH`): deterministic counters must match the
//! baseline exactly, wall medians may regress at most `--threshold`
//! percent (default 25) after scaling by the calibration ratio of the
//! two machines. Any violation prints and exits nonzero — the CI gate.
//!
//! `--metrics-dir DIR` additionally writes each workload's final
//! telemetry snapshot (`phase-order-telemetry-v1` JSON) into `DIR`.
//! `--summary PATH` appends the baseline-vs-current delta as a markdown
//! table to `PATH` — pass `$GITHUB_STEP_SUMMARY` in CI to surface the
//! comparison on the run page.
//!
//! `--engine` selects the expansion engine for every workload (default
//! `scratch`); `--engine reference` re-times the suite on the
//! pre-scratch-core path for A/B comparisons. `--sim-engine` does the
//! same for the simulator: `threaded` (default) is the pre-lowered
//! direct-threaded engine, `interp` the tree-walking reference — an
//! interleaved pair of runs is the before/after table in EXPERIMENTS.md. Both engines must produce
//! identical search semantics, so whenever the baseline file exists —
//! even without `--check` — the suite additionally verifies that the
//! engine-independent semantic counters (`enumerate.phases_attempted`
//! and `enumerate.dormant_prunes`) of every workload match the baseline
//! exactly. That guard catches a dormant-phase prefilter silently
//! changing what the search explores, including while re-pinning a
//! baseline.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use bench::perf::{compare, delta_table, PerfReport, WorkloadReport};
use phase_order::campaign::{self, CampaignConfig, FunctionTask, NullObserver};
use phase_order::enumerate::{
    enumerate, enumerate_semantic, enumerate_semantic_pruned, Config, Engine,
};
use phase_order::oracle::{self, OracleConfig};
use phase_order::semantic::SemanticConfig;
use phase_order::telemetry;
use vpo_opt::batch::batch_compile;
use vpo_opt::Target;
use vpo_sim::{Machine, SimEngine};

/// The pinned kernels with their inner repetition counts: small enough
/// that the full suite stays in seconds, spread over three benchmarks
/// (per EXPERIMENTS.md their spaces hold 146 / 149 / 565 distinct
/// instances). Each timed trial runs the enumeration `reps` times so
/// that the tiny kernels still spend >100ms per trial — below that,
/// scheduler noise on a loaded CI box swamps a 25% threshold.
const KERNELS: &[(&str, &str, usize)] =
    &[("bitcount", "bit_count", 8), ("fft", "reverse_bits", 6), ("sha", "sha_transform", 1)];

struct Options {
    label: String,
    trials: usize,
    check: bool,
    threshold: f64,
    baseline: Option<PathBuf>,
    metrics_dir: Option<PathBuf>,
    summary: Option<PathBuf>,
    engine: Engine,
    sim_engine: SimEngine,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        label: "local".into(),
        trials: 5,
        check: false,
        threshold: 25.0,
        baseline: None,
        metrics_dir: None,
        summary: None,
        engine: Engine::Scratch,
        sim_engine: SimEngine::Threaded,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            if let Some(v) = a.strip_prefix(name).and_then(|t| t.strip_prefix('=')) {
                return Ok(v.to_owned());
            }
            args.next().ok_or(format!("{name} needs a value"))
        };
        if a == "--check" {
            opts.check = true;
        } else if a.starts_with("--label") {
            opts.label = value("--label")?;
        } else if a.starts_with("--trials") {
            let v = value("--trials")?;
            opts.trials = v.parse().map_err(|_| format!("bad --trials value `{v}`"))?;
            if opts.trials == 0 {
                return Err("--trials must be at least 1".into());
            }
        } else if a.starts_with("--threshold") {
            let v = value("--threshold")?;
            opts.threshold = v.parse().map_err(|_| format!("bad --threshold value `{v}`"))?;
        } else if a.starts_with("--baseline") {
            opts.baseline = Some(PathBuf::from(value("--baseline")?));
        } else if a.starts_with("--metrics-dir") {
            opts.metrics_dir = Some(PathBuf::from(value("--metrics-dir")?));
        } else if a.starts_with("--summary") {
            opts.summary = Some(PathBuf::from(value("--summary")?));
        } else if a.starts_with("--sim-engine") {
            let v = value("--sim-engine")?;
            opts.sim_engine = match v.as_str() {
                "interp" => SimEngine::Interp,
                "threaded" => SimEngine::Threaded,
                _ => return Err(format!("bad --sim-engine value `{v}` (interp|threaded)")),
            };
        } else if a.starts_with("--engine") {
            let v = value("--engine")?;
            opts.engine = match v.as_str() {
                "scratch" => Engine::Scratch,
                "reference" => Engine::Reference,
                _ => return Err(format!("bad --engine value `{v}` (scratch|reference)")),
            };
        } else {
            return Err(format!("unknown argument `{a}`"));
        }
    }
    Ok(opts)
}

/// The repo root, resolved from this crate's manifest at compile time —
/// `BENCH_<label>.json` and the default baseline live there.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Median wall time of a fixed xorshift busy-loop: the machine-speed
/// yardstick stored as `calibration_ns` (see `bench::perf::compare`).
fn calibrate() -> u64 {
    let mut samples = [0u64; 5];
    for s in samples.iter_mut() {
        let start = Instant::now();
        let mut x = 0x9e37_79b9_7f4a_7c15_u64;
        let mut acc = 0u64;
        for _ in 0..2_000_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc = acc.wrapping_add(x);
        }
        std::hint::black_box(acc);
        *s = start.elapsed().as_nanos() as u64;
    }
    samples.sort_unstable();
    samples[2]
}

/// Runs one workload `trials` times: reset the registry, time the body,
/// capture the deterministic counters, and insist they never change
/// between trials. Writes the final telemetry snapshot into
/// `metrics_dir` when given.
fn run_workload(
    name: &str,
    trials: usize,
    reps: usize,
    metrics_dir: Option<&Path>,
    mut body: impl FnMut(),
) -> Result<WorkloadReport, String> {
    let tm = telemetry::global();
    let mut trials_ns = Vec::with_capacity(trials);
    let mut counters: Option<Vec<(String, u64)>> = None;
    for trial in 0..trials {
        tm.reset();
        let start = Instant::now();
        for _ in 0..reps {
            body();
        }
        trials_ns.push(start.elapsed().as_nanos() as u64);
        let got: Vec<(String, u64)> = tm
            .snapshot()
            .deterministic_values()
            .into_iter()
            .map(|(n, v)| (n.to_owned(), v))
            .collect();
        match &counters {
            None => counters = Some(got),
            Some(first) if *first != got => {
                return Err(format!(
                    "{name}: deterministic counters drifted between trial 1 and \
                     trial {}: {:?} vs {got:?}",
                    trial + 1,
                    first
                ))
            }
            Some(_) => {}
        }
    }
    if let Some(dir) = metrics_dir {
        let file: String =
            name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
        tm.snapshot()
            .write(&dir.join(format!("{file}.json")))
            .map_err(|e| format!("{name}: writing metrics snapshot: {e}"))?;
    }
    let report =
        WorkloadReport { name: name.to_owned(), trials_ns, counters: counters.unwrap_or_default() };
    eprintln!(
        "  {name}: median {:.2}ms, IQR {:.2}ms over {trials} trial(s)",
        report.median_ns() as f64 / 1e6,
        report.iqr_ns() as f64 / 1e6
    );
    Ok(report)
}

fn run_suite(opts: &Options) -> Result<PerfReport, String> {
    if let Some(dir) = &opts.metrics_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("--metrics-dir {}: {e}", dir.display()))?;
    }
    let target = Target::default();
    eprintln!("perfsuite: calibrating...");
    let calibration_ns = calibrate();
    eprintln!("  calibration median {:.2}ms", calibration_ns as f64 / 1e6);

    let mut workloads = Vec::new();
    let metrics_dir = opts.metrics_dir.as_deref();

    // Enumeration: each pinned kernel, serial and with two workers.
    for (bench_name, func, reps) in KERNELS {
        let program = mibench::find(bench_name)
            .ok_or(format!("no benchmark `{bench_name}`"))?
            .compile()
            .map_err(|e| format!("{bench_name}: {e}"))?;
        let f = program.function(func).ok_or(format!("{bench_name}: no function `{func}`"))?;
        for (mode, jobs) in [("serial", 0usize), ("jobs2", 2)] {
            let config = Config { jobs, engine: opts.engine, ..Config::default() };
            let name = format!("enumerate/{bench_name}::{func}/{mode}");
            workloads.push(run_workload(&name, opts.trials, *reps, metrics_dir, || {
                std::hint::black_box(enumerate(f, &target, &config));
            })?);
        }
    }

    // Semantic merge tier: the same kernel annotated by behavioral
    // signatures. Two jobs for this row: it prices the quotient against
    // the fingerprint rows above, and it pins the `enumerate.sem_*`
    // counters — nonzero here, *exactly zero* on every other workload,
    // which is the counter-exact proof that the fingerprint-default
    // path never pays a cycle of signature cost.
    {
        let program = mibench::find("bitcount")
            .ok_or("no benchmark `bitcount`")?
            .compile()
            .map_err(|e| format!("bitcount: {e}"))?;
        let f = program.function("bit_count").ok_or("bitcount: no function `bit_count`")?;
        let config = Config { engine: opts.engine, ..Config::default() };
        let sem = SemanticConfig::default();
        workloads.push(run_workload(
            "semantic/bitcount::bit_count/serial",
            opts.trials,
            4,
            metrics_dir,
            || {
                std::hint::black_box(enumerate_semantic(&program, f, &target, &config, &sem));
            },
        )?);
        // Pruned tier on the same kernel: prices the subsumption
        // lookahead against the annotation row above and pins the
        // `enumerate.sem_subsumption_prunes` / `sem_mask_fallbacks`
        // counters — nonzero here, zero everywhere else.
        workloads.push(run_workload(
            "semantic-pruned/bitcount::bit_count/serial",
            opts.trials,
            4,
            metrics_dir,
            || {
                std::hint::black_box(enumerate_semantic_pruned(
                    &program, f, &target, &config, &sem,
                ));
            },
        )?);
    }

    // Campaign: every function of bitcount over a two-worker pool,
    // checkpointing to a throwaway store (flush latency included).
    {
        let program = mibench::find("bitcount")
            .ok_or("no benchmark `bitcount`")?
            .compile()
            .map_err(|e| format!("bitcount: {e}"))?;
        let tasks: Vec<FunctionTask> = program
            .functions
            .iter()
            .map(|f| FunctionTask {
                name: format!("bitcount::{}", f.name),
                func: f.clone(),
                program: None,
            })
            .collect();
        let config = CampaignConfig {
            jobs: 2,
            enumerate: Config { engine: opts.engine, ..Config::default() },
            ..CampaignConfig::default()
        };
        let store = std::env::temp_dir().join("perfsuite.store");
        workloads.push(run_workload(
            "campaign/bitcount/jobs2",
            opts.trials,
            1,
            metrics_dir,
            || {
                std::fs::remove_file(&store).ok();
                campaign::run(tasks.clone(), &target, Some(&store), &config, &NullObserver)
                    .expect("perfsuite campaign runs");
            },
        )?);
        std::fs::remove_file(&store).ok();
    }

    // Oracle: differential verification of the bitcount kernel.
    {
        let program = mibench::find("bitcount")
            .ok_or("no benchmark `bitcount`")?
            .compile()
            .map_err(|e| format!("bitcount: {e}"))?;
        let f = program.function("bit_count").ok_or("bitcount: no function `bit_count`")?;
        let enum_config = Config { engine: opts.engine, ..Config::default() };
        let oracle_config = OracleConfig { engine: opts.sim_engine, ..OracleConfig::default() };
        workloads.push(run_workload(
            "oracle/bitcount::bit_count",
            opts.trials,
            4,
            metrics_dir,
            || {
                let (_, report) =
                    oracle::verify_function(&program, f, &target, &enum_config, &oracle_config);
                assert!(report.is_clean(), "perfsuite oracle found miscompilations");
            },
        )?);
    }

    // Pure simulation: an oracle-battery-shaped workload with no
    // enumeration in the loop — the direct measure of `--sim-engine`
    // throughput for the before/after A/B table. Naive and
    // batch-optimized instances of two loop kernels (one doing real work
    // per iteration, one a bare counting loop) run over fixed batteries
    // on one reused machine, mirroring `observe_battery`'s cycle
    // exactly: under the threaded engine each instance is lowered once
    // and reused for every input. The counting loop gets a large-trip
    // battery — the million-simulation-battery shape the threaded
    // engine exists for.
    {
        let program = vpo_frontend::compile(
            "int mix(int n) {\n\
                 int i; int j; int s;\n\
                 s = 0;\n\
                 for (i = 0; i < n; i++) {\n\
                     for (j = 0; j < 64; j++) s += (i ^ j) + (s >> 3);\n\
                 }\n\
                 return s;\n\
             }\n\
             int spin(int n) { int i; for (i = 0; i < n; i++) ; return i; }",
        )
        .map_err(|e| format!("sim battery kernel: {e}"))?;
        // Each function contributes its naive form plus optimized
        // variants, mirroring an oracle battery's composition: an
        // enumerated space holds exactly one unoptimized instance among
        // hundreds of (partially) optimized ones.
        let mut instances = Vec::new();
        for f in &program.functions {
            instances.push(f.clone());
            for seq in ["sk", "skc", "sksh"] {
                let mut g = f.clone();
                for letter in seq.chars() {
                    let p = vpo_opt::PhaseId::from_letter(letter)
                        .ok_or(format!("bad phase letter `{letter}`"))?;
                    vpo_opt::attempt(&mut g, p, &target);
                }
                instances.push(g);
            }
            let mut batch = f.clone();
            batch_compile(&mut batch, &target);
            instances.push(batch);
        }
        let mix_battery: &[i32] = &[0, 1, 100, 400, 1000];
        let spin_battery: &[i32] = &[0, 1, 1000, 300_000, 1_000_000];
        workloads.push(run_workload("sim/battery/mix+spin", opts.trials, 3, metrics_dir, || {
            let mut m = Machine::with_mem_size(&program, 1 << 16);
            m.set_engine(opts.sim_engine);
            let mut dynamic = 0u64;
            for f in &instances {
                let battery = if f.name == "spin" { spin_battery } else { mix_battery };
                let lowered = (m.engine() == SimEngine::Threaded).then(|| m.lower_instance(f));
                for &n in battery {
                    m.reset();
                    m.set_fuel(50_000_000);
                    let r = match &lowered {
                        Some(li) => m.call_lowered(li, &[n]),
                        None => m.call_instance(f, &[n]),
                    };
                    assert!(r.is_ok(), "sim battery trapped: {r:?}");
                    dynamic += m.dynamic_insts();
                }
            }
            std::hint::black_box(dynamic);
        })?);
    }

    Ok(PerfReport { label: opts.label.clone(), calibration_ns, workloads })
}

/// The engine-independent *semantic* counters: what the search explored,
/// not how fast. These must match the baseline for any engine and any
/// re-pin — a mismatch means the dormant-phase prefilters (or the search
/// itself) changed semantics, which no perf PR is allowed to do.
const SEMANTIC_COUNTERS: &[&str] = &["enumerate.phases_attempted", "enumerate.dormant_prunes"];

/// Compares the semantic counters of every workload shared between the
/// baseline and the fresh report, returning one message per mismatch.
fn semantic_failures(baseline: &PerfReport, current: &PerfReport) -> Vec<String> {
    let mut failures = Vec::new();
    for w in &current.workloads {
        let Some(b) = baseline.workloads.iter().find(|b| b.name == w.name) else {
            continue;
        };
        for name in SEMANTIC_COUNTERS {
            let was = b.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            let now = w.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            if let (Some(was), Some(now)) = (was, now) {
                if was != now {
                    failures.push(format!(
                        "{}: semantic counter {name} changed: baseline {was}, current {now}",
                        w.name
                    ));
                }
            }
        }
    }
    failures
}

fn main() -> ExitCode {
    match try_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("perfsuite: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn try_main() -> Result<(), String> {
    let opts = parse_args()?;
    let report = run_suite(&opts)?;

    let out = repo_root().join(format!("BENCH_{}.json", opts.label));
    std::fs::write(&out, report.to_json()).map_err(|e| format!("{}: {e}", out.display()))?;
    eprintln!("perfsuite: wrote {}", out.canonicalize().unwrap_or(out).display());

    let path = opts.baseline.clone().unwrap_or_else(|| repo_root().join("bench/baseline.json"));
    if path.exists() {
        // The semantic self-check runs whenever a baseline is available,
        // with or without --check: the search must have explored exactly
        // what the pinned baseline explored.
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let baseline = PerfReport::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        if let Some(summary) = &opts.summary {
            // Appended, not written: a step summary accumulates across
            // steps, and a second perfsuite invocation must not clobber
            // the first's table.
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(summary)
                .map_err(|e| format!("--summary {}: {e}", summary.display()))?;
            f.write_all(delta_table(&baseline, &report).as_bytes())
                .map_err(|e| format!("--summary {}: {e}", summary.display()))?;
            eprintln!("perfsuite: appended delta table to {}", summary.display());
        }
        let failures = semantic_failures(&baseline, &report);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("perfsuite: FAIL {f}");
            }
            return Err(format!(
                "{} semantic counter mismatch(es) against {}",
                failures.len(),
                path.display()
            ));
        }
        eprintln!("perfsuite: semantic counters match {}", path.display());
    }

    if opts.check {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let baseline = PerfReport::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        let failures = compare(&baseline, &report, opts.threshold);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("perfsuite: FAIL {f}");
            }
            return Err(format!(
                "{} regression(s) against {} at threshold {}%",
                failures.len(),
                path.display(),
                opts.threshold
            ));
        }
        eprintln!(
            "perfsuite: check passed against {} (threshold {}%)",
            path.display(),
            opts.threshold
        );
    }
    Ok(())
}
