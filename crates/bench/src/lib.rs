//! Shared harness for the table/figure regeneration binaries and the
//! criterion benches.
//!
//! See `DESIGN.md` (experiment index) for which binary regenerates which
//! table or figure of the paper, and DESIGN.md §9 for the perf suite
//! built on [`json`] and [`perf`].

pub mod harness;
pub mod json;
pub mod perf;

use std::time::Duration;

use phase_order::enumerate::{enumerate, Config, Enumeration};
use phase_order::interaction::InteractionAnalysis;
use phase_order::prob::{probabilistic_compile, ProbTables};
use phase_order::stats::FunctionRow;
use vpo_opt::batch::{batch_compile, BatchStats};
use vpo_opt::Target;
use vpo_rtl::Function;
use vpo_sim::Machine;

/// One function of the suite, tagged as in the paper (`name(tag)`).
pub struct SuiteFunction {
    /// `function_name(b)`-style display name.
    pub display: String,
    /// The benchmark it came from.
    pub benchmark: &'static str,
    /// The unoptimized function.
    pub function: Function,
    /// The whole program (for simulation).
    pub program: vpo_rtl::Program,
    /// Simulator workloads that drive this function.
    pub workloads: Vec<mibench::Workload>,
}

/// Compiles the whole MiBench suite into per-function records.
pub fn suite_functions() -> Vec<SuiteFunction> {
    let mut out = Vec::new();
    for b in mibench::all() {
        let program = b.compile().expect("suite compiles");
        for f in &program.functions {
            out.push(SuiteFunction {
                display: format!("{}({})", f.name, b.tag),
                benchmark: b.name,
                function: f.clone(),
                program: program.clone(),
                workloads: b.workloads_for(&f.name).into_iter().cloned().collect(),
            });
        }
    }
    out
}

/// Enumerates every suite function in parallel. `config` is shared;
/// `config.jobs` sizes the thread pool (`0` = one per available CPU);
/// results come back in suite order.
pub fn enumerate_suite(config: &Config) -> Vec<(SuiteFunction, Enumeration)> {
    let funcs = suite_functions();
    let target = Target::default();
    let threads = match config.jobs {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        n => n,
    };
    let work = std::sync::Mutex::new((0..funcs.len()).collect::<Vec<_>>());
    let slots: Vec<std::sync::Mutex<Option<Enumeration>>> =
        funcs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = {
                    let mut w = work.lock().unwrap();
                    match w.pop() {
                        Some(i) => i,
                        None => return,
                    }
                };
                let e = enumerate(&funcs[idx].function, &target, config);
                *slots[idx].lock().unwrap() = Some(e);
            });
        }
    });
    funcs
        .into_iter()
        .zip(slots.into_iter().map(|s| s.into_inner().unwrap().expect("enumerated")))
        .collect()
}

/// Parses a `--jobs N` flag from the process arguments, falling back to
/// the `PHASE_ORDER_JOBS` environment variable; `0` (the default) means
/// one worker per available CPU.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--jobs" || a == "-j" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) = a.strip_prefix("--jobs=").and_then(|v| v.parse().ok()) {
            return n;
        }
    }
    std::env::var("PHASE_ORDER_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Default enumeration budget for the harness binaries: generous enough
/// for almost every suite function, while keeping the heavyweights
/// (the fft butterfly nest) reported as "too big", as in the paper.
/// `--jobs N` (or `PHASE_ORDER_JOBS`) sizes the enumeration thread pool.
pub fn harness_config() -> Config {
    let max_nodes =
        std::env::var("PHASE_ORDER_MAX_NODES").ok().and_then(|v| v.parse().ok()).unwrap_or(400_000);
    Config { max_nodes, max_level_width: 200_000, jobs: jobs_from_args(), ..Config::default() }
}

/// Builds Table-3 rows for the whole suite.
pub fn table3_rows(config: &Config) -> Vec<(FunctionRow, Enumeration)> {
    enumerate_suite(config)
        .into_iter()
        .map(|(sf, e)| (FunctionRow::new(sf.display.clone(), &sf.function, &e), e))
        .collect()
}

/// Accumulates the interaction analysis over every completed space.
pub fn suite_interaction(config: &Config) -> InteractionAnalysis {
    let mut ia = InteractionAnalysis::new();
    for (_, e) in enumerate_suite(config) {
        if e.outcome.is_complete() {
            ia.add_space(&e.space);
        }
    }
    ia
}

/// Result of comparing batch vs probabilistic compilation on one function
/// (one row of Table 7).
pub struct Table7Row {
    /// `name(tag)` display name.
    pub display: String,
    /// Conventional batch statistics.
    pub old: BatchStats,
    /// Batch wall time.
    pub old_time: Duration,
    /// Probabilistic statistics.
    pub prob: BatchStats,
    /// Probabilistic wall time.
    pub prob_time: Duration,
    /// Code size ratio prob/old.
    pub size_ratio: f64,
    /// Dynamic instruction count ratio prob/old, if a workload exists.
    pub speed_ratio: Option<f64>,
}

/// Runs the Table 7 comparison over the whole suite with the given
/// probability tables.
pub fn table7_rows(tables: &ProbTables) -> Vec<Table7Row> {
    let target = Target::default();
    let mut rows = Vec::new();
    for sf in suite_functions() {
        let mut f_old = sf.function.clone();
        let t0 = std::time::Instant::now();
        let old = batch_compile(&mut f_old, &target);
        let old_time = t0.elapsed();

        let mut f_prob = sf.function.clone();
        let t1 = std::time::Instant::now();
        let prob = probabilistic_compile(&mut f_prob, &target, tables);
        let prob_time = t1.elapsed();

        let size_ratio = f_prob.inst_count() as f64 / f_old.inst_count() as f64;
        let speed_ratio = dynamic_ratio(&sf, &f_old, &f_prob);
        rows.push(Table7Row {
            display: sf.display,
            old,
            old_time,
            prob,
            prob_time,
            size_ratio,
            speed_ratio,
        });
    }
    rows
}

/// Dynamic-count ratio prob/old over the function's workloads, verifying
/// that both versions produce identical results.
fn dynamic_ratio(sf: &SuiteFunction, f_old: &Function, f_prob: &Function) -> Option<f64> {
    if sf.workloads.is_empty() {
        return None;
    }
    let mut old_count = 0u64;
    let mut prob_count = 0u64;
    for w in &sf.workloads {
        let mut m1 = Machine::new(&sf.program);
        let r1 = m1.call_instance(f_old, &w.args).ok()?;
        let c1 = m1.dynamic_insts();
        let mut m2 = Machine::new(&sf.program);
        let r2 = m2.call_instance(f_prob, &w.args).ok()?;
        let c2 = m2.dynamic_insts();
        assert_eq!(r1, r2, "{}: batch and probabilistic compilations disagree", sf.display);
        old_count += c1;
        prob_count += c2;
    }
    if old_count == 0 {
        return None;
    }
    Some(prob_count as f64 / old_count as f64)
}

/// Formats a probability like the paper's tables: blank under 0.005,
/// otherwise two decimals.
pub fn fmt_prob(p: Option<f64>, blank_under: f64) -> String {
    match p {
        Some(v) if v >= blank_under => format!("{v:.2}"),
        _ => "    ".to_owned(),
    }
}
