//! A minimal recursive-descent JSON reader.
//!
//! The workspace is hermetic (std only), so the perf harness parses its
//! own emitted documents — `BENCH_*.json`, `bench/baseline.json`, and
//! telemetry snapshots — with this reader instead of serde. It accepts
//! the full JSON value grammar; the only string escapes handled are
//! `\"`, `\\`, `\/`, `\n`, `\r` and `\t`, which covers everything the
//! suite emits (names and labels are ASCII identifiers and paths).

/// A parsed JSON value. Objects keep their key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. `f64` is exact for every value the suite emits
    /// (nanosecond wall times and event counts stay far below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first problem.
    pub fn parse(src: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        other => {
                            return Err(format!(
                                "unsupported escape `\\{}` at byte {}",
                                other as char, self.pos
                            ))
                        }
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(Value::parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(Value::parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"\\u0041\"").is_err(), "unicode escapes are out of scope");
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(Value::parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }
}
