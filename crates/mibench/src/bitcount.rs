//! `bitcount` (MiBench *auto*) — "test processor bit manipulation
//! abilities". Re-implements the benchmark's counting strategies.

use crate::{Benchmark, Workload};

/// MiniC source of the kernels.
pub const SOURCE: &str = r#"
// Kernighan's counter: one iteration per set bit.
int bit_count(int x) {
    int n = 0;
    if (x) do n++; while (0 != (x = x & (x - 1)));
    return n;
}

// Parallel (tree) counter with masks.
int bitcount_parallel(int b) {
    b = ((b >>> 1) & 0x55555555) + (b & 0x55555555);
    b = ((b >>> 2) & 0x33333333) + (b & 0x33333333);
    b = ((b >>> 4) & 0x0F0F0F0F) + (b & 0x0F0F0F0F);
    b = ((b >>> 8) & 0x00FF00FF) + (b & 0x00FF00FF);
    b = ((b >>> 16) & 0x0000FFFF) + (b & 0x0000FFFF);
    return b;
}

// Nibble-table counter.
int ntbl[16] = { 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4 };

int ntbl_bitcount(int x) {
    return ntbl[x & 15]
        + ntbl[(x >>> 4) & 15]
        + ntbl[(x >>> 8) & 15]
        + ntbl[(x >>> 12) & 15]
        + ntbl[(x >>> 16) & 15]
        + ntbl[(x >>> 20) & 15]
        + ntbl[(x >>> 24) & 15]
        + ntbl[(x >>> 28) & 15];
}

// Shift-and-test counter.
int bit_shifter(int x) {
    int n = 0;
    int i = 0;
    while (x != 0 && i < 32) {
        n += x & 1;
        x = x >>> 1;
        i++;
    }
    return n;
}

// Byte-table counter (the benchmark's btbl_bitcnt).
int btbl[256] = {
    0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    1, 2, 2, 3, 2, 3, 3, 4, 2, 3, 3, 4, 3, 4, 4, 5,
    1, 2, 2, 3, 2, 3, 3, 4, 2, 3, 3, 4, 3, 4, 4, 5,
    2, 3, 3, 4, 3, 4, 4, 5, 3, 4, 4, 5, 4, 5, 5, 6,
    1, 2, 2, 3, 2, 3, 3, 4, 2, 3, 3, 4, 3, 4, 4, 5,
    2, 3, 3, 4, 3, 4, 4, 5, 3, 4, 4, 5, 4, 5, 5, 6,
    2, 3, 3, 4, 3, 4, 4, 5, 3, 4, 4, 5, 4, 5, 5, 6,
    3, 4, 4, 5, 4, 5, 5, 6, 4, 5, 5, 6, 5, 6, 6, 7,
    1, 2, 2, 3, 2, 3, 3, 4, 2, 3, 3, 4, 3, 4, 4, 5,
    2, 3, 3, 4, 3, 4, 4, 5, 3, 4, 4, 5, 4, 5, 5, 6,
    2, 3, 3, 4, 3, 4, 4, 5, 3, 4, 4, 5, 4, 5, 5, 6,
    3, 4, 4, 5, 4, 5, 5, 6, 4, 5, 5, 6, 5, 6, 6, 7,
    2, 3, 3, 4, 3, 4, 4, 5, 3, 4, 4, 5, 4, 5, 5, 6,
    3, 4, 4, 5, 4, 5, 5, 6, 4, 5, 5, 6, 5, 6, 6, 7,
    3, 4, 4, 5, 4, 5, 5, 6, 4, 5, 5, 6, 5, 6, 6, 7,
    4, 5, 5, 6, 5, 6, 6, 7, 5, 6, 6, 7, 6, 7, 7, 8
};

int btbl_bitcount(int x) {
    return btbl[x & 255]
        + btbl[(x >>> 8) & 255]
        + btbl[(x >>> 16) & 255]
        + btbl[(x >>> 24) & 255];
}

// Parity of the population count.
int bit_parity(int x) {
    x = x ^ (x >>> 16);
    x = x ^ (x >>> 8);
    x = x ^ (x >>> 4);
    x = x ^ (x >>> 2);
    x = x ^ (x >>> 1);
    return x & 1;
}

// Leading-zero count by halving.
int count_leading_zeros(int x) {
    int n = 32;
    int c = 16;
    if (x == 0) return 32;
    while (c != 0) {
        int y = x >>> c;
        if (y != 0) {
            n = n - c;
            x = y;
        }
        c = c >> 1;
    }
    return n - 1;
}

// Recursive divide-and-conquer count (exercises calls in the space).
int bit_count_rec(int x, int bits) {
    if (bits == 1) return x & 1;
    return bit_count_rec(x & ((1 << (bits >> 1)) - 1), bits >> 1)
        + bit_count_rec(x >>> (bits >> 1), bits - (bits >> 1));
}

// Driver mirroring the benchmark's main loop: a linear-congruential seed
// stream pushed through every counter.
int bitcnt_main(int iterations) {
    int seed = 1;
    int total = 0;
    int i;
    for (i = 0; i < iterations; i++) {
        total += bit_count(seed);
        total += bitcount_parallel(seed);
        total += ntbl_bitcount(seed);
        total += bit_shifter(seed);
        total += btbl_bitcount(seed);
        seed = seed * 1103515245 + 12345;
    }
    return total;
}
"#;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "bitcount",
        category: "auto",
        tag: 'b',
        description: "test processor bit manipulation abilities",
        source: SOURCE,
        workloads: vec![
            Workload {
                function: "bit_count",
                args: vec![0x12345678],
                description: "Kernighan count of a mixed word",
            },
            Workload {
                function: "bitcount_parallel",
                args: vec![-1],
                description: "parallel count of all-ones",
            },
            Workload {
                function: "ntbl_bitcount",
                args: vec![0x0F0F0F0F],
                description: "table count of alternating nibbles",
            },
            Workload {
                function: "bit_shifter",
                args: vec![0x00FF00FF],
                description: "shift count of alternating bytes",
            },
            Workload {
                function: "bitcnt_main",
                args: vec![50],
                description: "full driver, 50 seeds",
            },
            Workload {
                function: "btbl_bitcount",
                args: vec![0x13579BDF],
                description: "byte-table count",
            },
            Workload {
                function: "bit_parity",
                args: vec![0x7FFFFFFF],
                description: "parity of 31 ones",
            },
            Workload {
                function: "count_leading_zeros",
                args: vec![0x00010000],
                description: "clz of bit 16",
            },
            Workload {
                function: "bit_count_rec",
                args: vec![-1, 32],
                description: "recursive count of all ones",
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_sim::Machine;

    fn machine_call(func: &str, args: &[i32]) -> i32 {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.call(func, args).unwrap()
    }

    #[test]
    fn counters_agree_with_reference() {
        for x in [0i32, 1, -1, 0x12345678, 0x0F0F0F0F, i32::MIN, 7, 0x40000000] {
            let expect = x.count_ones() as i32;
            assert_eq!(machine_call("bit_count", &[x]), expect, "bit_count({x})");
            assert_eq!(machine_call("bitcount_parallel", &[x]), expect, "bitcount_parallel({x})");
            assert_eq!(machine_call("ntbl_bitcount", &[x]), expect, "ntbl({x})");
            assert_eq!(machine_call("bit_shifter", &[x]), expect, "shifter({x})");
            assert_eq!(machine_call("btbl_bitcount", &[x]), expect, "btbl({x})");
            assert_eq!(machine_call("bit_count_rec", &[x, 32]), expect, "rec({x})");
            assert_eq!(machine_call("bit_parity", &[x]), (expect & 1), "parity({x})");
            assert_eq!(
                machine_call("count_leading_zeros", &[x]),
                x.leading_zeros() as i32,
                "clz({x})"
            );
        }
    }

    #[test]
    fn driver_matches_reference() {
        let mut seed: i32 = 1;
        let mut total: i64 = 0;
        for _ in 0..50 {
            total += 5 * seed.count_ones() as i64;
            seed = seed.wrapping_mul(1103515245).wrapping_add(12345);
        }
        assert_eq!(machine_call("bitcnt_main", &[50]) as i64, total);
    }
}
