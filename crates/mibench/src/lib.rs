//! MiniC re-implementations of MiBench benchmark kernels.
//!
//! The paper evaluates one benchmark from each of the six MiBench
//! categories (Table 2):
//!
//! | Category | Program | Here |
//! |----------|---------|------|
//! | auto     | bitcount | [`bitcount`] — bit-manipulation kernels |
//! | network  | dijkstra | [`dijkstra`] — shortest paths on an adjacency matrix |
//! | telecomm | fft      | [`fft`] — fixed-point FFT (the embedded target has no FPU) |
//! | consumer | jpeg     | [`jpeg`] — color conversion, DCT-style transform, quantization |
//! | security | sha      | [`sha`] — SHA-1 message schedule and rounds |
//! | office   | stringsearch | [`stringsearch`] — Boyer–Moore–Horspool family |
//!
//! Each module carries the MiniC source of its kernels plus simulator
//! *workloads* (function + arguments) used for dynamic-instruction-count
//! measurements. The suite deliberately spans the paper's observation
//! space: small leaf functions, loop nests, large straight-line blocks
//! (sha), and a fully inlined FFT pipeline standing in for the paper's
//! heavyweight `fft_float`/`main` (whose spaces VPO could not enumerate;
//! this compiler's more confluent phases keep even the heavyweight within
//! reach, see `EXPERIMENTS.md`).
//!
//! # Example
//!
//! ```
//! let suite = mibench::all();
//! assert_eq!(suite.len(), 6);
//! for b in &suite {
//!     let program = b.compile().expect("benchmark compiles");
//!     assert!(!program.functions.is_empty());
//! }
//! ```

pub mod bitcount;
pub mod dijkstra;
pub mod fft;
pub mod jpeg;
pub mod sha;
pub mod stringsearch;

use vpo_frontend::CompileError;
use vpo_rtl::Program;

/// A simulator workload: call `function` with `args` (globals provide all
/// other inputs, initialized statically in the MiniC source).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Function to call.
    pub function: &'static str,
    /// Argument values.
    pub args: Vec<i32>,
    /// What the workload exercises.
    pub description: &'static str,
}

/// One benchmark: category, MiniC source, and workloads.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Program name (e.g. `"bitcount"`).
    pub name: &'static str,
    /// MiBench category (e.g. `"auto"`).
    pub category: &'static str,
    /// The single-letter tag the paper uses in Table 3 (e.g. `'b'`).
    pub tag: char,
    /// One-line description (Table 2).
    pub description: &'static str,
    /// MiniC source of the kernels.
    pub source: &'static str,
    /// Workloads for dynamic measurements.
    pub workloads: Vec<Workload>,
}

impl Benchmark {
    /// Compiles the benchmark's MiniC source to an RTL [`Program`].
    ///
    /// # Errors
    ///
    /// Propagates front-end diagnostics (the shipped sources always
    /// compile; the error path exists for modified copies).
    pub fn compile(&self) -> Result<Program, CompileError> {
        vpo_frontend::compile(self.source)
    }

    /// Workloads that drive the named function, if any.
    pub fn workloads_for(&self, function: &str) -> Vec<&Workload> {
        self.workloads.iter().filter(|w| w.function == function).collect()
    }
}

/// The whole suite, in the paper's Table 2 order.
pub fn all() -> Vec<Benchmark> {
    vec![
        bitcount::benchmark(),
        dijkstra::benchmark(),
        fft::benchmark(),
        jpeg::benchmark(),
        sha::benchmark(),
        stringsearch::benchmark(),
    ]
}

/// Looks up a benchmark by name (e.g. `"sha"`).
pub fn find(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// Total number of functions across the suite.
pub fn function_count() -> usize {
    all().iter().map(|b| b.compile().expect("suite compiles").functions.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_compiles_and_is_well_formed() {
        let target = vpo_opt::Target::default();
        let mut total = 0;
        for b in all() {
            let p = b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!p.functions.is_empty(), "{} has no functions", b.name);
            for f in &p.functions {
                target.check_function(f).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            }
            total += p.functions.len();
            // Every workload's function exists.
            for w in &b.workloads {
                assert!(
                    p.function(w.function).is_some(),
                    "{}: workload for unknown function {}",
                    b.name,
                    w.function
                );
            }
            assert!(!b.workloads.is_empty(), "{} has no workloads", b.name);
        }
        assert!(total >= 35, "suite too small: {total} functions");
    }

    #[test]
    fn tags_match_the_paper() {
        let tags: Vec<char> = all().iter().map(|b| b.tag).collect();
        assert_eq!(tags, vec!['b', 'd', 'f', 'j', 'h', 's']);
    }

    #[test]
    fn find_locates_benchmarks_by_name() {
        assert_eq!(find("sha").unwrap().tag, 'h');
        assert!(find("nope").is_none());
    }

    #[test]
    fn all_workloads_execute_on_naive_code() {
        for b in all() {
            let p = b.compile().unwrap();
            let mut m = vpo_sim::Machine::new(&p);
            for w in &b.workloads {
                m.reset();
                m.call(w.function, &w.args)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", b.name, w.function));
            }
        }
    }
}
