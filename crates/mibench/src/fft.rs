//! `fft` (MiBench *telecomm*) — "fast fourier transform".
//!
//! The MiBench program uses floating point; the modelled embedded target
//! (like the StrongARM SA-100) has no FPU, so this is the classic
//! **fixed-point** integer FFT (Q14 arithmetic, 16 points) — the same code
//! paths (butterfly loop nest, twiddle lookups, bit-reversal shuffle) in
//! integer RTL. As in the paper, where `fft_float` and `main` were the two
//! functions whose spaces were too big to enumerate, the butterfly nest
//! here is the suite's heavyweight.

use crate::{Benchmark, Workload};

/// MiniC source of the kernels.
pub const SOURCE: &str = r#"
// sin(i * pi / 16) in Q14, i = 0..16.
int sine_tab[17] = {
    0, 3196, 6270, 9102, 11585, 13623, 15137, 16069,
    16384, 16069, 15137, 13623, 11585, 9102, 6270, 3196, 0
};

int re[16];
int im[16];

// Q14 multiply.
int fix_mpy(int a, int b) {
    return (a * b) >> 14;
}

// sin of table index i (full circle is 32 indices).
int fix_sin(int i) {
    i = i & 31;
    if (i < 16) return sine_tab[i];
    return -sine_tab[i - 16];
}

int fix_cos(int i) {
    return fix_sin(i + 8);
}

int reverse_bits(int x, int bits) {
    int r = 0;
    int i;
    for (i = 0; i < bits; i++) {
        r = (r << 1) | (x & 1);
        x = x >>> 1;
    }
    return r;
}

// Bit-reversal permutation of the 16-point buffers.
void fft_shuffle() {
    int i;
    for (i = 0; i < 16; i++) {
        int j = reverse_bits(i, 4);
        if (j > i) {
            int t = re[i];
            re[i] = re[j];
            re[j] = t;
            t = im[i];
            im[i] = im[j];
            im[j] = t;
        }
    }
}

// The decimation-in-time butterfly nest.
int fft_butterflies() {
    int size;
    for (size = 2; size <= 16; size = size << 1) {
        int half = size >> 1;
        int step = 32 / size;
        int i;
        for (i = 0; i < 16; i += size) {
            int k = 0;
            int j;
            for (j = i; j < i + half; j++) {
                int c = fix_cos(k);
                int s = fix_sin(k);
                int tr = fix_mpy(re[j + half], c) + fix_mpy(im[j + half], s);
                int ti = fix_mpy(im[j + half], c) - fix_mpy(re[j + half], s);
                re[j + half] = re[j] - tr;
                im[j + half] = im[j] - ti;
                re[j] = re[j] + tr;
                im[j] = im[j] + ti;
                k += step;
            }
        }
    }
    return re[0];
}

// Load a test wave: re[i] = amp * sin(i * freq * 2), im = 0.
void fft_load_wave(int freq, int amp) {
    int i;
    for (i = 0; i < 16; i++) {
        re[i] = fix_mpy(amp, fix_sin(i * freq * 2));
        im[i] = 0;
    }
}

// Spectral energy; inputs are pre-scaled so the squares cannot overflow
// 32 bits (|re|,|im| can reach 16 * 16384 after the transform).
int fft_energy() {
    int e = 0;
    int i;
    for (i = 0; i < 16; i++) {
        int r = re[i] >> 8;
        int m = im[i] >> 8;
        e += r * r + m * m;
    }
    return e;
}

// Index of the strongest bin in the first half of the spectrum.
int fft_peak_bin() {
    int best = 0;
    int besti = 0;
    int i;
    for (i = 0; i < 8; i++) {
        int r = re[i] >> 8;
        int m = im[i] >> 8;
        int mag = r * r + m * m;
        if (mag > best) {
            best = mag;
            besti = i;
        }
    }
    return besti;
}

// Full pipeline: load, shuffle, transform; returns the peak bin.
int fft_main(int freq, int amp) {
    fft_load_wave(freq, amp);
    fft_shuffle();
    fft_butterflies();
    return fft_peak_bin();
}

// Triangular window applied in place (fixed-point Bartlett).
void fft_window() {
    int i;
    for (i = 0; i < 16; i++) {
        int w;
        if (i < 8) w = i * 2048;
        else w = (15 - i) * 2048;
        re[i] = fix_mpy(re[i], w);
        im[i] = fix_mpy(im[i], w);
    }
}

// Mean squared sample value of the loaded wave (time domain).
int signal_power() {
    int p = 0;
    int i;
    for (i = 0; i < 16; i++) {
        int r = re[i] >> 4;
        p += (r * r) >> 8;
    }
    return p >> 4;
}

// The whole transform inlined into one function — the suite's
// heavyweight, standing in for the paper's `fft_float`/`main(f)` (their
// spaces were too big for VPO to enumerate; ours stays within reach).
int fft_inlined(int freq, int amp) {
    int i;
    int size;
    for (i = 0; i < 16; i++) {
        int idx = (i * freq * 2) & 31;
        int sv;
        if (idx < 16) sv = sine_tab[idx];
        else sv = -sine_tab[idx - 16];
        re[i] = (amp * sv) >> 14;
        im[i] = 0;
    }
    for (i = 0; i < 16; i++) {
        int r = ((i & 1) << 3) | ((i & 2) << 1) | ((i & 4) >> 1) | ((i & 8) >> 3);
        if (r > i) {
            int t = re[i];
            re[i] = re[r];
            re[r] = t;
            t = im[i];
            im[i] = im[r];
            im[r] = t;
        }
    }
    for (size = 2; size <= 16; size = size << 1) {
        int half = size >> 1;
        int step = 32 / size;
        for (i = 0; i < 16; i += size) {
            int k = 0;
            int j;
            for (j = i; j < i + half; j++) {
                int ci = (k + 8) & 31;
                int c;
                int sv;
                if (ci < 16) c = sine_tab[ci];
                else c = -sine_tab[ci - 16];
                if (k < 16) sv = sine_tab[k];
                else sv = -sine_tab[k - 16];
                {
                    int tr = ((re[j + half] * c) >> 14) + ((im[j + half] * sv) >> 14);
                    int ti = ((im[j + half] * c) >> 14) - ((re[j + half] * sv) >> 14);
                    re[j + half] = re[j] - tr;
                    im[j + half] = im[j] - ti;
                    re[j] = re[j] + tr;
                    im[j] = im[j] + ti;
                }
                k += step;
            }
        }
    }
    {
        int best = 0;
        int besti = 0;
        for (i = 0; i < 8; i++) {
            int r = re[i] >> 8;
            int m = im[i] >> 8;
            int mag = r * r + m * m;
            if (mag > best) {
                best = mag;
                besti = i;
            }
        }
        return besti;
    }
}
"#;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "fft",
        category: "telecomm",
        tag: 'f',
        description: "fast fourier transform (fixed point)",
        source: SOURCE,
        workloads: vec![
            Workload {
                function: "fix_mpy",
                args: vec![16384, 8192],
                description: "Q14 multiply of 1.0 * 0.5",
            },
            Workload {
                function: "reverse_bits",
                args: vec![0b0110, 4],
                description: "4-bit reversal",
            },
            Workload {
                function: "fft_main",
                args: vec![2, 16000],
                description: "full 16-point FFT of a 2-cycle wave",
            },
            Workload {
                function: "fft_energy",
                args: vec![],
                description: "spectral energy after a run",
            },
            Workload {
                function: "fft_inlined",
                args: vec![3, 15000],
                description: "fully inlined pipeline (the heavyweight)",
            },
            Workload { function: "signal_power", args: vec![], description: "time-domain power" },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_sim::Machine;

    #[test]
    fn fix_mpy_is_q14() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("fix_mpy", &[16384, 16384]).unwrap(), 16384); // 1*1
        assert_eq!(m.call("fix_mpy", &[16384, 8192]).unwrap(), 8192); // 1*0.5
        assert_eq!(m.call("fix_mpy", &[-16384, 8192]).unwrap(), -8192);
    }

    #[test]
    fn bit_reversal() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("reverse_bits", &[0b0001, 4]).unwrap(), 0b1000);
        assert_eq!(m.call("reverse_bits", &[0b0110, 4]).unwrap(), 0b0110);
        assert_eq!(m.call("reverse_bits", &[0b1011, 4]).unwrap(), 0b1101);
    }

    #[test]
    fn sin_cos_symmetry() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        // sin(i) == -sin(i + 16); cos(0) == sin(8) == 16384.
        for i in 0..16 {
            let s = m.call("fix_sin", &[i]).unwrap();
            let s2 = m.call("fix_sin", &[i + 16]).unwrap();
            assert_eq!(s, -s2, "sin({i})");
        }
        assert_eq!(m.call("fix_cos", &[0]).unwrap(), 16384);
    }

    #[test]
    fn fft_finds_the_tone() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.set_fuel(50_000_000);
        // A wave with `freq` cycles across the 16 samples peaks in bin
        // `freq`.
        for freq in [1, 2, 3] {
            m.reset();
            let bin = m.call("fft_main", &[freq, 16000]).unwrap();
            assert_eq!(bin, freq, "peak bin for freq {freq}");
        }
    }

    #[test]
    fn inlined_pipeline_agrees_with_composed() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.set_fuel(100_000_000);
        for freq in [1, 2, 3] {
            m.reset();
            let composed = m.call("fft_main", &[freq, 15000]).unwrap();
            m.reset();
            let inlined = m.call("fft_inlined", &[freq, 15000]).unwrap();
            assert_eq!(composed, inlined, "freq {freq}");
        }
    }

    #[test]
    fn window_keeps_magnitudes_bounded() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.call("fft_load_wave", &[2, 16000]).unwrap();
        let before: Vec<i32> = (0..16).map(|i| m.read_global_word("re", i).unwrap()).collect();
        m.call("fft_window", &[]).unwrap();
        for (i, &b) in before.iter().enumerate() {
            let after = m.read_global_word("re", i).unwrap();
            assert!(after.abs() <= b.abs().max(1), "window grew sample {i}");
        }
    }

    #[test]
    fn energy_is_nonnegative_and_stable() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.call("fft_main", &[2, 16000]).unwrap();
        let e1 = m.call("fft_energy", &[]).unwrap();
        let e2 = m.call("fft_energy", &[]).unwrap();
        assert!(e1 > 0);
        assert_eq!(e1, e2);
    }
}
