//! `sha` (MiBench *security*) — "secure hash algorithm" (SHA-1).
//!
//! `sha_transform` is the paper's big straight-line-plus-loops function
//! (343,162 distinct instances, the suite's second-largest complete
//! enumeration); the round structure here follows the same shape.

use crate::{Benchmark, Workload};

/// MiniC source of the kernels.
pub const SOURCE: &str = r#"
int sha_h[5];
int sha_w[80];
int sha_count;

int rotl(int x, int n) {
    return (x << n) | (x >>> (32 - n));
}

void sha_init() {
    sha_h[0] = 0x67452301;
    sha_h[1] = 0xEFCDAB89;
    sha_h[2] = 0x98BADCFE;
    sha_h[3] = 0x10325476;
    sha_h[4] = 0xC3D2E1F0;
    sha_count = 0;
}

// Endianness helper from the benchmark.
int byte_reverse(int x) {
    return ((x >>> 24) & 0xFF)
        | ((x >>> 8) & 0xFF00)
        | ((x << 8) & 0xFF0000)
        | (x << 24);
}

// One SHA-1 block over sha_w[0..15].
void sha_transform() {
    int a;
    int b;
    int c;
    int d;
    int e;
    int t;
    int i;
    for (i = 16; i < 80; i++) {
        sha_w[i] = rotl(sha_w[i - 3] ^ sha_w[i - 8] ^ sha_w[i - 14] ^ sha_w[i - 16], 1);
    }
    a = sha_h[0];
    b = sha_h[1];
    c = sha_h[2];
    d = sha_h[3];
    e = sha_h[4];
    for (i = 0; i < 20; i++) {
        t = rotl(a, 5) + ((b & c) | (~b & d)) + e + sha_w[i] + 0x5A827999;
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = t;
    }
    for (i = 20; i < 40; i++) {
        t = rotl(a, 5) + (b ^ c ^ d) + e + sha_w[i] + 0x6ED9EBA1;
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = t;
    }
    for (i = 40; i < 60; i++) {
        t = rotl(a, 5) + ((b & c) | (b & d) | (c & d)) + e + sha_w[i] + 0x8F1BBCDC;
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = t;
    }
    for (i = 60; i < 80; i++) {
        t = rotl(a, 5) + (b ^ c ^ d) + e + sha_w[i] + 0xCA62C1D6;
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = t;
    }
    sha_h[0] += a;
    sha_h[1] += b;
    sha_h[2] += c;
    sha_h[3] += d;
    sha_h[4] += e;
    sha_count++;
}

// Fill the message schedule with a deterministic pattern and run one
// block (a self-contained stand-in for sha_update on a fixed buffer).
void sha_fill_block(int seed) {
    int i;
    for (i = 0; i < 16; i++) {
        sha_w[i] = seed * (i + 1) + (seed >>> (i & 15));
    }
}

// The benchmark's final step mixes the bit count into the digest; here we
// reduce the digest to one word for checking.
int sha_final() {
    return sha_h[0] ^ sha_h[1] ^ sha_h[2] ^ sha_h[3] ^ sha_h[4];
}

int sha_main(int blocks, int seed) {
    int i;
    sha_init();
    for (i = 0; i < blocks; i++) {
        sha_fill_block(seed + i);
        sha_transform();
    }
    return sha_final();
}

// A 128-byte message buffer processed in 64-byte chunks, as sha_update
// does over file data.
char sha_buf[128];

// Packs bytes big-endian into the schedule (the byte_reverse path).
void sha_load_chunk(int offset) {
    int i;
    for (i = 0; i < 16; i++) {
        int base = offset + i * 4;
        sha_w[i] = (sha_buf[base] << 24)
            | (sha_buf[base + 1] << 16)
            | (sha_buf[base + 2] << 8)
            | sha_buf[base + 3];
    }
}

// Fill the message buffer with a deterministic byte pattern.
void sha_fill_buf(int seed) {
    int i;
    for (i = 0; i < 128; i++) {
        sha_buf[i] = (seed * (i + 7) + (i >> 2)) & 255;
    }
}

// sha_update over the whole buffer: two chunks.
void sha_update_buf() {
    sha_load_chunk(0);
    sha_transform();
    sha_load_chunk(64);
    sha_transform();
}

// End-to-end digest of the synthetic message.
int sha_stream_main(int seed) {
    sha_init();
    sha_fill_buf(seed);
    sha_update_buf();
    return sha_final();
}
"#;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "sha",
        category: "security",
        tag: 'h',
        description: "secure hash algorithm",
        source: SOURCE,
        workloads: vec![
            Workload {
                function: "byte_reverse",
                args: vec![0x11223344],
                description: "endianness flip",
            },
            Workload { function: "rotl", args: vec![0x40000001, 3], description: "rotate" },
            Workload {
                function: "sha_main",
                args: vec![4, 0x1234],
                description: "four blocks of synthetic data",
            },
            Workload {
                function: "sha_stream_main",
                args: vec![0x77],
                description: "two-chunk buffer digest",
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_sim::Machine;

    #[test]
    fn rotl_and_byte_reverse_match_reference() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        for (x, n) in [(1i32, 1), (0x4000_0001u32 as i32, 3), (-1, 7), (0x1234_5678, 13)] {
            assert_eq!(
                m.call("rotl", &[x, n]).unwrap(),
                (x as u32).rotate_left(n as u32) as i32,
                "rotl({x},{n})"
            );
        }
        assert_eq!(m.call("byte_reverse", &[0x11223344]).unwrap(), 0x44332211,);
        assert_eq!(m.call("byte_reverse", &[0xAABBCCDDu32 as i32]).unwrap(), 0xDDCCBBAAu32 as i32,);
    }

    /// Reference SHA-1 transform (same non-standard fill as the MiniC).
    fn reference_sha_main(blocks: i32, seed: i32) -> i32 {
        let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
        for blk in 0..blocks {
            let s = seed.wrapping_add(blk);
            let mut w = [0u32; 80];
            for i in 0..16i32 {
                w[i as usize] =
                    (s.wrapping_mul(i + 1)).wrapping_add(((s as u32) >> (i & 15)) as i32) as u32;
            }
            for i in 16..80 {
                w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
            }
            let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
            for (i, &wi) in w.iter().enumerate() {
                let (f, k) = match i / 20 {
                    0 => ((b & c) | (!b & d), 0x5A827999u32),
                    1 => (b ^ c ^ d, 0x6ED9EBA1),
                    2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                    _ => (b ^ c ^ d, 0xCA62C1D6),
                };
                let t = a
                    .rotate_left(5)
                    .wrapping_add(f)
                    .wrapping_add(e)
                    .wrapping_add(wi)
                    .wrapping_add(k);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = t;
            }
            h[0] = h[0].wrapping_add(a);
            h[1] = h[1].wrapping_add(b);
            h[2] = h[2].wrapping_add(c);
            h[3] = h[3].wrapping_add(d);
            h[4] = h[4].wrapping_add(e);
        }
        (h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]) as i32
    }

    #[test]
    fn stream_digest_matches_reference() {
        // Mirror sha_fill_buf + big-endian packing + two transforms.
        fn reference(seed: i32) -> i32 {
            let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
            let buf: Vec<u8> = (0..128)
                .map(|i| (seed.wrapping_mul(i + 7).wrapping_add(i >> 2) & 255) as u8)
                .collect();
            for chunk in buf.chunks(64) {
                let mut w = [0u32; 80];
                for i in 0..16 {
                    w[i] = u32::from_be_bytes(chunk[i * 4..i * 4 + 4].try_into().unwrap());
                }
                for i in 16..80 {
                    w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
                }
                let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
                for (i, &wi) in w.iter().enumerate() {
                    let (f, k) = match i / 20 {
                        0 => ((b & c) | (!b & d), 0x5A827999u32),
                        1 => (b ^ c ^ d, 0x6ED9EBA1),
                        2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                        _ => (b ^ c ^ d, 0xCA62C1D6),
                    };
                    let t = a
                        .rotate_left(5)
                        .wrapping_add(f)
                        .wrapping_add(e)
                        .wrapping_add(wi)
                        .wrapping_add(k);
                    e = d;
                    d = c;
                    c = b.rotate_left(30);
                    b = a;
                    a = t;
                }
                h[0] = h[0].wrapping_add(a);
                h[1] = h[1].wrapping_add(b);
                h[2] = h[2].wrapping_add(c);
                h[3] = h[3].wrapping_add(d);
                h[4] = h[4].wrapping_add(e);
            }
            (h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]) as i32
        }
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.set_fuel(100_000_000);
        for seed in [0x77, -3, 255] {
            m.reset();
            assert_eq!(m.call("sha_stream_main", &[seed]).unwrap(), reference(seed), "seed {seed}");
        }
    }

    #[test]
    fn transform_matches_reference() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.set_fuel(100_000_000);
        for (blocks, seed) in [(1, 7), (4, 0x1234), (2, -9)] {
            m.reset();
            assert_eq!(
                m.call("sha_main", &[blocks, seed]).unwrap(),
                reference_sha_main(blocks, seed),
                "sha_main({blocks},{seed})"
            );
        }
    }
}
