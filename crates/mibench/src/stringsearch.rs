//! `stringsearch` (MiBench *office*) — "searches for given words in
//! phrases" with the Boyer–Moore–Horspool family, exactly the function
//! set of the paper's Table 3 (`bmh_init`, `bmh_search`, `bmhi_init`,
//! `bmhi_search`, ...).

use crate::{Benchmark, Workload};

/// MiniC source of the kernels.
pub const SOURCE: &str = r#"
char text[] = "The quick brown Fox jumps over the lazy dog while the CASE of letters Varies across THE phrases we search";
char pat_the[] = "the";
char pat_fox[] = "Fox";
char pat_case[] = "case";
char pat_missing[] = "zebra";

int skip_tab[256];

int slen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}

int lower(int c) {
    if (c >= 'A' && c <= 'Z') return c + 32;
    return c;
}

// Case-sensitive Horspool bad-character table.
void bmh_init(char *pat) {
    int len = slen(pat);
    int i;
    for (i = 0; i < 256; i++) skip_tab[i] = len;
    for (i = 0; i < len - 1; i++) skip_tab[pat[i]] = len - 1 - i;
}

// Case-sensitive Horspool search; returns the match offset or -1.
int bmh_search(char *s, char *pat) {
    int n = slen(s);
    int m = slen(pat);
    int i;
    if (m == 0 || m > n) return -1;
    i = m - 1;
    while (i < n) {
        int j = m - 1;
        int k = i;
        while (j >= 0 && s[k] == pat[j]) {
            j--;
            k--;
        }
        if (j < 0) return k + 1;
        i += skip_tab[s[i]];
    }
    return -1;
}

// Case-insensitive variants (bmhi in the benchmark).
void bmhi_init(char *pat) {
    int len = slen(pat);
    int i;
    for (i = 0; i < 256; i++) skip_tab[i] = len;
    for (i = 0; i < len - 1; i++) {
        skip_tab[lower(pat[i])] = len - 1 - i;
        skip_tab[lower(pat[i]) - 32] = len - 1 - i;
    }
}

int bmhi_search(char *s, char *pat) {
    int n = slen(s);
    int m = slen(pat);
    int i;
    if (m == 0 || m > n) return -1;
    i = m - 1;
    while (i < n) {
        int j = m - 1;
        int k = i;
        while (j >= 0 && lower(s[k]) == lower(pat[j])) {
            j--;
            k--;
        }
        if (j < 0) return k + 1;
        i += skip_tab[s[i]];
    }
    return -1;
}

// Plain strcmp for completeness (the benchmark links one in).
int str_cmp(char *a, char *b) {
    int i = 0;
    while (a[i] != 0 && a[i] == b[i]) i++;
    return a[i] - b[i];
}

// Count case-insensitive occurrences of `pat` in the text.
int count_matches(char *pat) {
    int count = 0;
    int from = 0;
    int n = slen(text);
    bmhi_init(pat);
    while (from < n) {
        int pos;
        int i;
        // Search the suffix text[from..] by shifting through a window.
        pos = -1;
        i = from + slen(pat) - 1;
        while (i < n) {
            int j = slen(pat) - 1;
            int k = i;
            while (j >= 0 && lower(text[k]) == lower(pat[j])) {
                j--;
                k--;
            }
            if (j < 0) {
                pos = k + 1;
                break;
            }
            i += skip_tab[text[i]];
        }
        if (pos < 0) break;
        count++;
        from = pos + 1;
    }
    return count;
}

int upper(int c) {
    if (c >= 'a' && c <= 'z') return c - 32;
    return c;
}

// The benchmark's simple shift-table pair (init_search / strsearch).
void init_search(char *pat) {
    int len = slen(pat);
    int i;
    for (i = 0; i < 256; i++) skip_tab[i] = len + 1;
    for (i = 0; i < len; i++) skip_tab[pat[i]] = len - i;
}

int strsearch(char *s, char *pat) {
    int n = slen(s);
    int m = slen(pat);
    int i = 0;
    if (m == 0 || m > n) return -1;
    while (i + m <= n) {
        int j = 0;
        while (j < m && s[i + j] == pat[j]) j++;
        if (j == m) return i;
        if (i + m < n) i += skip_tab[s[i + m]];
        else break;
    }
    return -1;
}

// Brute-force baseline.
int brute_search(char *s, char *pat) {
    int n = slen(s);
    int m = slen(pat);
    int i;
    if (m == 0 || m > n) return -1;
    for (i = 0; i + m <= n; i++) {
        int j = 0;
        while (j < m && s[i + j] == pat[j]) j++;
        if (j == m) return i;
    }
    return -1;
}

// Driver: searches the text for each pattern, combining the offsets.
int search_main() {
    int total = 0;
    bmh_init(pat_fox);
    total += bmh_search(text, pat_fox);
    bmh_init(pat_the);
    total += bmh_search(text, pat_the) * 3;
    bmhi_init(pat_case);
    total += bmhi_search(text, pat_case) * 5;
    bmh_init(pat_missing);
    total += bmh_search(text, pat_missing); // not found: -1
    init_search(pat_fox);
    total += strsearch(text, pat_fox) * 7;
    total += brute_search(text, pat_the) * 11;
    total += count_matches(pat_the) * 1000;
    return total;
}
"#;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "stringsearch",
        category: "office",
        tag: 's',
        description: "searches for given words in phrases",
        source: SOURCE,
        workloads: vec![Workload {
            function: "search_main",
            args: vec![],
            description: "all patterns against the text",
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_sim::Machine;

    const TEXT: &str = "The quick brown Fox jumps over the lazy dog while the CASE of letters Varies across THE phrases we search";

    fn with_machine<R>(f: impl FnOnce(&mut Machine) -> R) -> R {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        f(&mut m)
    }

    #[test]
    fn search_finds_reference_offsets() {
        with_machine(|m| {
            // bmh is case-sensitive: "Fox" at the byte offset Rust finds.
            let fox = TEXT.find("Fox").unwrap() as i32;
            let pat_addr = |m: &Machine, name: &str| {
                m.global_address(
                    // resolve through the program to pass the pointer
                    // arguments; globals decay to addresses.
                    {
                        let p = benchmark().compile().unwrap();
                        p.global_by_name(name).unwrap()
                    },
                ) as i32
            };
            let text_a = pat_addr(m, "text");
            let fox_a = pat_addr(m, "pat_fox");
            m.call("bmh_init", &[fox_a]).unwrap();
            assert_eq!(m.call("bmh_search", &[text_a, fox_a]).unwrap(), fox);
        });
    }

    #[test]
    fn case_insensitive_search_differs_from_sensitive() {
        with_machine(|m| {
            let p = benchmark().compile().unwrap();
            let text_a = m.global_address(p.global_by_name("text").unwrap()) as i32;
            let case_a = m.global_address(p.global_by_name("pat_case").unwrap()) as i32;
            m.call("bmh_init", &[case_a]).unwrap();
            let sensitive = m.call("bmh_search", &[text_a, case_a]).unwrap();
            m.call("bmhi_init", &[case_a]).unwrap();
            let insensitive = m.call("bmhi_search", &[text_a, case_a]).unwrap();
            // "case" (lowercase) does not occur; "CASE" does.
            assert_eq!(sensitive, -1);
            assert_eq!(insensitive, TEXT.find("CASE").unwrap() as i32);
        });
    }

    #[test]
    fn count_matches_counts_all_the() {
        with_machine(|m| {
            let p = benchmark().compile().unwrap();
            let the_a = m.global_address(p.global_by_name("pat_the").unwrap()) as i32;
            let expect = TEXT.to_lowercase().matches("the").count() as i32;
            assert_eq!(m.call("count_matches", &[the_a]).unwrap(), expect);
        });
    }

    #[test]
    fn driver_runs_and_is_deterministic() {
        let a = with_machine(|m| m.call("search_main", &[]).unwrap());
        let b = with_machine(|m| m.call("search_main", &[]).unwrap());
        assert_eq!(a, b);
        assert!(a > 0);
    }

    #[test]
    fn all_search_variants_agree() {
        with_machine(|m| {
            let p = benchmark().compile().unwrap();
            let text_a = m.global_address(p.global_by_name("text").unwrap()) as i32;
            for pat in ["pat_the", "pat_fox", "pat_missing"] {
                let pa = m.global_address(p.global_by_name(pat).unwrap()) as i32;
                let brute = m.call("brute_search", &[text_a, pa]).unwrap();
                m.call("bmh_init", &[pa]).unwrap();
                let bmh = m.call("bmh_search", &[text_a, pa]).unwrap();
                m.call("init_search", &[pa]).unwrap();
                let simple = m.call("strsearch", &[text_a, pa]).unwrap();
                assert_eq!(brute, bmh, "{pat}: brute vs bmh");
                assert_eq!(brute, simple, "{pat}: brute vs strsearch");
            }
        });
    }

    #[test]
    fn upper_and_lower_are_inverse_on_letters() {
        with_machine(|m| {
            for c in b'a'..=b'z' {
                let u = m.call("upper", &[c as i32]).unwrap();
                assert_eq!(u, (c as i32) - 32);
                assert_eq!(m.call("lower", &[u]).unwrap(), c as i32);
            }
            assert_eq!(m.call("upper", &['!' as i32]).unwrap(), '!' as i32);
        });
    }

    #[test]
    fn str_cmp_semantics() {
        with_machine(|m| {
            let p = benchmark().compile().unwrap();
            let the_a = m.global_address(p.global_by_name("pat_the").unwrap()) as i32;
            let fox_a = m.global_address(p.global_by_name("pat_fox").unwrap()) as i32;
            assert_eq!(m.call("str_cmp", &[the_a, the_a]).unwrap(), 0);
            assert_ne!(m.call("str_cmp", &[the_a, fox_a]).unwrap(), 0);
        });
    }
}
