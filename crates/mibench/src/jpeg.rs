//! `jpeg` (MiBench *consumer*) — "image compression / decompression".
//!
//! The benchmark's hot kernels re-implemented over an 8×8 work block:
//! color conversion, a DCT-style butterfly transform, quantization,
//! zigzag scanning, and run-length encoding — the paper's many small
//! `jpeg`-tagged functions (`get_8bit_row`, `read_quant_tables`, ...)
//! have exactly this flavor of table-driven loop code.

use crate::{Benchmark, Workload};

/// MiniC source of the kernels.
pub const SOURCE: &str = r#"
int blk[64];
int out[64];
int qtab[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99
};
int zigzag[64] = {
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};

// ITU-R BT.601 luma in 16-bit fixed point.
int ycc_y(int r, int g, int b) {
    return (19595 * r + 38470 * g + 7471 * b + 32768) >> 16;
}

int ycc_cb(int r, int g, int b) {
    return ((0 - 11059) * r - 21709 * g + 32768 * b + 8421376) >> 16;
}

int ycc_cr(int r, int g, int b) {
    return (32768 * r - 27439 * g - 5329 * b + 8421376) >> 16;
}

// Clamp to the 8-bit sample range.
int range_limit(int x) {
    if (x < 0) return 0;
    if (x > 255) return 255;
    return x;
}

// Descale with rounding, as in the library's DCT.
int descale(int x, int n) {
    return (x + (1 << (n - 1))) >> n;
}

// A 1-D butterfly pass over every row of the block (DCT-flavoured:
// sums/differences plus scaled rotations).
void dct_rows() {
    int r;
    for (r = 0; r < 8; r++) {
        int base = r * 8;
        int s07 = blk[base] + blk[base + 7];
        int d07 = blk[base] - blk[base + 7];
        int s16 = blk[base + 1] + blk[base + 6];
        int d16 = blk[base + 1] - blk[base + 6];
        int s25 = blk[base + 2] + blk[base + 5];
        int d25 = blk[base + 2] - blk[base + 5];
        int s34 = blk[base + 3] + blk[base + 4];
        int d34 = blk[base + 3] - blk[base + 4];
        blk[base] = s07 + s34 + s16 + s25;
        blk[base + 4] = s07 + s34 - s16 - s25;
        blk[base + 2] = descale((s07 - s34) * 17734 + (s16 - s25) * 7344, 13);
        blk[base + 6] = descale((s07 - s34) * 7344 - (s16 - s25) * 17734, 13);
        blk[base + 1] = descale(d07 * 16819 + d16 * 14251 + d25 * 9517 + d34 * 3342, 13);
        blk[base + 3] = descale(d07 * 14251 - d16 * 3342 - d25 * 16819 - d34 * 9517, 13);
        blk[base + 5] = descale(d07 * 9517 - d16 * 16819 + d25 * 3342 + d34 * 14251, 13);
        blk[base + 7] = descale(d07 * 3342 - d16 * 9517 + d25 * 14251 - d34 * 16819, 13);
    }
}

// Quantize the block in place.
void quantize_block() {
    int i;
    for (i = 0; i < 64; i++) {
        int v = blk[i];
        int q = qtab[i];
        if (v < 0) {
            blk[i] = -((q / 2 - v) / q);
        } else {
            blk[i] = (v + q / 2) / q;
        }
    }
}

// Zigzag reorder into `out`; returns the index of the last nonzero
// coefficient.
int zigzag_scan() {
    int last = -1;
    int i;
    for (i = 0; i < 64; i++) {
        out[i] = blk[zigzag[i]];
        if (out[i] != 0) last = i;
    }
    return last;
}

// Run-length encode `out` in place as (run, value) pairs; returns the
// number of pairs (the entropy-coding front half).
int rle_encode(int limit) {
    int pairs = 0;
    int run = 0;
    int i;
    for (i = 1; i <= limit; i++) {
        if (out[i] == 0 && run < 15) {
            run++;
        } else {
            pairs++;
            run = 0;
        }
    }
    return pairs;
}

// Number of bits needed to encode magnitude v (jpeg's "nbits").
int jpeg_nbits(int v) {
    int n = 0;
    if (v < 0) v = -v;
    while (v != 0) {
        n++;
        v = v >>> 1;
    }
    return n;
}

// Inverse of the row transform's butterfly skeleton (structure only —
// exercises the same add/shift patterns in the opposite direction).
void idct_rows() {
    int r;
    for (r = 0; r < 8; r++) {
        int base = r * 8;
        int e0 = blk[base] + blk[base + 4];
        int e1 = blk[base] - blk[base + 4];
        int e2 = descale(blk[base + 2] * 17734 - blk[base + 6] * 7344, 13);
        int e3 = descale(blk[base + 2] * 7344 + blk[base + 6] * 17734, 13);
        int o0 = descale(blk[base + 1] * 16819 + blk[base + 7] * 3342, 13);
        int o1 = descale(blk[base + 3] * 14251 - blk[base + 5] * 9517, 13);
        int o2 = descale(blk[base + 5] * 14251 + blk[base + 3] * 9517, 13);
        int o3 = descale(blk[base + 7] * 16819 - blk[base + 1] * 3342, 13);
        blk[base] = (e0 + e3 + o0 + o1) >> 3;
        blk[base + 1] = (e1 + e2 + o2 - o3) >> 3;
        blk[base + 2] = (e1 - e2 + o2 + o3) >> 3;
        blk[base + 3] = (e0 - e3 + o0 - o1) >> 3;
        blk[base + 4] = (e0 - e3 - o0 + o1) >> 3;
        blk[base + 5] = (e1 - e2 - o2 - o3) >> 3;
        blk[base + 6] = (e1 + e2 - o2 + o3) >> 3;
        blk[base + 7] = (e0 + e3 - o0 - o1) >> 3;
    }
}

// 2x2 chroma downsampling of the block into out[0..16].
void downsample_2x2() {
    int r;
    for (r = 0; r < 4; r++) {
        int c;
        for (c = 0; c < 4; c++) {
            int base = r * 16 + c * 2;
            out[r * 4 + c] =
                (blk[base] + blk[base + 1] + blk[base + 8] + blk[base + 9] + 2) >> 2;
        }
    }
}

// The column pass of the 2-D transform: the same butterfly skeleton as
// dct_rows but striding by 8 (a different memory access pattern).
void dct_cols() {
    int c;
    for (c = 0; c < 8; c++) {
        int s07 = blk[c] + blk[c + 56];
        int d07 = blk[c] - blk[c + 56];
        int s16 = blk[c + 8] + blk[c + 48];
        int d16 = blk[c + 8] - blk[c + 48];
        int s25 = blk[c + 16] + blk[c + 40];
        int d25 = blk[c + 16] - blk[c + 40];
        int s34 = blk[c + 24] + blk[c + 32];
        int d34 = blk[c + 24] - blk[c + 32];
        blk[c] = descale(s07 + s34 + s16 + s25 + 2, 2);
        blk[c + 32] = descale(s07 + s34 - s16 - s25 + 2, 2);
        blk[c + 16] = descale((s07 - s34) * 17734 + (s16 - s25) * 7344, 15);
        blk[c + 48] = descale((s07 - s34) * 7344 - (s16 - s25) * 17734, 15);
        blk[c + 8] = descale(d07 * 16819 + d16 * 14251 + d25 * 9517 + d34 * 3342, 15);
        blk[c + 24] = descale(d07 * 14251 - d16 * 3342 - d25 * 16819 - d34 * 9517, 15);
        blk[c + 40] = descale(d07 * 9517 - d16 * 16819 + d25 * 3342 + d34 * 14251, 15);
        blk[c + 56] = descale(d07 * 3342 - d16 * 9517 + d25 * 14251 - d34 * 16819, 15);
    }
}

int last_dc = 0;

// DC prediction: returns the delta to encode and updates the predictor.
int dc_predict(int dc) {
    int delta = dc - last_dc;
    last_dc = dc;
    return delta;
}

// Mean sample value of the block (arithmetic shift floors toward
// negative infinity, which is what the library's scaled means use).
int block_mean() {
    int s = 0;
    int i;
    for (i = 0; i < 64; i++) s += blk[i];
    return (s + 32) >> 6;
}

// Fill the block with a synthetic gradient image patch.
void load_patch(int seed) {
    int r;
    int c;
    for (r = 0; r < 8; r++) {
        for (c = 0; c < 8; c++) {
            int red = range_limit((r * 32 + seed) & 255);
            int green = range_limit((c * 32 + seed * 3) & 255);
            int blue = range_limit(((r + c) * 16 + seed * 5) & 255);
            blk[r * 8 + c] = ycc_y(red, green, blue) - 128;
        }
    }
}

// Whole pipeline: returns a checksum of the RLE stats.
int jpeg_main(int seed) {
    int last;
    load_patch(seed);
    dct_rows();
    dct_cols();
    quantize_block();
    last = zigzag_scan();
    if (last < 0) return 0;
    return rle_encode(last) * 256 + jpeg_nbits(out[0]);
}
"#;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "jpeg",
        category: "consumer",
        tag: 'j',
        description: "image compression / decompression",
        source: SOURCE,
        workloads: vec![
            Workload {
                function: "ycc_y",
                args: vec![200, 100, 50],
                description: "luma conversion",
            },
            Workload { function: "range_limit", args: vec![300], description: "sample clamping" },
            Workload { function: "jpeg_nbits", args: vec![-1000], description: "magnitude bits" },
            Workload { function: "jpeg_main", args: vec![11], description: "full block pipeline" },
            Workload {
                function: "idct_rows",
                args: vec![],
                description: "inverse transform skeleton",
            },
            Workload {
                function: "downsample_2x2",
                args: vec![],
                description: "chroma subsampling",
            },
            Workload { function: "dc_predict", args: vec![57], description: "DC delta encoding" },
            Workload { function: "block_mean", args: vec![], description: "block statistics" },
            Workload { function: "dct_cols", args: vec![], description: "column transform pass" },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_sim::Machine;

    #[test]
    fn luma_matches_reference() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        for (r, g, b) in [(0, 0, 0), (255, 255, 255), (200, 100, 50), (1, 2, 3)] {
            let expect = (19595 * r + 38470 * g + 7471 * b + 32768) >> 16;
            assert_eq!(m.call("ycc_y", &[r, g, b]).unwrap(), expect);
        }
        // White is neutral chroma (128 after bias).
        assert_eq!(m.call("ycc_cb", &[255, 255, 255]).unwrap(), 128);
        assert_eq!(m.call("ycc_cr", &[255, 255, 255]).unwrap(), 128);
    }

    #[test]
    fn range_limit_clamps() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("range_limit", &[-5]).unwrap(), 0);
        assert_eq!(m.call("range_limit", &[300]).unwrap(), 255);
        assert_eq!(m.call("range_limit", &[128]).unwrap(), 128);
    }

    #[test]
    fn nbits_matches_reference() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        for v in [0i32, 1, -1, 2, 3, 255, -256, 1023, i32::MAX] {
            let expect = (32 - (v.unsigned_abs()).leading_zeros()) as i32;
            assert_eq!(m.call("jpeg_nbits", &[v]).unwrap(), expect, "nbits({v})");
        }
    }

    #[test]
    fn pipeline_is_deterministic_and_plausible() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.set_fuel(50_000_000);
        let a = m.call("jpeg_main", &[11]).unwrap();
        m.reset();
        let b = m.call("jpeg_main", &[11]).unwrap();
        assert_eq!(a, b);
        // DC coefficient should dominate: some pairs and nonzero bits.
        assert!(a > 0, "pipeline checksum was {a}");
    }

    #[test]
    fn dc_predict_is_a_running_delta() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("dc_predict", &[10]).unwrap(), 10);
        assert_eq!(m.call("dc_predict", &[25]).unwrap(), 15);
        assert_eq!(m.call("dc_predict", &[5]).unwrap(), -20);
    }

    #[test]
    fn downsample_averages_quads() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        for i in 0..64 {
            m.write_global_word("blk", i, (i as i32) * 4).unwrap();
        }
        m.call("downsample_2x2", &[]).unwrap();
        // Quad (0,1,8,9)*4 = (0+4+32+36+2)/4 = 18 (rounded).
        assert_eq!(m.read_global_word("out", 0).unwrap(), 18);
        // Values strictly increase along each row of the downsample.
        for r in 0..4 {
            for c in 1..4 {
                assert!(
                    m.read_global_word("out", r * 4 + c).unwrap()
                        > m.read_global_word("out", r * 4 + c - 1).unwrap()
                );
            }
        }
    }

    #[test]
    fn block_mean_matches_reference() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        for i in 0..64 {
            m.write_global_word("blk", i, i as i32 - 20).unwrap();
        }
        let s: i32 = (0..64).map(|i| i - 20).sum();
        assert_eq!(m.call("block_mean", &[]).unwrap(), (s + 32) >> 6);
    }

    #[test]
    fn idct_runs_and_is_deterministic() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.call("load_patch", &[3]).unwrap();
        m.call("dct_rows", &[]).unwrap();
        m.call("idct_rows", &[]).unwrap();
        let a: Vec<i32> = (0..64).map(|i| m.read_global_word("blk", i).unwrap()).collect();
        m.reset();
        m.call("load_patch", &[3]).unwrap();
        m.call("dct_rows", &[]).unwrap();
        m.call("idct_rows", &[]).unwrap();
        let b: Vec<i32> = (0..64).map(|i| m.read_global_word("blk", i).unwrap()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let p = benchmark().compile().unwrap();
        let m = Machine::new(&p);
        let mut seen = [false; 64];
        for i in 0..64 {
            let v = m.read_global_word("zigzag", i).unwrap() as usize;
            assert!(v < 64 && !seen[v], "zigzag[{i}]={v}");
            seen[v] = true;
        }
    }
}
