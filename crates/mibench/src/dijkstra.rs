//! `dijkstra` (MiBench *network*) — "Dijkstra's shortest path algorithm"
//! over an 8-node adjacency matrix, with the benchmark's little queue
//! helpers.

use crate::{Benchmark, Workload};

/// MiniC source of the kernels.
pub const SOURCE: &str = r#"
int NONE = 9999999;

// 8x8 adjacency matrix, row-major; 0 = no edge.
int adj[64] = {
    0,  4,  0,  0,  0,  0,  0,  8,
    4,  0,  8,  0,  0,  0,  0, 11,
    0,  8,  0,  7,  0,  4,  0,  0,
    0,  0,  7,  0,  9, 14,  0,  0,
    0,  0,  0,  9,  0, 10,  0,  0,
    0,  0,  4, 14, 10,  0,  2,  0,
    0,  0,  0,  0,  0,  2,  0,  1,
    8, 11,  0,  0,  0,  0,  1,  0
};

int dist[8];
int prev[8];
int visited[8];

// The benchmark's FIFO helpers.
int queue[64];
int qhead;
int qtail;
int qsize;

void qinit() {
    qhead = 0;
    qtail = 0;
    qsize = 0;
}

void enqueue(int v) {
    queue[qtail] = v;
    qtail = (qtail + 1) % 64;
    qsize++;
}

int dequeue() {
    int v = queue[qhead];
    qhead = (qhead + 1) % 64;
    qsize--;
    return v;
}

int qcount() {
    return qsize;
}

// Single-source shortest paths; returns the distance to `dst`.
int dijkstra(int src, int dst) {
    int i;
    int round;
    for (i = 0; i < 8; i++) {
        dist[i] = NONE;
        prev[i] = -1;
        visited[i] = 0;
    }
    dist[src] = 0;
    for (round = 0; round < 8; round++) {
        int best = NONE;
        int u = -1;
        for (i = 0; i < 8; i++) {
            if (!visited[i] && dist[i] < best) {
                best = dist[i];
                u = i;
            }
        }
        if (u < 0) break;
        visited[u] = 1;
        for (i = 0; i < 8; i++) {
            int w = adj[u * 8 + i];
            if (w > 0 && dist[u] + w < dist[i]) {
                dist[i] = dist[u] + w;
                prev[i] = u;
            }
        }
    }
    return dist[dst];
}

// Path length (number of hops) recovered from `prev`.
int path_hops(int dst) {
    int hops = 0;
    int v = dst;
    while (prev[v] >= 0 && hops < 8) {
        v = prev[v];
        hops++;
    }
    return hops;
}

// Number of edges incident to a node.
int graph_degree(int v) {
    int d = 0;
    int i;
    for (i = 0; i < 8; i++) {
        if (adj[v * 8 + i] > 0) d++;
    }
    return d;
}

// Total weight of the (undirected) graph.
int graph_total_weight() {
    int w = 0;
    int r;
    for (r = 0; r < 8; r++) {
        int c;
        for (c = r + 1; c < 8; c++) {
            w += adj[r * 8 + c];
        }
    }
    return w;
}

// The node farthest from `src` (ties to the lowest index).
int farthest_node(int src) {
    int best = -1;
    int besti = src;
    int v;
    dijkstra(src, 0);
    for (v = 0; v < 8; v++) {
        if (v != src && dist[v] < NONE && dist[v] > best) {
            best = dist[v];
            besti = v;
        }
    }
    return besti;
}

// BFS reachability from `src`, using the benchmark's queue; returns the
// number of reachable nodes (including src).
int bfs_reachable(int src) {
    int count = 0;
    int i;
    for (i = 0; i < 8; i++) visited[i] = 0;
    qinit();
    enqueue(src);
    visited[src] = 1;
    while (qcount() > 0) {
        int u = dequeue();
        count++;
        for (i = 0; i < 8; i++) {
            if (adj[u * 8 + i] > 0 && !visited[i]) {
                visited[i] = 1;
                enqueue(i);
            }
        }
    }
    return count;
}

// Driver: all-pairs sum of shortest distances via repeated runs, using
// the queue to schedule sources like the benchmark's main loop.
int dijkstra_main() {
    int total = 0;
    int s;
    qinit();
    for (s = 0; s < 8; s++) enqueue(s);
    while (qcount() > 0) {
        int src = dequeue();
        int d;
        for (d = 0; d < 8; d++) {
            if (d != src) total += dijkstra(src, d);
        }
    }
    return total;
}
"#;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "dijkstra",
        category: "network",
        tag: 'd',
        description: "Dijkstra's shortest path algorithm",
        source: SOURCE,
        workloads: vec![
            Workload {
                function: "dijkstra",
                args: vec![0, 4],
                description: "single shortest path 0 -> 4",
            },
            Workload { function: "dijkstra_main", args: vec![], description: "all-pairs driver" },
            Workload { function: "path_hops", args: vec![4], description: "hop count after a run" },
            Workload { function: "graph_degree", args: vec![5], description: "node degree" },
            Workload {
                function: "graph_total_weight",
                args: vec![],
                description: "total edge weight",
            },
            Workload {
                function: "farthest_node",
                args: vec![0],
                description: "eccentricity endpoint",
            },
            Workload {
                function: "bfs_reachable",
                args: vec![3],
                description: "BFS reachability via the queue",
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_sim::Machine;

    /// Reference Dijkstra over the same matrix.
    fn reference(src: usize, dst: usize) -> i32 {
        const INF: i32 = 9_999_999;
        let adj: [[i32; 8]; 8] = [
            [0, 4, 0, 0, 0, 0, 0, 8],
            [4, 0, 8, 0, 0, 0, 0, 11],
            [0, 8, 0, 7, 0, 4, 0, 0],
            [0, 0, 7, 0, 9, 14, 0, 0],
            [0, 0, 0, 9, 0, 10, 0, 0],
            [0, 0, 4, 14, 10, 0, 2, 0],
            [0, 0, 0, 0, 0, 2, 0, 1],
            [8, 11, 0, 0, 0, 0, 1, 0],
        ];
        let mut dist = [INF; 8];
        let mut vis = [false; 8];
        dist[src] = 0;
        for _ in 0..8 {
            let u = (0..8).filter(|&i| !vis[i]).min_by_key(|&i| dist[i]);
            let Some(u) = u else { break };
            if dist[u] == INF {
                break;
            }
            vis[u] = true;
            for v in 0..8 {
                if adj[u][v] > 0 && dist[u] + adj[u][v] < dist[v] {
                    dist[v] = dist[u] + adj[u][v];
                }
            }
        }
        dist[dst]
    }

    #[test]
    fn shortest_paths_match_reference() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        for src in 0..8 {
            for dst in 0..8 {
                m.reset();
                let got = m.call("dijkstra", &[src, dst]).unwrap();
                assert_eq!(got, reference(src as usize, dst as usize), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn driver_sums_all_pairs() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        let got = m.call("dijkstra_main", &[]).unwrap();
        let mut expect = 0;
        for s in 0..8 {
            for d in 0..8 {
                if s != d {
                    expect += reference(s, d);
                }
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn graph_utilities_match_reference() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        // Node 0 has edges to 1 and 7.
        assert_eq!(m.call("graph_degree", &[0]).unwrap(), 2);
        // Node 5 connects to 2, 3, 4, 6.
        assert_eq!(m.call("graph_degree", &[5]).unwrap(), 4);
        // Upper-triangle sum of the matrix in the source.
        assert_eq!(
            m.call("graph_total_weight", &[]).unwrap(),
            4 + 8 + 8 + 11 + 7 + 4 + 9 + 14 + 10 + 2 + 1
        );
        // Farthest node from 0 under shortest-path metric: reference says 4.
        let far = m.call("farthest_node", &[0]).unwrap();
        let best = (1..8).max_by_key(|&d| reference(0, d as usize)).unwrap();
        assert_eq!(far, best);
    }

    #[test]
    fn bfs_reaches_the_whole_connected_graph() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        // The matrix is connected: every start reaches all 8 nodes.
        for src in 0..8 {
            m.reset();
            assert_eq!(m.call("bfs_reachable", &[src]).unwrap(), 8, "src {src}");
        }
    }

    #[test]
    fn queue_round_trips() {
        let p = benchmark().compile().unwrap();
        let mut m = Machine::new(&p);
        m.call("qinit", &[]).unwrap();
        m.call("enqueue", &[42]).unwrap();
        m.call("enqueue", &[7]).unwrap();
        assert_eq!(m.call("qcount", &[]).unwrap(), 2);
        assert_eq!(m.call("dequeue", &[]).unwrap(), 42);
        assert_eq!(m.call("dequeue", &[]).unwrap(), 7);
        assert_eq!(m.call("qcount", &[]).unwrap(), 0);
    }
}
