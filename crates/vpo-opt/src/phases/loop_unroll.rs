//! Phase `g` — loop unrolling.
//!
//! "Loop unrolling to potentially reduce the number of comparisons and
//! branches at runtime and to aid scheduling at the cost of code size
//! increase." Following the paper, the unroll factor is always **two**
//! (code size matters on the embedded target), and the phase is legal only
//! after register allocation because it analyzes values in registers.
//!
//! An innermost loop qualifies when its blocks are positionally contiguous,
//! it has a single back edge, and its body is within the target's
//! [`unroll_limit`](crate::Target::unroll_limit). Both loop shapes are
//! handled:
//!
//! * **bottom-test** (latch ends `PC=IC<c>,H`): the original latch's branch
//!   is inverted to exit over the copy, and the copy's latch branches back
//!   to the original header;
//! * **top-test** (latch ends `PC=H`): the original latch jumps into the
//!   copy, whose own latch jumps back to the original header. The copy sits
//!   directly after the original latch, so the first jump becomes a useless
//!   jump — one of the ways `g` enables phase `u`.
//!
//! The exit test is retained in both copies (no trip-count analysis), so
//! the transformation is unconditionally sound. Each loop is unrolled **at
//! most once** — a previously unrolled loop is recognized by its two exit
//! edges to the same outside block and left alone, mirroring VPO's fixed
//! unroll factor of two.

use std::collections::HashMap;

use vpo_rtl::cfg::Cfg;
use vpo_rtl::loops::find_loops;
use vpo_rtl::{Block, Function, Inst, Label};

use crate::target::Target;

/// Runs loop unrolling; returns whether anything changed.
pub fn run(f: &mut Function, target: &Target) -> bool {
    // Snapshot qualifying headers once: each loop is unrolled at most once
    // per phase application (factor two, as in the paper).
    let mut changed = false;
    let mut done: Vec<Label> = Vec::new();
    while let Some(header) = unroll_one(f, target, &done) {
        done.push(header);
        changed = true;
    }
    changed
}

fn unroll_one(f: &mut Function, target: &Target, done: &[Label]) -> Option<Label> {
    let cfg = Cfg::build(f);
    let loops = find_loops(&cfg);
    'outer: for l in &loops {
        let header_label = f.blocks[l.header].label;
        if done.contains(&header_label) {
            continue;
        }
        // Innermost: no other loop header inside this loop.
        for other in &loops {
            if other.header != l.header && l.contains(other.header) {
                continue 'outer;
            }
        }
        if l.latches.len() != 1 {
            continue;
        }
        // Contiguous positional range.
        let lo = *l.body.first().unwrap();
        let hi = *l.body.last().unwrap();
        if l.body.len() != hi - lo + 1 || l.header != lo {
            continue;
        }
        let latch = l.latches[0];
        if latch != hi {
            continue; // the back edge must come from the last block
        }
        let size: usize = l.body.iter().map(|&b| f.blocks[b].insts.len()).sum();
        if size > target.unroll_limit {
            continue;
        }
        // Unroll each loop only once (the paper's fixed factor of two): a
        // factor-2 unrolled loop is recognizable by having two distinct
        // exit edges to the same outside block — the original test and its
        // copy. Loops with multiple breaks share the signature and are
        // conservatively left alone.
        let mut exit_edges: HashMap<usize, usize> = HashMap::new();
        for &b in &l.body {
            for &succ in &cfg.succs[b] {
                if !l.contains(succ) {
                    *exit_edges.entry(succ).or_insert(0) += 1;
                }
            }
        }
        if exit_edges.values().any(|&n| n >= 2) {
            continue;
        }
        // Classify the back edge.
        enum Shape {
            BottomTest,
            TopTest,
        }
        let shape = match f.blocks[latch].insts.last() {
            Some(Inst::CondBranch { target: t, .. }) if *t == header_label => {
                // The inverted branch must be able to fall through to the
                // positional successor (the loop exit).
                if hi + 1 >= f.blocks.len() {
                    continue;
                }
                Shape::BottomTest
            }
            Some(Inst::Jump { target: t }) if *t == header_label => Shape::TopTest,
            _ => continue,
        };

        // Build the copy with fresh labels.
        let mut label_map: HashMap<Label, Label> = HashMap::new();
        for &b in &l.body {
            label_map.insert(f.blocks[b].label, f.new_label());
        }
        let mut copies: Vec<Block> = Vec::with_capacity(l.body.len());
        for &b in &l.body {
            let mut blk = f.blocks[b].clone();
            blk.label = label_map[&blk.label];
            for inst in &mut blk.insts {
                inst.retarget(|t| label_map.get(&t).copied().unwrap_or(t));
            }
            copies.push(blk);
        }
        let copy_header = label_map[&header_label];
        // The copy's back edge must return to the ORIGINAL header.
        {
            let last = copies.last_mut().unwrap().insts.last_mut().unwrap();
            last.retarget(|_| header_label);
        }
        // Rewire the original latch into the copy.
        match shape {
            Shape::BottomTest => {
                let exit_label = f.blocks[hi + 1].label;
                let last = f.blocks[latch].insts.last_mut().unwrap();
                if let Inst::CondBranch { cond, target: t } = last {
                    *cond = cond.negate();
                    *t = exit_label;
                }
            }
            Shape::TopTest => {
                let last = f.blocks[latch].insts.last_mut().unwrap();
                if let Inst::Jump { target: t } = last {
                    *t = copy_header;
                }
            }
        }
        // Insert copies directly after the original loop.
        for (k, blk) in copies.into_iter().enumerate() {
            f.blocks.insert(hi + 1 + k, blk);
        }
        return Some(header_label);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{BinOp, Cond, Expr};

    fn t() -> Target {
        Target::default()
    }

    /// Rotated (bottom-test) countdown loop.
    fn rotated() -> Function {
        let mut b = FunctionBuilder::new("r");
        let i = b.param();
        let acc = b.param();
        let body = b.new_label();
        let exit = b.new_label();
        b.start_block(body);
        b.assign(acc, Expr::bin(BinOp::Add, Expr::Reg(acc), Expr::Reg(i)));
        b.assign(i, Expr::bin(BinOp::Sub, Expr::Reg(i), Expr::Const(1)));
        b.compare(Expr::Reg(i), Expr::Const(0));
        b.cond_branch(Cond::Gt, body);
        b.start_block(exit);
        b.ret(Some(Expr::Reg(acc)));
        let mut f = b.finish();
        crate::normalize::normalize(&mut f);
        f
    }

    #[test]
    fn unrolls_bottom_test_loop() {
        let mut f = rotated();
        // Builder entry merged: [body-with-ret?] — the exit must be a
        // separate block for bottom-test unrolling; check structure first.
        let before_blocks = f.blocks.len();
        let before_insts = f.inst_count();
        assert!(run(&mut f, &t()));
        assert!(f.blocks.len() > before_blocks);
        assert!(f.inst_count() > before_insts);
        // A second application recognizes the unrolled shape and is dormant.
        assert!(!run(&mut f, &t()), "loops are unrolled at most once");
    }

    #[test]
    fn respects_size_limit() {
        let mut f = rotated();
        let target = Target { unroll_limit: 2, ..Target::default() };
        assert!(!run(&mut f, &target));
    }

    #[test]
    fn unrolls_top_test_loop_and_creates_useless_jump() {
        let mut b = FunctionBuilder::new("w");
        let i = b.param();
        let n = b.param();
        let header = b.new_label();
        let body = b.new_label();
        let exit = b.new_label();
        b.start_block(header);
        b.compare(Expr::Reg(i), Expr::Reg(n));
        b.cond_branch(Cond::Ge, exit);
        b.start_block(body);
        b.assign(i, Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)));
        b.jump(header);
        b.start_block(exit);
        b.ret(Some(Expr::Reg(i)));
        let mut f = b.finish();
        crate::normalize::normalize(&mut f);
        let before = f.inst_count();
        assert!(run(&mut f, &t()));
        assert_eq!(f.inst_count(), before * 2 - 1, "loop body duplicated");
        // The original latch now jumps to the copy header, which directly
        // follows it: phase u has new work (g enables u).
        assert!(crate::phases::useless_jump::run(&mut f, &t()));
    }

    #[test]
    fn does_not_unroll_outer_loops() {
        // Nested loops: only the inner one qualifies.
        let mut b = FunctionBuilder::new("n");
        let i = b.param();
        let j = b.param();
        let outer = b.new_label();
        let inner = b.new_label();
        let after = b.new_label();
        let exit = b.new_label();
        b.start_block(outer);
        b.assign(j, Expr::Const(4));
        b.start_block(inner);
        b.assign(j, Expr::bin(BinOp::Sub, Expr::Reg(j), Expr::Const(1)));
        b.compare(Expr::Reg(j), Expr::Const(0));
        b.cond_branch(Cond::Gt, inner);
        b.start_block(after);
        b.assign(i, Expr::bin(BinOp::Sub, Expr::Reg(i), Expr::Const(1)));
        b.compare(Expr::Reg(i), Expr::Const(0));
        b.cond_branch(Cond::Gt, outer);
        b.start_block(exit);
        b.ret(None);
        let mut f = b.finish();
        crate::normalize::normalize(&mut f);
        assert!(run(&mut f, &t()));
        // Exactly one loop got unrolled (the inner): count inner-body
        // subtraction patterns.
        let subs = f
            .iter_insts()
            .filter(|(_, _, i)| matches!(i, Inst::Assign { src: Expr::Bin(BinOp::Sub, ..), .. }))
            .count();
        assert_eq!(subs, 3, "inner decrement duplicated, outer left alone");
    }
}
