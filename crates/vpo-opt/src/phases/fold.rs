//! Shared constant-folding and algebraic simplification over RTL
//! expressions, used by instruction selection and CSE.

use vpo_rtl::{BinOp, Expr, UnOp};

/// Folds constants and applies simple algebraic identities bottom-up.
/// Returns the (possibly unchanged) expression and whether it changed.
///
/// Folding never introduces operations: it only evaluates constant
/// subtrees (`1+2` → `3`), removes identities (`x+0` → `x`, `x*1` → `x`,
/// `x&-1` → `x`, `x^0` → `x`, `x<<0` → `x`), and collapses annihilators
/// (`x*0` → `0` only when `x` is a pure register expression, so no memory
/// read is discarded).
pub fn fold_expr(e: &Expr) -> (Expr, bool) {
    let mut out = e.clone();
    let changed = fold_in_place(&mut out);
    (out, changed)
}

/// In-place version of [`fold_expr`].
pub fn fold_in_place(e: &mut Expr) -> bool {
    let mut changed = false;
    if let Expr::Bin(op, a, b) = e {
        changed |= fold_in_place(a);
        changed |= fold_in_place(b);
        let op = *op;
        match (a.as_const(), b.as_const()) {
            (Some(ca), Some(cb)) => {
                if let Some(v) = op.eval(ca as i32, cb as i32) {
                    *e = Expr::Const(v as i64);
                    return true;
                }
            }
            (_, Some(cb)) => {
                if let Some(simpl) = identity_right(op, a, cb) {
                    *e = simpl;
                    return true;
                }
            }
            (Some(ca), _) => {
                if let Some(simpl) = identity_left(op, ca, b) {
                    *e = simpl;
                    return true;
                }
            }
            _ => {}
        }
        return changed;
    }
    match e {
        Expr::Un(op, a) => {
            changed |= fold_in_place(a);
            if let Some(c) = a.as_const() {
                *e = Expr::Const(op.eval(c as i32) as i64);
                return true;
            }
            // --x → x, ~~x → x
            if let Expr::Un(inner_op, inner) = &**a {
                if *inner_op == *op {
                    *e = (**inner).clone();
                    return true;
                }
            }
            changed
        }
        Expr::Load(_, a) => fold_in_place(a) || changed,
        _ => changed,
    }
}

/// Pure detector: returns exactly what [`fold_in_place`] would return,
/// without cloning or mutating anything. The hot paths call this first and
/// only clone an instruction when a fold will actually happen.
///
/// The mirror argument: `fold_in_place` folds children first and then
/// consults `as_const` on the *folded* children. If any child would fold,
/// the whole expression changes and the answer is `true` regardless of the
/// top-level rule; if no child would fold, the children are already in
/// their final shape, so consulting `as_const`/the identity tables on the
/// original children is exact.
pub fn would_fold(e: &Expr) -> bool {
    match e {
        Expr::Bin(op, a, b) => {
            if would_fold(a) || would_fold(b) {
                return true;
            }
            match (a.as_const(), b.as_const()) {
                (Some(ca), Some(cb)) => op.eval(ca as i32, cb as i32).is_some(),
                (_, Some(cb)) => identity_right_applies(*op, a, cb),
                (Some(ca), _) => identity_left_applies(*op, ca, b),
                _ => false,
            }
        }
        Expr::Un(op, a) => {
            if would_fold(a) {
                return true;
            }
            if a.as_const().is_some() {
                return true;
            }
            matches!(&**a, Expr::Un(inner_op, _) if inner_op == op)
        }
        Expr::Load(_, a) => would_fold(a),
        _ => false,
    }
}

fn identity_right_applies(op: BinOp, a: &Expr, cb: i64) -> bool {
    match (op, cb) {
        (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor, 0) => true,
        (BinOp::Shl | BinOp::AShr | BinOp::LShr, 0) => true,
        (BinOp::Mul | BinOp::Div, 1) => true,
        (BinOp::And, -1) => true,
        (BinOp::Mul, 0) if a.is_pure_of_memory() => true,
        (BinOp::And, 0) if a.is_pure_of_memory() => true,
        (BinOp::Mul, -1) => true,
        _ => false,
    }
}

fn identity_left_applies(op: BinOp, ca: i64, b: &Expr) -> bool {
    match (op, ca) {
        (BinOp::Add | BinOp::Or | BinOp::Xor, 0) => true,
        (BinOp::Mul, 1) => true,
        (BinOp::Mul, 0) if b.is_pure_of_memory() => true,
        (BinOp::Sub, 0) => true,
        _ => false,
    }
}

fn identity_right(op: BinOp, a: &Expr, cb: i64) -> Option<Expr> {
    match (op, cb) {
        (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor, 0) => Some(a.clone()),
        (BinOp::Shl | BinOp::AShr | BinOp::LShr, 0) => Some(a.clone()),
        (BinOp::Mul | BinOp::Div, 1) => Some(a.clone()),
        (BinOp::And, -1) => Some(a.clone()),
        (BinOp::Mul, 0) if a.is_pure_of_memory() => Some(Expr::Const(0)),
        (BinOp::And, 0) if a.is_pure_of_memory() => Some(Expr::Const(0)),
        (BinOp::Mul, -1) => Some(Expr::un(UnOp::Neg, a.clone())),
        _ => None,
    }
}

fn identity_left(op: BinOp, ca: i64, b: &Expr) -> Option<Expr> {
    match (op, ca) {
        (BinOp::Add | BinOp::Or | BinOp::Xor, 0) => Some(b.clone()),
        (BinOp::Mul, 1) => Some(b.clone()),
        (BinOp::Mul, 0) if b.is_pure_of_memory() => Some(Expr::Const(0)),
        (BinOp::Sub, 0) => Some(Expr::un(UnOp::Neg, b.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::{Reg, Width};

    fn r() -> Expr {
        Expr::Reg(Reg::pseudo(0))
    }

    #[test]
    fn folds_constant_trees() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Const(1),
            Expr::bin(BinOp::Mul, Expr::Const(3), Expr::Const(4)),
        );
        let (out, changed) = fold_expr(&e);
        assert!(changed);
        assert_eq!(out, Expr::Const(13));
    }

    #[test]
    fn identities() {
        assert_eq!(fold_expr(&Expr::bin(BinOp::Add, r(), Expr::Const(0))).0, r());
        assert_eq!(fold_expr(&Expr::bin(BinOp::Mul, r(), Expr::Const(1))).0, r());
        assert_eq!(fold_expr(&Expr::bin(BinOp::Mul, r(), Expr::Const(0))).0, Expr::Const(0));
        assert_eq!(fold_expr(&Expr::bin(BinOp::Add, Expr::Const(0), r())).0, r());
        assert_eq!(
            fold_expr(&Expr::bin(BinOp::Sub, Expr::Const(0), r())).0,
            Expr::un(UnOp::Neg, r())
        );
    }

    #[test]
    fn does_not_discard_memory_reads() {
        let load = Expr::load(Width::Word, r());
        let e = Expr::bin(BinOp::Mul, load.clone(), Expr::Const(0));
        let (out, _) = fold_expr(&e);
        assert_eq!(out, e, "x*0 with memory read must not fold");
    }

    #[test]
    fn preserves_undefined_operations() {
        let e = Expr::bin(BinOp::Div, Expr::Const(1), Expr::Const(0));
        let (out, changed) = fold_expr(&e);
        assert!(!changed);
        assert_eq!(out, e);
    }

    #[test]
    fn double_negation() {
        let e = Expr::un(UnOp::Neg, Expr::un(UnOp::Neg, r()));
        assert_eq!(fold_expr(&e).0, r());
    }

    #[test]
    fn would_fold_agrees_with_fold_in_place() {
        use BinOp::*;
        // Leaves chosen to exercise every identity/annihilator row, the
        // undefined-operation guards (div by 0, shift by 33), and the
        // memory-purity guard on `x*0`/`x&0`.
        let leaves = [
            Expr::Const(-1),
            Expr::Const(0),
            Expr::Const(1),
            Expr::Const(2),
            Expr::Const(33),
            r(),
            Expr::load(Width::Word, r()),
        ];
        let ops = [Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, AShr, LShr];
        let mut depth1: Vec<Expr> = leaves.to_vec();
        for op in ops {
            for a in &leaves {
                for b in &leaves {
                    depth1.push(Expr::bin(op, a.clone(), b.clone()));
                }
            }
        }
        for a in &leaves {
            depth1.push(Expr::un(UnOp::Neg, a.clone()));
            depth1.push(Expr::un(UnOp::Not, a.clone()));
            depth1.push(Expr::load(Width::Word, a.clone()));
        }
        let mut all = depth1.clone();
        // Depth-2 sample: every op over (depth-1 expr, leaf) and the unary
        // wrappers, which covers child-folds-first and double negation.
        for op in [Add, Mul, Div, Shl] {
            for a in &depth1 {
                for b in &leaves {
                    all.push(Expr::bin(op, a.clone(), b.clone()));
                }
            }
        }
        for a in &depth1 {
            all.push(Expr::un(UnOp::Neg, a.clone()));
            all.push(Expr::un(UnOp::Not, a.clone()));
        }
        let mut folded = 0usize;
        for e in &all {
            let mut m = e.clone();
            let changed = fold_in_place(&mut m);
            assert_eq!(would_fold(e), changed, "would_fold disagrees with fold_in_place on {e:?}");
            folded += usize::from(changed);
        }
        assert!(folded > 100, "expected many folding cases, got {folded}");
        assert!(all.len() - folded > 100, "expected many non-folding cases");
    }

    #[test]
    fn fold_is_idempotent() {
        let e = Expr::bin(BinOp::Add, Expr::bin(BinOp::Mul, r(), Expr::Const(1)), Expr::Const(0));
        let (once, _) = fold_expr(&e);
        let (twice, changed) = fold_expr(&once);
        assert!(!changed);
        assert_eq!(once, twice);
    }
}
