//! Phase `k` — register allocation.
//!
//! "Uses graph coloring to replace references to a variable within a live
//! range with a register." Local scalar variables live in the activation
//! record until this phase promotes them: loads become register-to-register
//! moves and stores become moves the other way — exactly the moves that
//! instruction selection (`s`) subsequently collapses, which is why `k`
//! enables `s` in the paper's Table 4.
//!
//! Accesses come in two shapes, both handled:
//!
//! * **direct** — `dst = M[&v]` / `M[&v] = r`, the form instruction
//!   selection produces (hence the paper's `s → k` enabling relation);
//! * **indirect** — `r = &v; ...; dst = M[r]`, the front end's naive
//!   two-step form. A forward dataflow tracks which registers provably
//!   hold which slot address so such accesses can be promoted as well;
//!   the now-dead address computations are left for dead-assignment
//!   elimination (`k` enables `h`).
//!
//! A variable is promoted only when every occurrence of its address is a
//! whole-word load/store (directly or through an unambiguous
//! address-holding register) and a hard register is free for it. Each
//! promoted variable receives its own register (no live-range splitting),
//! a simplification documented in `DESIGN.md`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use vpo_rtl::cfg::Cfg;
use vpo_rtl::{Expr, Function, Inst, LocalId, Reg, RegClass, Width};

use crate::target::Target;

/// Runs register allocation; returns whether anything changed.
pub fn run(f: &mut Function, target: &Target) -> bool {
    // Free hard registers: not used anywhere in the function.
    let used: HashSet<u16> =
        f.all_regs().iter().filter(|r| r.class == RegClass::Hard).map(|r| r.index).collect();
    let mut pool: Vec<u16> = (0..target.usable_regs).filter(|i| !used.contains(i)).collect();
    if pool.is_empty() {
        return false;
    }

    let facts = SlotFacts::compute(f);
    let eligible = eligible_locals(f, &facts, target.regalloc_requires_direct);
    if eligible.is_empty() {
        return false;
    }

    // Assign each eligible local its own free register, in slot order.
    let mut coloring: HashMap<LocalId, Reg> = HashMap::new();
    for v in eligible {
        let Some(c) = pool.first().copied() else { break };
        pool.remove(0);
        coloring.insert(v, Reg::hard(c));
    }
    if coloring.is_empty() {
        return false;
    }

    // Rewrite accesses, consulting the per-instruction facts for the
    // indirect forms.
    for (bi, b) in f.blocks.iter_mut().enumerate() {
        let mut state = facts.entry_state(bi);
        for inst in &mut b.insts {
            let pre = state.clone();
            SlotFacts::transfer(&mut state, inst);
            let replacement = match inst {
                Inst::Store { width: Width::Word, addr, src } => {
                    let slot = match addr {
                        Expr::LocalAddr(v) => Some(*v),
                        Expr::Reg(r) => pre.get(r).copied(),
                        _ => None,
                    };
                    slot.and_then(|v| coloring.get(&v))
                        .map(|&rv| Inst::Assign { dst: rv, src: src.clone() })
                }
                Inst::Assign { dst, src: Expr::Load(Width::Word, a) } => {
                    let slot = match &**a {
                        Expr::LocalAddr(v) => Some(*v),
                        Expr::Reg(r) => pre.get(r).copied(),
                        _ => None,
                    };
                    slot.and_then(|v| coloring.get(&v))
                        .map(|&rv| Inst::Assign { dst: *dst, src: Expr::Reg(rv) })
                }
                _ => None,
            };
            if let Some(r) = replacement {
                *inst = r;
            }
        }
    }
    true
}

/// Forward must-dataflow: which register holds which slot address.
struct SlotFacts {
    entry: Vec<BTreeMap<Reg, LocalId>>,
}

impl SlotFacts {
    fn compute(f: &Function) -> SlotFacts {
        let cfg = Cfg::build(f);
        let nb = f.blocks.len();
        let mut out: Vec<Option<BTreeMap<Reg, LocalId>>> = vec![None; nb];
        let rpo = cfg.reverse_postorder();
        loop {
            let mut stable = true;
            for &bi in &rpo {
                let mut state = Self::meet(&cfg, &out, bi);
                for inst in &f.blocks[bi].insts {
                    Self::transfer(&mut state, inst);
                }
                if out[bi].as_ref() != Some(&state) {
                    out[bi] = Some(state);
                    stable = false;
                }
            }
            if stable {
                break;
            }
        }
        let cfg2 = Cfg::build(f);
        let entry = (0..nb).map(|bi| Self::meet(&cfg2, &out, bi)).collect();
        SlotFacts { entry }
    }

    fn meet(
        cfg: &Cfg,
        out: &[Option<BTreeMap<Reg, LocalId>>],
        bi: usize,
    ) -> BTreeMap<Reg, LocalId> {
        let mut acc: Option<BTreeMap<Reg, LocalId>> = None;
        for &p in &cfg.preds[bi] {
            if let Some(s) = &out[p] {
                acc = Some(match acc {
                    None => s.clone(),
                    Some(a) => a.into_iter().filter(|(k, v)| s.get(k) == Some(v)).collect(),
                });
            }
        }
        acc.unwrap_or_default()
    }

    fn transfer(state: &mut BTreeMap<Reg, LocalId>, inst: &Inst) {
        match inst {
            Inst::Assign { dst, src } => match src {
                Expr::LocalAddr(v) => {
                    state.insert(*dst, *v);
                }
                _ => {
                    state.remove(dst);
                }
            },
            Inst::Call { dst: Some(d), .. } => {
                state.remove(d);
            }
            _ => {}
        }
    }

    fn entry_state(&self, bi: usize) -> BTreeMap<Reg, LocalId> {
        self.entry[bi].clone()
    }
}

/// Locals whose every address occurrence is a promotable whole-word access.
/// With `direct_only` (VPO's documented behaviour), an access through an
/// address-holding register disqualifies the slot even when the dataflow
/// could prove it safe.
fn eligible_locals(f: &Function, facts: &SlotFacts, direct_only: bool) -> Vec<LocalId> {
    let mut ineligible: BTreeSet<LocalId> = BTreeSet::new();
    // Non-scalars are out immediately.
    for (i, slot) in f.locals.iter().enumerate() {
        if !slot.is_scalar() {
            ineligible.insert(LocalId(i as u32));
        }
    }
    // May-analysis: which slots could a register's value refer to. Used to
    // catch ambiguous or escaping address flow; simple union over the
    // whole function (flow-insensitive, conservative).
    // Flow-sensitive may-analysis: which slots *can* a register's value
    // refer to at each point (union at joins, killed on redefinition).
    // Loads contribute nothing: a loaded value can only be a slot address
    // if that address was first stored to memory, which the escape scan
    // below forbids.
    let may = MaySlots::compute(f);

    // Scan every instruction for occurrences of slot addresses, tracking
    // the must- and may-facts side by side.
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut state = facts.entry_state(bi);
        let mut may_state = may.entry_state(bi);
        for inst in &b.insts {
            let pre = state.clone();
            let may_pre = may_state.clone();
            SlotFacts::transfer(&mut state, inst);
            MaySlots::transfer(&mut may_state, inst);
            // Classify this instruction's use of addresses.
            let mark_expr_value = |e: &Expr, ineligible: &mut BTreeSet<LocalId>| {
                let mut sources = BTreeSet::new();
                value_sources(e, &may_pre, &mut sources);
                ineligible.extend(sources);
            };
            // The slots a register might address beyond what the must-
            // analysis proves are unsafe to promote.
            let mark_ambiguous =
                |r: &Reg, proven: Option<LocalId>, ineligible: &mut BTreeSet<LocalId>| {
                    if let Some(set) = may_pre.get(r) {
                        for &v in set {
                            if proven != Some(v) {
                                ineligible.insert(v);
                            }
                        }
                    }
                };
            match inst {
                // The address-defining move itself is fine: `r = &v`.
                Inst::Assign { src: Expr::LocalAddr(_), .. } => {}
                // A whole-word load: direct, or via an unambiguous fact.
                Inst::Assign { src: Expr::Load(w, a), .. } => match (&**a, w) {
                    (Expr::LocalAddr(v), Width::Word) => {
                        let _ = v; // direct: fine
                    }
                    (Expr::LocalAddr(v), _) => {
                        ineligible.insert(*v);
                    }
                    (Expr::Reg(r), Width::Word) => {
                        let proven = if direct_only { None } else { pre.get(r).copied() };
                        mark_ambiguous(r, proven, &mut ineligible);
                    }
                    (other, _) => mark_expr_value(other, &mut ineligible),
                },
                Inst::Store { width, addr, src } => {
                    match (addr, width) {
                        (Expr::LocalAddr(_), Width::Word) => {}
                        (Expr::LocalAddr(v), _) => {
                            ineligible.insert(*v);
                        }
                        (Expr::Reg(r), Width::Word) => {
                            let proven = if direct_only { None } else { pre.get(r).copied() };
                            mark_ambiguous(r, proven, &mut ineligible);
                        }
                        (other, _) => mark_expr_value(other, &mut ineligible),
                    }
                    mark_expr_value(src, &mut ineligible);
                }
                // Every other use of an address (arithmetic, call argument,
                // comparison, return) escapes it.
                other => other.visit_exprs(&mut |e| mark_expr_value(e, &mut ineligible)),
            }
        }
    }
    (0..f.locals.len() as u32)
        .map(LocalId)
        .filter(|v| !ineligible.contains(v))
        .filter(|v| is_accessed(f, facts, *v))
        .collect()
}

/// The slot must actually be accessed (through a direct address or a
/// proven fact) for promotion to change anything.
fn is_accessed(f: &Function, facts: &SlotFacts, v: LocalId) -> bool {
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut state = facts.entry_state(bi);
        for inst in &b.insts {
            let pre = state.clone();
            SlotFacts::transfer(&mut state, inst);
            match inst {
                Inst::Store { addr: Expr::LocalAddr(x), .. } if *x == v => return true,
                Inst::Store { addr: Expr::Reg(r), .. } if pre.get(r) == Some(&v) => return true,
                Inst::Assign { src: Expr::Load(_, a), .. } => match &**a {
                    Expr::LocalAddr(x) if *x == v => return true,
                    Expr::Reg(r) if pre.get(r) == Some(&v) => return true,
                    _ => {}
                },
                _ => {}
            }
        }
    }
    false
}

/// Which slots an expression's *value* may refer to, under the given
/// may-facts. Loads contribute nothing (see the escape discussion above).
fn value_sources(
    e: &Expr,
    may: &BTreeMap<Reg, BTreeSet<LocalId>>,
    incoming: &mut BTreeSet<LocalId>,
) {
    match e {
        Expr::LocalAddr(v) => {
            incoming.insert(*v);
        }
        Expr::Reg(r) => {
            if let Some(s) = may.get(r) {
                incoming.extend(s.iter().copied());
            }
        }
        Expr::Bin(_, a, b) => {
            value_sources(a, may, incoming);
            value_sources(b, may, incoming);
        }
        Expr::Un(_, a) => value_sources(a, may, incoming),
        Expr::Load(..) | Expr::Const(_) | Expr::Hi(_) | Expr::Lo(_) => {}
    }
}

/// Forward may-dataflow: which slots could each register address.
struct MaySlots {
    entry: Vec<BTreeMap<Reg, BTreeSet<LocalId>>>,
}

impl MaySlots {
    fn compute(f: &Function) -> MaySlots {
        let cfg = Cfg::build(f);
        let nb = f.blocks.len();
        let mut out: Vec<Option<BTreeMap<Reg, BTreeSet<LocalId>>>> = vec![None; nb];
        let rpo = cfg.reverse_postorder();
        loop {
            let mut stable = true;
            for &bi in &rpo {
                let mut state = Self::meet(&cfg, &out, bi);
                for inst in &f.blocks[bi].insts {
                    Self::transfer(&mut state, inst);
                }
                if out[bi].as_ref() != Some(&state) {
                    out[bi] = Some(state);
                    stable = false;
                }
            }
            if stable {
                break;
            }
        }
        let entry = (0..nb).map(|bi| Self::meet(&cfg, &out, bi)).collect();
        MaySlots { entry }
    }

    fn meet(
        cfg: &Cfg,
        out: &[Option<BTreeMap<Reg, BTreeSet<LocalId>>>],
        bi: usize,
    ) -> BTreeMap<Reg, BTreeSet<LocalId>> {
        let mut acc: BTreeMap<Reg, BTreeSet<LocalId>> = BTreeMap::new();
        for &p in &cfg.preds[bi] {
            if let Some(s) = &out[p] {
                for (k, v) in s {
                    acc.entry(*k).or_default().extend(v.iter().copied());
                }
            }
        }
        acc
    }

    fn transfer(state: &mut BTreeMap<Reg, BTreeSet<LocalId>>, inst: &Inst) {
        match inst {
            Inst::Assign { dst, src } => {
                let mut incoming = BTreeSet::new();
                value_sources(src, state, &mut incoming);
                if incoming.is_empty() {
                    state.remove(dst);
                } else {
                    state.insert(*dst, incoming);
                }
            }
            Inst::Call { dst: Some(d), .. } => {
                state.remove(d);
            }
            _ => {}
        }
    }

    fn entry_state(&self, bi: usize) -> BTreeMap<Reg, BTreeSet<LocalId>> {
        self.entry[bi].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::BinOp;

    fn t() -> Target {
        Target::default()
    }

    /// Builds `v = p; return v + v` in direct-address (post-`s`) form,
    /// with hard registers (post-assignment).
    fn direct_form() -> Function {
        let mut f = Function::new("f");
        f.flags.regs_assigned = true;
        let p = Reg::hard(0);
        let t0 = Reg::hard(1);
        let out = Reg::hard(2);
        f.params.push(p);
        let v = f.new_local("v", 4);
        f.blocks[0].insts = vec![
            Inst::Store { width: Width::Word, addr: Expr::LocalAddr(v), src: Expr::Reg(p) },
            Inst::Assign { dst: t0, src: Expr::load(Width::Word, Expr::LocalAddr(v)) },
            Inst::Assign { dst: out, src: Expr::bin(BinOp::Add, Expr::Reg(t0), Expr::Reg(t0)) },
            Inst::Return { value: Some(Expr::Reg(out)) },
        ];
        f
    }

    /// The naive two-step form: `addr = &v; M[addr] = p; t = M[addr]`.
    fn indirect_form() -> Function {
        let mut f = Function::new("f");
        f.flags.regs_assigned = true;
        let p = Reg::hard(0);
        let addr = Reg::hard(1);
        let t0 = Reg::hard(2);
        f.params.push(p);
        let v = f.new_local("v", 4);
        f.blocks[0].insts = vec![
            Inst::Assign { dst: addr, src: Expr::LocalAddr(v) },
            Inst::Store { width: Width::Word, addr: Expr::Reg(addr), src: Expr::Reg(p) },
            Inst::Assign { dst: t0, src: Expr::load(Width::Word, Expr::Reg(addr)) },
            Inst::Return { value: Some(Expr::Reg(t0)) },
        ];
        f
    }

    #[test]
    fn promotes_direct_scalar_to_register() {
        let mut f = direct_form();
        assert!(run(&mut f, &t()));
        assert!(matches!(f.blocks[0].insts[0], Inst::Assign { .. }));
        assert!(matches!(&f.blocks[0].insts[1], Inst::Assign { src: Expr::Reg(_), .. }));
        assert!(!run(&mut f, &t()), "second application dormant");
    }

    /// The robust-allocator ablation (not VPO's default behaviour).
    fn robust() -> Target {
        Target { regalloc_requires_direct: false, ..Target::default() }
    }

    #[test]
    fn direct_only_default_skips_indirect_form() {
        // VPO's documented dependence: k is dormant until instruction
        // selection forms direct addresses.
        let mut f = indirect_form();
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn promotes_indirect_scalar_to_register() {
        let mut f = indirect_form();
        assert!(run(&mut f, &robust()));
        // The store and load through `addr` became register moves; the
        // address computation survives as dead code for phase h.
        assert!(matches!(
            &f.blocks[0].insts[1],
            Inst::Assign { src: Expr::Reg(r), .. } if *r == Reg::hard(0)
        ));
        assert!(matches!(&f.blocks[0].insts[2], Inst::Assign { src: Expr::Reg(_), .. }));
        assert!(!run(&mut f, &robust()));
    }

    #[test]
    fn escaping_address_blocks_promotion() {
        let mut f = indirect_form();
        // Pass the address register to a call: the slot escapes, even for
        // the robust allocator.
        f.blocks[0].insts.insert(
            3,
            Inst::Call { callee: "ext".into(), args: vec![Expr::Reg(Reg::hard(1))], dst: None },
        );
        assert!(!run(&mut f, &robust()));
    }

    #[test]
    fn ambiguous_address_blocks_promotion() {
        // The same register holds &v or &w depending on the path.
        let mut f = Function::new("f");
        f.flags.regs_assigned = true;
        let p = Reg::hard(0);
        let addr = Reg::hard(1);
        let t0 = Reg::hard(2);
        f.params.push(p);
        let v = f.new_local("v", 4);
        let w = f.new_local("w", 4);
        let join = f.new_label();
        let other = f.new_label();
        f.blocks[0].insts = vec![
            Inst::Assign { dst: addr, src: Expr::LocalAddr(v) },
            Inst::Store { width: Width::Word, addr: Expr::Reg(addr), src: Expr::Reg(p) },
            Inst::Compare { lhs: Expr::Reg(p), rhs: Expr::Const(0) },
            Inst::CondBranch { cond: vpo_rtl::Cond::Lt, target: other },
        ];
        f.blocks.push(vpo_rtl::Block::new(join));
        f.blocks[1].insts = vec![
            Inst::Assign { dst: t0, src: Expr::load(Width::Word, Expr::Reg(addr)) },
            Inst::Return { value: Some(Expr::Reg(t0)) },
        ];
        f.blocks.push(vpo_rtl::Block::new(other));
        f.blocks[2].insts = vec![
            Inst::Assign { dst: addr, src: Expr::LocalAddr(w) },
            Inst::Store { width: Width::Word, addr: Expr::Reg(addr), src: Expr::Reg(p) },
            Inst::Jump { target: join },
        ];
        // v is read through `addr` at the join where the fact is ambiguous;
        // neither v nor w may be promoted.
        assert!(!run(&mut f, &robust()));
    }

    #[test]
    fn dormant_when_no_free_registers() {
        let mut f = direct_form();
        let target = Target { usable_regs: 3, ..Target::default() }; // r0..r2 all used
        assert!(!run(&mut f, &target));
    }

    #[test]
    fn arrays_are_not_promoted() {
        let mut f = Function::new("f");
        f.flags.regs_assigned = true;
        let t0 = Reg::hard(0);
        let a = f.new_local("a", 40);
        f.blocks[0].insts = vec![
            Inst::Assign {
                dst: t0,
                src: Expr::load(
                    Width::Word,
                    Expr::bin(BinOp::Add, Expr::LocalAddr(a), Expr::Const(8)),
                ),
            },
            Inst::Return { value: Some(Expr::Reg(t0)) },
        ];
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn byte_accesses_block_promotion() {
        let mut f = direct_form();
        if let Inst::Assign { src, .. } = &mut f.blocks[0].insts[1] {
            *src = Expr::load(Width::Byte, Expr::LocalAddr(LocalId(0)));
        }
        assert!(!run(&mut f, &t()));
    }
}
