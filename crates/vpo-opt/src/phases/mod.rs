//! One module per optimization phase of Table 1.
//!
//! Every phase exposes a single `run(f, target) -> bool` entry point that
//! applies the transformation to an internal fixpoint and reports whether
//! the program representation changed — the paper's *active* / *dormant*
//! distinction. Running a phase to its own fixpoint guarantees the paper's
//! observation that "no phase in our compiler can be applied successfully
//! more than once consecutively" (idempotence), which the enumeration
//! engine relies on; a property test in `phase-order` validates it for all
//! phases over the benchmark suite.

pub mod block_reorder;
pub mod branch_chain;
pub mod code_abstract;
pub mod cse;
pub mod dead_assign;
pub mod eval_order;
pub mod fold;
pub mod insn_select;
pub mod loop_jumps;
pub mod loop_unroll;
pub mod loop_xform;
pub mod regalloc;
pub mod reverse_branch;
pub mod strength_reduce;
pub mod unreachable;
pub mod useless_jump;

use crate::{PhaseId, Target};
use vpo_rtl::Function;

/// Dispatches to the phase implementation. Returns `true` if the phase was
/// *active* (changed the representation).
pub fn run(phase: PhaseId, f: &mut Function, target: &Target) -> bool {
    match phase {
        PhaseId::BranchChain => branch_chain::run(f, target),
        PhaseId::Cse => cse::run(f, target),
        PhaseId::Unreachable => unreachable::run(f, target),
        PhaseId::LoopUnroll => loop_unroll::run(f, target),
        PhaseId::DeadAssign => dead_assign::run(f, target),
        PhaseId::BlockReorder => block_reorder::run(f, target),
        PhaseId::LoopJumps => loop_jumps::run(f, target),
        PhaseId::RegAlloc => regalloc::run(f, target),
        PhaseId::LoopXform => loop_xform::run(f, target),
        PhaseId::CodeAbstract => code_abstract::run(f, target),
        PhaseId::EvalOrder => eval_order::run(f, target),
        PhaseId::StrengthReduce => strength_reduce::run(f, target),
        PhaseId::ReverseBranch => reverse_branch::run(f, target),
        PhaseId::InsnSelect => insn_select::run(f, target),
        PhaseId::UselessJump => useless_jump::run(f, target),
    }
}
