//! Phase `d` — remove unreachable code.
//!
//! "Removes basic blocks that cannot be reached from the function entry
//! block." The paper notes this phase was never active for their benchmark
//! suite because branch chaining cleans up after itself; the same holds
//! here, but the phase is implemented faithfully regardless.

use vpo_rtl::cfg::Cfg;
use vpo_rtl::Function;

use crate::target::Target;

/// Runs unreachable-code removal; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let cfg = Cfg::build(f);
    let reach = cfg.reachable();
    if reach.iter().all(|&r| r) {
        return false;
    }
    let mut keep = reach.into_iter();
    f.blocks.retain(|_| keep.next().unwrap_or(true));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::Expr;

    #[test]
    fn removes_orphan_blocks() {
        let mut b = FunctionBuilder::new("f");
        let orphan = b.new_label();
        b.ret(Some(Expr::Const(1)));
        b.start_block(orphan);
        b.ret(Some(Expr::Const(2)));
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        assert_eq!(f.blocks.len(), 1);
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn dormant_when_everything_reachable() {
        let mut b = FunctionBuilder::new("f");
        let l = b.new_label();
        b.jump(l);
        b.start_block(l);
        b.ret(None);
        let mut f = b.finish();
        assert!(!run(&mut f, &Target::default()));
    }
}
