//! Phase `n` — code abstraction.
//!
//! "Performs cross-jumping and code-hoisting to move identical
//! instructions from basic blocks to their common predecessor or
//! successor."
//!
//! * **Cross-jumping**: when every predecessor of a block ends with an
//!   explicit jump to it and all of them execute the same instruction just
//!   before jumping, one copy of that instruction is moved to the head of
//!   the successor and the duplicates are deleted.
//! * **Code hoisting**: when a two-way branch's successors both start with
//!   the same instruction (and each is reached only through that branch),
//!   one copy is hoisted above the compare/branch pair in the predecessor.

use vpo_rtl::cfg::Cfg;
use vpo_rtl::{Function, Inst};

use crate::target::Target;

/// Runs code abstraction; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;
    loop {
        let step = cross_jump_once(f) || hoist_once(f);
        if !step {
            break;
        }
        changed = true;
    }
    changed
}

/// A candidate instruction for abstraction: straight-line, and not a
/// compare (moving a CC definition across a block boundary is only legal in
/// the cross-jump direction, which preserves the position relative to the
/// consumer — hoisting checks separately).
fn movable(i: &Inst) -> bool {
    !i.is_control()
}

fn cross_jump_once(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    for c in 0..f.blocks.len() {
        let preds = &cfg.preds[c];
        if preds.len() < 2 {
            continue;
        }
        // Every predecessor must end with an explicit jump to C (no
        // fall-through or conditional entries) and have an instruction to
        // contribute.
        let label = f.blocks[c].label;
        let all_jump = preds.iter().all(|&p| {
            matches!(
                f.blocks[p].insts.last(),
                Some(Inst::Jump { target }) if *target == label
            ) && f.blocks[p].insts.len() >= 2
        });
        if !all_jump {
            continue;
        }
        let candidate = {
            let p0 = preds[0];
            let n0 = f.blocks[p0].insts.len();
            f.blocks[p0].insts[n0 - 2].clone()
        };
        if !movable(&candidate) {
            continue;
        }
        let all_same = preds.iter().all(|&p| {
            let n = f.blocks[p].insts.len();
            f.blocks[p].insts[n - 2] == candidate
        });
        if !all_same {
            continue;
        }
        // Move: delete from each predecessor, insert at the head of C.
        for &p in preds {
            let n = f.blocks[p].insts.len();
            f.blocks[p].insts.remove(n - 2);
        }
        f.blocks[c].insts.insert(0, candidate);
        return true;
    }
    false
}

fn hoist_once(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    for p in 0..f.blocks.len() {
        // P must end with [Compare, CondBranch] and fall through.
        let np = f.blocks[p].insts.len();
        if np < 2 {
            continue;
        }
        let (Inst::Compare { lhs, rhs }, Inst::CondBranch { target, .. }) =
            (&f.blocks[p].insts[np - 2], &f.blocks[p].insts[np - 1])
        else {
            continue;
        };
        let Some(&t_idx) = cfg.index_of.get(target) else { continue };
        if p + 1 >= f.blocks.len() {
            continue;
        }
        let f_idx = p + 1; // fall-through block
        if t_idx == f_idx || t_idx == p {
            continue;
        }
        // Both successors reached only through this branch.
        if cfg.preds[t_idx] != vec![p] || cfg.preds[f_idx] != vec![p] {
            continue;
        }
        let (Some(first_t), Some(first_f)) =
            (f.blocks[t_idx].insts.first(), f.blocks[f_idx].insts.first())
        else {
            continue;
        };
        if first_t != first_f || !movable(first_t) {
            continue;
        }
        let inst = first_t.clone();
        // The hoisted instruction executes before the compare/branch now:
        // it must not clobber the condition code or anything the compare
        // reads.
        if inst.defs_cc() {
            continue;
        }
        if let Some(d) = inst.def() {
            if lhs.uses_reg(d) || rhs.uses_reg(d) {
                continue;
            }
        }
        f.blocks[t_idx].insts.remove(0);
        f.blocks[f_idx].insts.remove(0);
        f.blocks[p].insts.insert(np - 2, inst);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{BinOp, Cond, Expr};

    fn t() -> Target {
        Target::default()
    }

    #[test]
    fn cross_jumps_identical_tails() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let y = b.param();
        let other = b.new_label();
        let join = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, other);
        b.assign(y, Expr::bin(BinOp::Add, Expr::Reg(y), Expr::Const(1)));
        b.jump(join);
        b.start_block(other);
        b.assign(y, Expr::bin(BinOp::Add, Expr::Reg(y), Expr::Const(1)));
        b.jump(join);
        b.start_block(join);
        b.ret(Some(Expr::Reg(y)));
        let mut f = b.finish();
        let before = f.inst_count();
        assert!(run(&mut f, &t()));
        assert_eq!(f.inst_count(), before - 1);
        // The join block now starts with the abstracted instruction.
        let join_block = f.blocks.iter().find(|blk| blk.label == join).unwrap();
        assert!(matches!(join_block.insts[0], Inst::Assign { .. }));
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn hoists_identical_heads() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let y = b.param();
        let z = b.param();
        let other = b.new_label();
        let fall = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, other);
        b.start_block(fall);
        b.assign(z, Expr::bin(BinOp::Mul, Expr::Reg(y), Expr::Reg(y)));
        b.ret(Some(Expr::Reg(z)));
        b.start_block(other);
        b.assign(z, Expr::bin(BinOp::Mul, Expr::Reg(y), Expr::Reg(y)));
        b.ret(Some(Expr::Const(0)));
        let mut f = b.finish();
        let before = f.inst_count();
        assert!(run(&mut f, &t()));
        assert_eq!(f.inst_count(), before - 1);
        // Entry now computes z before the branch.
        assert!(matches!(f.blocks[0].insts[0], Inst::Assign { .. }));
    }

    #[test]
    fn no_hoist_when_branch_depends_on_it() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let other = b.new_label();
        let fall = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, other);
        b.start_block(fall);
        b.assign(x, Expr::Const(1)); // would clobber the compared register
        b.ret(Some(Expr::Reg(x)));
        b.start_block(other);
        b.assign(x, Expr::Const(1));
        b.ret(Some(Expr::Const(9)));
        let mut f = b.finish();
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn no_cross_jump_with_different_tails() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let y = b.param();
        let other = b.new_label();
        let join = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, other);
        b.assign(y, Expr::Const(1));
        b.jump(join);
        b.start_block(other);
        b.assign(y, Expr::Const(2));
        b.jump(join);
        b.start_block(join);
        b.ret(Some(Expr::Reg(y)));
        let mut f = b.finish();
        assert!(!run(&mut f, &t()));
    }
}
