//! Phase `i` — block reordering.
//!
//! "Removes a jump by reordering blocks when the target of the jump has
//! only a single predecessor." If block `B` ends in `PC=L;` and the block
//! `C` labelled `L` is entered *only* through that jump, the fall-through
//! chain starting at `C` is relocated to sit directly after `B` and the
//! jump is deleted.

use vpo_rtl::cfg::Cfg;
use vpo_rtl::{Function, Inst};

use crate::target::Target;

/// Runs block reordering; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;
    loop {
        if !reorder_once(f) {
            break;
        }
        changed = true;
    }
    changed
}

/// Performs at most one relocation; returns whether one happened.
fn reorder_once(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let n = f.blocks.len();
    for b in 0..n {
        let Some(Inst::Jump { target }) = f.blocks[b].insts.last() else { continue };
        let Some(&c) = cfg.index_of.get(target) else { continue };
        if c == b || c == b + 1 {
            continue; // self loop, or u's job (jump to fallthrough)
        }
        if cfg.preds[c].len() != 1 || cfg.preds[c][0] != b {
            continue;
        }
        if c == 0 {
            continue; // never displace the entry block
        }
        // Collect the fall-through chain starting at C. Every block in the
        // chain moves together so no fall-through edge is broken. The chain
        // ends at the first barrier-terminated block.
        let mut chain = vec![c];
        let mut last = c;
        while f.blocks[last].falls_through() {
            let next = last + 1;
            if next >= n || chain.contains(&next) || next == b {
                break;
            }
            chain.push(next);
            last = next;
        }
        if !f.blocks[*chain.last().unwrap()].falls_through() && !chain.contains(&b) {
            // Move the chain to sit after B and delete the jump. The chain
            // is a contiguous range starting at C, so B's index shifts by
            // the chain length exactly when the chain sits before B.
            let mut moved: Vec<_> = Vec::with_capacity(chain.len());
            for &idx in chain.iter().rev() {
                moved.push(f.blocks.remove(idx));
            }
            moved.reverse();
            let b_idx = if c < b { b - chain.len() } else { b };
            f.blocks[b_idx].insts.pop(); // the jump
            for (k, blk) in moved.into_iter().enumerate() {
                f.blocks.insert(b_idx + 1 + k, blk);
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{Cond, Expr};

    #[test]
    fn moves_single_pred_target_after_jump() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let over = b.new_label();
        let tail = b.new_label();
        // entry: branch to over or fall to middle; middle jumps to tail;
        // tail has only that one predecessor.
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, over);
        b.jump(tail);
        b.start_block(over);
        b.ret(Some(Expr::Const(1)));
        b.start_block(tail);
        b.ret(Some(Expr::Const(2)));
        let mut f = b.finish();
        let before = f.inst_count();
        assert!(run(&mut f, &Target::default()));
        assert_eq!(f.inst_count(), before - 1);
        // tail moved to directly after entry.
        assert_eq!(f.blocks[1].label, tail);
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn dormant_when_target_has_multiple_preds() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let shared = b.new_label();
        let second = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, second);
        b.jump(shared);
        b.start_block(second);
        b.jump(shared);
        b.start_block(shared);
        b.ret(Some(Expr::Const(1)));
        let mut f = b.finish();
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn does_not_break_fallthrough_chains() {
        // The moved chain drags its fall-through successors along.
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let a = b.new_label();
        let c1 = b.new_label();
        let c2 = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, a);
        b.jump(c1);
        b.start_block(a);
        b.ret(Some(Expr::Const(1)));
        b.start_block(c1);
        b.assign(x, Expr::Const(5)); // falls through to c2
        b.start_block(c2);
        b.ret(Some(Expr::Reg(x)));
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        // c1 and c2 moved together right after entry.
        assert_eq!(f.blocks[1].label, c1);
        assert_eq!(f.blocks[2].label, c2);
        assert_eq!(f.blocks[3].label, a);
    }
}
