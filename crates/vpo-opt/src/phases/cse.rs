//! Phase `c` — common subexpression elimination.
//!
//! "Performs global analysis to eliminate fully redundant calculations,
//! which also includes global constant and copy propagation."
//!
//! The implementation has two cooperating parts, iterated to a fixpoint:
//!
//! 1. **Global constant and copy propagation** — a forward must-dataflow
//!    over `register → (constant | copy-of-register)` facts. Uses are
//!    rewritten to the constant or the copy source whenever the rewritten
//!    instruction is still a legal machine instruction, and assignments
//!    that recompute a value the destination already holds are deleted.
//! 2. **Redundant-computation elimination** — value numbering over each
//!    extended block: a non-trivial right-hand side already held by another
//!    register is replaced by a register copy (Figure 3 of the paper shows
//!    how this makes `c` produce the same code as other phases), and a
//!    recomputation into the *same* register is deleted outright.
//!
//! Note that `c` does **not** fold constants — `r=1+2` stays put until
//! instruction selection (`s`) folds it — which is one of the sources of
//! interaction between the two phases.

use std::collections::BTreeMap;

use vpo_rtl::cfg::Cfg;
use vpo_rtl::{Expr, Function, Inst, Reg};

use crate::target::Target;

/// A propagated fact about a register's content.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Val {
    Const(i64),
    Copy(Reg),
}

type State = BTreeMap<Reg, Val>;

/// Runs CSE (constant/copy propagation + value numbering); returns whether
/// anything changed.
pub fn run(f: &mut Function, target: &Target) -> bool {
    let mut changed = false;
    for _round in 0..100 {
        let step = const_copy_prop(f, target) | value_numbering(f, target);
        if !step {
            return changed;
        }
        changed = true;
    }
    debug_assert!(false, "cse failed to reach a fixpoint in {}", f.name);
    changed
}

/// Removes every fact invalidated by a definition of `d`.
fn invalidate(state: &mut State, d: Reg) {
    state.remove(&d);
    state.retain(|_, v| !matches!(v, Val::Copy(r) if *r == d));
}

/// Applies one instruction's effect to the fact state.
fn transfer(state: &mut State, inst: &Inst) {
    match inst {
        Inst::Assign { dst, src } => {
            // Compute the new fact *before* invalidating (src may use dst).
            let fact = match src {
                Expr::Const(c) => Some(Val::Const(*c)),
                Expr::Reg(r) if r != dst => match state.get(r) {
                    Some(Val::Const(c)) => Some(Val::Const(*c)),
                    Some(Val::Copy(root)) if root != dst => Some(Val::Copy(*root)),
                    Some(Val::Copy(_)) => None,
                    None => Some(Val::Copy(*r)),
                },
                _ => None,
            };
            invalidate(state, *dst);
            if let Some(v) = fact {
                state.insert(*dst, v);
            }
        }
        Inst::Call { dst: Some(d), .. } => invalidate(state, *d),
        _ => {}
    }
}

/// Meet (intersection of equal facts) for the must-analysis.
fn meet(a: &State, b: &State) -> State {
    a.iter().filter(|(k, v)| b.get(*k) == Some(*v)).map(|(k, v)| (*k, *v)).collect()
}

/// Global constant and copy propagation. Returns whether code changed.
fn const_copy_prop(f: &mut Function, target: &Target) -> bool {
    let cfg = Cfg::build(f);
    let nb = f.blocks.len();
    // Optimistic fixpoint: unvisited predecessors are ignored by the meet.
    let mut out: Vec<Option<State>> = vec![None; nb];
    let rpo = cfg.reverse_postorder();
    let mut stable = false;
    while !stable {
        stable = true;
        for &bi in &rpo {
            let mut state = in_state(&cfg, &out, bi);
            for inst in &f.blocks[bi].insts {
                transfer(&mut state, inst);
            }
            if out[bi].as_ref() != Some(&state) {
                out[bi] = Some(state);
                stable = false;
            }
        }
    }

    // Rewrite walk.
    let mut changed = false;
    for bi in 0..nb {
        let mut state = in_state(&cfg, &out, bi);
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        let mut rewritten = Vec::with_capacity(insts.len());
        for mut inst in insts {
            // Delete assignments that recompute the destination's value.
            if let Inst::Assign { dst, src } = &inst {
                let already = match src {
                    Expr::Const(c) => state.get(dst) == Some(&Val::Const(*c)),
                    Expr::Reg(r) => {
                        r == dst
                            || state.get(dst) == Some(&Val::Copy(*r))
                            || (matches!(state.get(r), Some(Val::Const(_)))
                                && state.get(r) == state.get(dst))
                            || state.get(r) == Some(&Val::Copy(*dst))
                    }
                    _ => false,
                };
                if already {
                    changed = true;
                    continue; // drop the redundant assignment
                }
            }
            // Substitute facts into uses, one register at a time, keeping
            // only legal results.
            let mut used = Vec::new();
            inst.collect_uses(&mut used);
            used.sort_unstable();
            used.dedup();
            for r in used {
                let Some(v) = state.get(&r) else { continue };
                let replacement = match v {
                    Val::Const(c) => Expr::Const(*c),
                    Val::Copy(src) => Expr::Reg(*src),
                };
                let mut candidate = inst.clone();
                candidate.substitute_reg_uses(r, &replacement);
                if target.legal_inst(&candidate) && candidate != inst {
                    inst = candidate;
                    changed = true;
                }
            }
            transfer(&mut state, &inst);
            rewritten.push(inst);
        }
        f.blocks[bi].insts = rewritten;
    }
    changed
}

fn in_state(cfg: &Cfg, out: &[Option<State>], bi: usize) -> State {
    let mut acc: Option<State> = None;
    for &p in &cfg.preds[bi] {
        if let Some(s) = &out[p] {
            acc = Some(match acc {
                None => s.clone(),
                Some(a) => meet(&a, s),
            });
        }
    }
    acc.unwrap_or_default()
}

/// Right-hand sides value numbering considers: computations, loads, and
/// the address-forming leaves the front end emits repeatedly (`&local`,
/// `HI[sym]`). Registers and plain constants are the business of copy and
/// constant propagation instead.
fn numberable(src: &Expr) -> bool {
    matches!(src, Expr::Bin(..) | Expr::Un(..) | Expr::Load(..) | Expr::LocalAddr(_) | Expr::Hi(_))
}

/// Per-block value numbering of non-trivial right-hand sides. Returns
/// whether code changed.
fn value_numbering(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        let mut table: Vec<(Expr, Reg)> = Vec::new();
        let insts = std::mem::take(&mut b.insts);
        let mut out = Vec::with_capacity(insts.len());
        for mut inst in insts {
            let mut drop_inst = false;
            if let Inst::Assign { dst, src } = &inst {
                if numberable(src) {
                    if let Some((_, holder)) = table.iter().find(|(e, _)| e == src) {
                        if holder == dst {
                            drop_inst = true; // recomputation into same register
                        } else {
                            inst = Inst::Assign { dst: *dst, src: Expr::Reg(*holder) };
                        }
                        changed = true;
                    }
                }
            }
            if drop_inst {
                continue;
            }
            // Kills.
            if let Some(d) = inst.def() {
                table.retain(|(e, holder)| *holder != d && !e.uses_reg(d));
            }
            if inst.writes_memory() {
                table.retain(|(e, _)| !e.reads_memory());
            }
            // Insert the new availability fact.
            if let Inst::Assign { dst, src } = &inst {
                if numberable(src) && !src.uses_reg(*dst) && !table.iter().any(|(e, _)| e == src) {
                    table.push((src.clone(), *dst));
                }
            }
            out.push(inst);
        }
        b.insts = out;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{BinOp, Cond, Width};

    fn t() -> Target {
        Target::default()
    }

    #[test]
    fn paper_figure3_constant_propagation() {
        // r[2]=1; r[3]=r[4]+r[2]  =(c)=>  r[2]=1; r[3]=r[4]+1
        let mut b = FunctionBuilder::new("f");
        let r4 = b.param();
        let r2 = b.reg();
        let r3 = b.reg();
        b.assign(r2, Expr::Const(1));
        b.assign(r3, Expr::bin(BinOp::Add, Expr::Reg(r4), Expr::Reg(r2)));
        b.ret(Some(Expr::Reg(r3)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        // The dead r[2]=1 remains — removing it is h's job (Figure 3).
        assert_eq!(f.inst_count(), 3);
        assert!(matches!(
            &f.blocks[0].insts[1],
            Inst::Assign { src: Expr::Bin(BinOp::Add, _, c), .. }
                if matches!(&**c, Expr::Const(1))
        ));
    }

    #[test]
    fn copy_propagation() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let t0 = b.reg();
        let t1 = b.reg();
        b.assign(t0, Expr::Reg(x));
        b.assign(t1, Expr::bin(BinOp::Mul, Expr::Reg(t0), Expr::Reg(t0)));
        b.ret(Some(Expr::Reg(t1)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        assert!(matches!(
            &f.blocks[0].insts[1],
            Inst::Assign { src: Expr::Bin(BinOp::Mul, a, b2), .. }
                if matches!(&**a, Expr::Reg(r) if *r == x)
                    && matches!(&**b2, Expr::Reg(r) if *r == x)
        ));
    }

    #[test]
    fn global_propagation_across_blocks() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let l = b.new_label();
        let t0 = b.reg();
        let t1 = b.reg();
        b.assign(t0, Expr::Const(7));
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, l);
        b.start_block(l);
        b.assign(t1, Expr::bin(BinOp::Add, Expr::Reg(x), Expr::Reg(t0)));
        b.ret(Some(Expr::Reg(t1)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        let last_block = f.blocks.last().unwrap();
        assert!(matches!(
            &last_block.insts[0],
            Inst::Assign { src: Expr::Bin(BinOp::Add, _, c), .. }
                if matches!(&**c, Expr::Const(7))
        ));
    }

    #[test]
    fn no_propagation_through_conflicting_paths() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let t0 = b.reg();
        let t1 = b.reg();
        let l = b.new_label();
        let j = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, l);
        b.assign(t0, Expr::Const(1));
        b.jump(j);
        b.start_block(l);
        b.assign(t0, Expr::Const(2));
        b.start_block(j);
        b.assign(t1, Expr::bin(BinOp::Add, Expr::Reg(x), Expr::Reg(t0)));
        b.ret(Some(Expr::Reg(t1)));
        let mut f = b.finish();
        assert!(!run(&mut f, &t()), "t0 is 1 or 2 at the join; nothing to do");
    }

    #[test]
    fn value_numbering_reuses_common_subexpression() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let y = b.param();
        let t0 = b.reg();
        let t1 = b.reg();
        let out = b.reg();
        b.assign(t0, Expr::bin(BinOp::Mul, Expr::Reg(x), Expr::Reg(y)));
        b.assign(t1, Expr::bin(BinOp::Mul, Expr::Reg(x), Expr::Reg(y)));
        b.assign(out, Expr::bin(BinOp::Add, Expr::Reg(t0), Expr::Reg(t1)));
        b.ret(Some(Expr::Reg(out)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        assert!(matches!(
            &f.blocks[0].insts[1],
            Inst::Assign { src: Expr::Reg(r), .. } if *r == t0
        ));
    }

    #[test]
    fn redundant_loads_killed_by_stores() {
        let mut b = FunctionBuilder::new("f");
        let p = b.param();
        let z = b.param();
        let t0 = b.reg();
        let t1 = b.reg();
        let out = b.reg();
        b.assign(t0, Expr::load(Width::Word, Expr::Reg(p)));
        b.store(Width::Word, Expr::Reg(p), Expr::Reg(z));
        b.assign(t1, Expr::load(Width::Word, Expr::Reg(p)));
        b.assign(out, Expr::bin(BinOp::Add, Expr::Reg(t0), Expr::Reg(t1)));
        b.ret(Some(Expr::Reg(out)));
        let mut f = b.finish();
        // The second load must NOT be replaced: the store intervenes.
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn deletes_recomputation_into_same_register() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let t0 = b.reg();
        b.assign(t0, Expr::bin(BinOp::Add, Expr::Reg(x), Expr::Const(1)));
        b.assign(t0, Expr::bin(BinOp::Add, Expr::Reg(x), Expr::Const(1)));
        b.ret(Some(Expr::Reg(t0)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn fixpoint_is_reached() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let t0 = b.reg();
        let t1 = b.reg();
        let t2 = b.reg();
        b.assign(t0, Expr::Reg(x));
        b.assign(t1, Expr::Reg(t0));
        b.assign(t2, Expr::Reg(t1));
        b.ret(Some(Expr::Reg(t2)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        assert!(!run(&mut f, &t()), "second application must be dormant");
    }
}
