//! Phase `q` — strength reduction.
//!
//! "Replaces an expensive instruction with one or more cheaper ones. For
//! this version of the compiler, this means changing a multiply by a
//! constant into a series of shift, adds, and subtracts."
//!
//! Because multiplication takes registers only on the target, a source
//! expression `x * 4` reaches this phase as the pair `t=4; r=x*t`. The
//! phase tracks register constants within each block and rewrites the
//! multiply when the constant has one of the supported shapes
//! `±(2^k) · 2^j` or `±(2^k ± 1) · 2^j`:
//!
//! * `r = x << k` (power of two),
//! * `r = (x << k) + x` / `r = (x << k) - x` (2^k ± 1), optionally followed
//!   by `r = r << j` and/or `r = -r`.
//!
//! The constant-producing instruction is left in place; if the rewrite was
//! its last use it becomes dead, which is one of the ways `q` enables dead
//! assignment elimination (`h`).

use std::collections::HashMap;

use vpo_rtl::{BinOp, Expr, Function, Inst, Reg, UnOp};

use crate::target::Target;

/// Runs strength reduction; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        let mut consts: HashMap<Reg, i64> = HashMap::new();
        let mut ii = 0;
        while ii < b.insts.len() {
            // Try to rewrite a multiply whose one operand is a known const.
            let rewrite = match &b.insts[ii] {
                Inst::Assign { dst, src: Expr::Bin(BinOp::Mul, a, bb) } => match (&**a, &**bb) {
                    (Expr::Reg(x), Expr::Reg(c)) if consts.contains_key(c) => {
                        plan(*dst, *x, consts[c])
                    }
                    (Expr::Reg(c), Expr::Reg(x)) if consts.contains_key(c) => {
                        plan(*dst, *x, consts[c])
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(seq) = rewrite {
                let n = seq.len();
                b.insts.splice(ii..=ii, seq);
                changed = true;
                // The rewritten instructions redefine dst; fall through to
                // normal tracking from the first of them.
                let _ = n;
            }
            // Track constants.
            match &b.insts[ii] {
                Inst::Assign { dst, src: Expr::Const(c) } => {
                    consts.insert(*dst, *c);
                }
                other => {
                    if let Some(d) = other.def() {
                        consts.remove(&d);
                    }
                }
            }
            ii += 1;
        }
    }
    changed
}

/// Builds the replacement sequence for `dst = x * c`, or `None` when the
/// constant shape is unsupported (the multiply is cheaper then).
fn plan(dst: Reg, x: Reg, c: i64) -> Option<Vec<Inst>> {
    // dst and x may alias: every plan reads x exactly once, first.
    let negative = c < 0;
    let m = c.unsigned_abs();
    if c == 0 || m > u32::MAX as u64 {
        return None; // x*0 is constant folding's business, not ours
    }
    let j = m.trailing_zeros();
    let odd = m >> j;
    let first: Expr = if odd == 1 {
        if j == 0 {
            return None; // multiply by ±1: nothing to reduce
        }
        Expr::bin(BinOp::Shl, Expr::Reg(x), Expr::Const(j as i64))
    } else if (odd + 1).is_power_of_two() {
        // odd = 2^k - 1: dst = (x << k) - x
        let k = (odd + 1).trailing_zeros();
        Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Shl, Expr::Reg(x), Expr::Const(k as i64)),
            Expr::Reg(x),
        )
    } else if (odd - 1).is_power_of_two() {
        // odd = 2^k + 1: dst = (x << k) + x
        let k = (odd - 1).trailing_zeros();
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Shl, Expr::Reg(x), Expr::Const(k as i64)),
            Expr::Reg(x),
        )
    } else {
        return None;
    };
    let mut seq = vec![Inst::Assign { dst, src: first }];
    if odd != 1 && j > 0 {
        seq.push(Inst::Assign {
            dst,
            src: Expr::bin(BinOp::Shl, Expr::Reg(dst), Expr::Const(j as i64)),
        });
    }
    if negative {
        seq.push(Inst::Assign { dst, src: Expr::un(UnOp::Neg, Expr::Reg(dst)) });
    }
    Some(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;

    fn t() -> Target {
        Target::default()
    }

    fn build_mul(c: i64) -> (Function, Reg) {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let tc = b.reg();
        let r = b.reg();
        b.assign(tc, Expr::Const(c));
        b.assign(r, Expr::bin(BinOp::Mul, Expr::Reg(x), Expr::Reg(tc)));
        b.ret(Some(Expr::Reg(r)));
        (b.finish(), r)
    }

    #[test]
    fn power_of_two_becomes_shift() {
        let (mut f, r) = build_mul(4);
        assert!(run(&mut f, &t()));
        assert!(matches!(
            &f.blocks[0].insts[1],
            Inst::Assign { dst, src: Expr::Bin(BinOp::Shl, _, k) }
                if *dst == r && matches!(&**k, Expr::Const(2))
        ));
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn times_ten_becomes_shift_add_shift() {
        // 10 = (4+1)*2: dst = (x<<2)+x; dst = dst<<1
        let (mut f, _) = build_mul(10);
        let before = f.inst_count();
        assert!(run(&mut f, &t()));
        assert_eq!(f.inst_count(), before + 1);
        let legal = t();
        legal.check_function(&f).unwrap();
    }

    #[test]
    fn times_seven_uses_subtract() {
        let (mut f, _) = build_mul(7);
        assert!(run(&mut f, &t()));
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Assign { src: Expr::Bin(BinOp::Sub, ..), .. })));
        t().check_function(&f).unwrap();
    }

    #[test]
    fn negative_constant_appends_negation() {
        let (mut f, _) = build_mul(-8);
        assert!(run(&mut f, &t()));
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Assign { src: Expr::Un(UnOp::Neg, _), .. })));
        t().check_function(&f).unwrap();
    }

    #[test]
    fn unsupported_constants_stay_multiplies() {
        for c in [0, 1, 100, 11, -1] {
            let (mut f, _) = build_mul(c);
            assert!(!run(&mut f, &t()), "c = {c} should be left alone");
        }
    }

    #[test]
    fn constant_invalidated_by_redefinition() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let tc = b.reg();
        let r = b.reg();
        b.assign(tc, Expr::Const(4));
        b.assign(tc, Expr::Reg(x)); // tc no longer constant
        b.assign(r, Expr::bin(BinOp::Mul, Expr::Reg(x), Expr::Reg(tc)));
        b.ret(Some(Expr::Reg(r)));
        let mut f = b.finish();
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn semantics_of_plans() {
        // Check the generated sequences compute x*c for many (x, c).
        for c in [2i64, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 15, 16, 24, 31, 33, -2, -3, -12] {
            let seq = plan(Reg::hard(1), Reg::hard(0), c);
            let Some(seq) = seq else { continue };
            for x in [-17i64, -1, 0, 1, 5, 1000] {
                let mut regs = [x, 0i64];
                for inst in &seq {
                    if let Inst::Assign { dst, src } = inst {
                        let v = eval(src, &regs);
                        regs[dst.index as usize] = v;
                    }
                }
                assert_eq!(regs[1], (x as i32).wrapping_mul(c as i32) as i64, "x={x} c={c}");
            }
        }
    }

    fn eval(e: &Expr, regs: &[i64; 2]) -> i64 {
        match e {
            Expr::Reg(r) => regs[r.index as usize],
            Expr::Const(c) => *c,
            Expr::Bin(op, a, b) => {
                op.eval(eval(a, regs) as i32, eval(b, regs) as i32).unwrap() as i64
            }
            Expr::Un(op, a) => op.eval(eval(a, regs) as i32) as i64,
            _ => unreachable!(),
        }
    }
}
