//! Phase `l` — loop transformations.
//!
//! "Performs loop-invariant code motion, recurrence elimination, loop
//! strength reduction, and induction variable elimination on each loop
//! ordered by loop nesting level." Legal only after register allocation
//! (`k`), because the analyses reason about values held in registers.
//!
//! Implemented transformations, applied innermost-first:
//!
//! * **Loop-invariant code motion** — a single-definition register
//!   assignment whose operands are unchanged in the loop (and which cannot
//!   alias a loop store) moves to the preheader, provided the value is
//!   consumed only inside the loop (so hoisting past a zero-trip loop is
//!   harmless). A dedicated preheader block is created on demand.
//! * **Loop strength reduction** — `t = i * m` / `t = i << k` with basic
//!   induction variable `i` (single in-loop step `i = i ± c`) is replaced
//!   by an addition of a precomputed step, with the initial value hoisted
//!   to the preheader. This trades the in-loop multiply for an add, the
//!   classic recurrence form.
//!
//! Induction-variable *elimination* is subsumed in this compiler by the
//! combination of strength reduction, CSE and dead assignment elimination
//! (a fully reduced IV's remaining uses disappear through `c` and `h`).

use std::collections::HashSet;

use vpo_rtl::cfg::Cfg;
use vpo_rtl::liveness::{Item, Liveness};
use vpo_rtl::loops::{find_loops, NaturalLoop};
use vpo_rtl::{BinOp, Block, Expr, Function, Inst, Reg};

use crate::target::Target;

/// Runs loop transformations; returns whether anything changed.
pub fn run(f: &mut Function, target: &Target) -> bool {
    let mut changed = false;
    // Each motion invalidates block indices, so re-discover loops after
    // every successful step; terminate at a fixpoint.
    loop {
        if !step(f, target) {
            break;
        }
        changed = true;
    }
    changed
}

fn step(f: &mut Function, target: &Target) -> bool {
    let cfg = Cfg::build(f);
    let loops = find_loops(&cfg); // innermost (deepest) first
    for l in &loops {
        if licm_once(f, &cfg, l) {
            return true;
        }
        if strength_reduce_once(f, &cfg, l, target) {
            return true;
        }
    }
    false
}

/// Per-register definition counts inside the loop: one scan serves the
/// invariance tests (`contains_key`) and the single-definition tests
/// (`== Some(&1)`) that previously re-scanned the loop per candidate.
fn loop_def_counts(f: &Function, l: &NaturalLoop) -> std::collections::HashMap<Reg, usize> {
    let mut defs = std::collections::HashMap::new();
    for &bi in &l.body {
        for inst in &f.blocks[bi].insts {
            if let Some(d) = inst.def() {
                *defs.entry(d).or_insert(0) += 1;
            }
        }
    }
    defs
}

/// Whether any instruction in the loop may write memory.
fn loop_writes_memory(f: &Function, l: &NaturalLoop) -> bool {
    l.body.iter().any(|&bi| f.blocks[bi].insts.iter().any(|i| i.writes_memory()))
}

/// Finds or creates the loop preheader: the unique block through which the
/// loop is entered. Returns its block index, or `None` if creating one is
/// impossible (header is the function entry with no outside predecessor).
fn ensure_preheader(f: &mut Function, l: &NaturalLoop) -> Option<usize> {
    let cfg = Cfg::build(f);
    let h = l.header;
    let outside: Vec<usize> = cfg.preds[h].iter().copied().filter(|p| !l.contains(*p)).collect();
    if outside.is_empty() {
        return None;
    }
    if let [p] = outside.as_slice() {
        // A dedicated preheader must have the header as its only successor.
        if cfg.succs[*p].len() == 1 && cfg.succs[*p][0] == h {
            return Some(*p);
        }
    }
    // Create one directly before the header: fall-through preds reach it
    // naturally; branch preds from outside the loop are retargeted.
    if h == 0 {
        return None;
    }
    let header_label = f.blocks[h].label;
    let pre_label = f.new_label();
    // Retarget: outside branches to the header go to the preheader; the
    // loop's own back edges keep targeting the header.
    let body_labels: HashSet<_> = l.body.iter().map(|&b| f.blocks[b].label).collect();
    for b in &mut f.blocks {
        let from_inside = body_labels.contains(&b.label);
        if from_inside {
            continue;
        }
        for inst in &mut b.insts {
            inst.retarget(|t| if t == header_label { pre_label } else { t });
        }
    }
    f.blocks.insert(h, Block::new(pre_label));
    Some(h)
}

/// Appends an instruction to a preheader, before its trailing jump if any.
fn append_to_preheader(blk: &mut Block, inst: Inst) {
    match blk.insts.last() {
        Some(Inst::Jump { .. }) => {
            let at = blk.insts.len() - 1;
            blk.insts.insert(at, inst);
        }
        _ => blk.insts.push(inst),
    }
}

/// Registers live at the loop boundary: live-in of every outside
/// successor of a loop block (conservative exit liveness), plus live-in
/// of the header from outside (use-before-def in loop).
fn loop_boundary_live(f: &Function, cfg: &Cfg, l: &NaturalLoop) -> HashSet<Reg> {
    let lv = Liveness::compute(f, cfg);
    let mut live: HashSet<Reg> = HashSet::new();
    for &bi in &l.body {
        for &s in &cfg.succs[bi] {
            if !l.contains(s) {
                for idx in lv.live_in[s].iter() {
                    if let Item::Reg(r) = lv.universe[idx] {
                        live.insert(r);
                    }
                }
            }
        }
    }
    for idx in lv.live_in[l.header].iter() {
        if let Item::Reg(r) = lv.universe[idx] {
            live.insert(r);
        }
    }
    live
}

/// Attempts one invariant code motion in loop `l`.
fn licm_once(f: &mut Function, cfg: &Cfg, l: &NaturalLoop) -> bool {
    let defs = loop_def_counts(f, l);
    let mem_written = loop_writes_memory(f, l);
    // The liveness consultation is the expensive test, so it is deferred
    // until a candidate survives everything cheaper; `f` is not mutated
    // before a commit, so the deferred analysis is exact. The candidate
    // tests are pure, independent predicates — reordering them cheapest
    // first changes which one rejects a non-candidate, never the first
    // candidate accepted.
    let mut boundary_live: Option<HashSet<Reg>> = None;
    let mut operands = Vec::new();

    for &bi in &l.body {
        for ii in 0..f.blocks[bi].insts.len() {
            let Inst::Assign { dst, src } = &f.blocks[bi].insts[ii] else { continue };
            let dst = *dst;
            // Candidate tests.
            if matches!(src, Expr::Reg(_) | Expr::Const(_)) {
                continue; // moving trivial copies is not profitable
            }
            if src.reads_memory() && mem_written {
                continue;
            }
            // Single definition of dst in the loop.
            if defs.get(&dst) != Some(&1) {
                continue;
            }
            operands.clear();
            src.collect_regs(&mut operands);
            if operands.iter().any(|r| defs.contains_key(r)) {
                continue; // operands vary within the loop
            }
            // A division may trap; executing it when the loop would not
            // have run at all would change behaviour.
            let mut may_trap = false;
            src.visit(&mut |e| {
                if matches!(e, Expr::Bin(BinOp::Div | BinOp::Rem, ..)) {
                    may_trap = true;
                }
            });
            if may_trap {
                continue;
            }
            let live = boundary_live.get_or_insert_with(|| loop_boundary_live(f, cfg, l));
            if live.contains(&dst) {
                continue;
            }
            // Move it.
            let inst = f.blocks[bi].insts.remove(ii);
            let Some(pre) = ensure_preheader(f, l) else {
                // No preheader possible: put the instruction back.
                f.blocks[bi].insts.insert(ii, inst);
                return false;
            };
            append_to_preheader(&mut f.blocks[pre], inst);
            return true;
        }
    }
    false
}

/// A basic induction variable: its single in-loop definition is
/// `i = i + c` (or `i = i - c`). Returns `(block, index, step)`.
fn basic_ivs(
    f: &Function,
    l: &NaturalLoop,
    def_counts: &std::collections::HashMap<Reg, usize>,
) -> Vec<(Reg, usize, usize, i64)> {
    let mut candidates = Vec::new();
    for &bi in &l.body {
        for (ii, inst) in f.blocks[bi].insts.iter().enumerate() {
            let Inst::Assign { dst, src } = inst else { continue };
            if def_counts.get(dst) != Some(&1) {
                continue;
            }
            let step = match src {
                Expr::Bin(BinOp::Add, a, b) => match (&**a, &**b) {
                    (Expr::Reg(r), Expr::Const(c)) if r == dst => Some(*c),
                    (Expr::Const(c), Expr::Reg(r)) if r == dst => Some(*c),
                    _ => None,
                },
                Expr::Bin(BinOp::Sub, a, b) => match (&**a, &**b) {
                    (Expr::Reg(r), Expr::Const(c)) if r == dst => Some(-*c),
                    _ => None,
                },
                _ => None,
            };
            if let Some(c) = step {
                candidates.push((*dst, bi, ii, c));
            }
        }
    }
    candidates
}

/// Attempts one strength reduction of `t = i * m` or `t = i << k` in loop
/// `l`, where `i` is a basic IV whose step instruction follows the
/// definition of `t` in the same block.
fn strength_reduce_once(f: &mut Function, cfg: &Cfg, l: &NaturalLoop, target: &Target) -> bool {
    let defs = loop_def_counts(f, l);
    let ivs = basic_ivs(f, l, &defs);
    if ivs.is_empty() {
        return false;
    }
    // Deferred like in `licm_once`: most candidate scans reject before
    // ever consulting liveness.
    let mut live_outside: Option<HashSet<Reg>> = None;

    for &(iv, iv_bi, iv_ii, step) in &ivs {
        for &bi in &l.body {
            for ii in 0..f.blocks[bi].insts.len() {
                let Inst::Assign { dst, src } = &f.blocks[bi].insts[ii] else { continue };
                let dst = *dst;
                if dst == iv {
                    continue;
                }
                // Recognize t = i * m (m an invariant register) and
                // t = i << k (constant k): step' = step*m or step<<k.
                let (derived_src, step_expr) = match src {
                    Expr::Bin(BinOp::Shl, a, b) => match (&**a, &**b) {
                        (Expr::Reg(r), Expr::Const(k)) if *r == iv && (0..31).contains(k) => {
                            let s = step << k;
                            if !target.legal_imm(s) {
                                continue;
                            }
                            (src.clone(), Expr::Const(s))
                        }
                        _ => continue,
                    },
                    Expr::Bin(BinOp::Mul, a, b) => match (&**a, &**b) {
                        (Expr::Reg(r), Expr::Reg(m)) | (Expr::Reg(m), Expr::Reg(r))
                            if *r == iv && !defs.contains_key(m) && *m != iv =>
                        {
                            // step' = m * step needs a register; only the
                            // power-of-two steps stay single-instruction.
                            if step.abs() != 1 {
                                continue;
                            }
                            let se = if step == 1 {
                                Expr::Reg(*m)
                            } else {
                                Expr::un(vpo_rtl::UnOp::Neg, Expr::Reg(*m))
                            };
                            (src.clone(), se)
                        }
                        _ => continue,
                    },
                    _ => continue,
                };
                // t single def in loop, dead outside, and the IV step must
                // come after t's definition in the same block (so inserting
                // the recurrence update right after the step keeps
                // t == f(i) at t's use point).
                if defs.get(&dst) != Some(&1) {
                    continue;
                }
                let live = live_outside.get_or_insert_with(|| loop_boundary_live(f, cfg, l));
                if live.contains(&dst) {
                    continue;
                }
                if !(bi == iv_bi && ii < iv_ii) {
                    continue;
                }
                // The update uses `dst = dst + step_expr`; if step_expr is
                // a negation we need Sub instead.
                let update = match &step_expr {
                    Expr::Un(vpo_rtl::UnOp::Neg, inner) => Inst::Assign {
                        dst,
                        src: Expr::bin(BinOp::Sub, Expr::Reg(dst), (**inner).clone()),
                    },
                    other => Inst::Assign {
                        dst,
                        src: Expr::bin(BinOp::Add, Expr::Reg(dst), other.clone()),
                    },
                };
                if !target.legal_inst(&update) {
                    continue;
                }
                // Commit: replace the in-loop computation with the
                // recurrence, hoist the initial computation.
                let init = Inst::Assign { dst, src: derived_src };
                f.blocks[bi].insts.remove(ii);
                // Indices shift: the IV step was after ii in the same block.
                let iv_ii = iv_ii - 1;
                f.blocks[bi].insts.insert(iv_ii + 1, update);
                let Some(pre) = ensure_preheader(f, l) else { return false };
                append_to_preheader(&mut f.blocks[pre], init);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    use vpo_rtl::{Cond, Width};

    fn t() -> Target {
        Target::default()
    }

    /// `while (i < n) { t = a + b; s += t; i += 1 }` with hard registers
    /// (post-assignment form), invariant `a+b`.
    fn licm_candidate() -> Function {
        let mut f = Function::new("f");
        f.flags.regs_assigned = true;
        f.flags.reg_allocated = true;
        let [i, n, a, b, tt, s] = [0, 1, 2, 3, 4, 5].map(Reg::hard);
        f.params = vec![i, n, a, b];
        let header = f.new_label();
        let body = f.new_label();
        let exit = f.new_label();
        f.blocks[0].insts = vec![Inst::Assign { dst: s, src: Expr::Const(0) }];
        f.blocks.push(Block::new(header));
        f.blocks[1].insts = vec![
            Inst::Compare { lhs: Expr::Reg(i), rhs: Expr::Reg(n) },
            Inst::CondBranch { cond: Cond::Ge, target: exit },
        ];
        f.blocks.push(Block::new(body));
        f.blocks[2].insts = vec![
            Inst::Assign { dst: tt, src: Expr::bin(BinOp::Add, Expr::Reg(a), Expr::Reg(b)) },
            Inst::Assign { dst: s, src: Expr::bin(BinOp::Add, Expr::Reg(s), Expr::Reg(tt)) },
            Inst::Assign { dst: i, src: Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)) },
            Inst::Jump { target: header },
        ];
        f.blocks.push(Block::new(exit));
        f.blocks[3].insts = vec![Inst::Return { value: Some(Expr::Reg(s)) }];
        f
    }

    #[test]
    fn hoists_invariant_computation() {
        let mut f = licm_candidate();
        assert!(run(&mut f, &t()));
        // The a+b computation now sits outside the loop (entry block, which
        // is the natural preheader).
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Assign { src: Expr::Bin(BinOp::Add, ..), .. })));
        // Loop body shrank.
        let body = &f.blocks[2].insts;
        assert_eq!(body.len(), 3);
        assert!(!run(&mut f, &t()), "dormant after fixpoint");
    }

    #[test]
    fn does_not_hoist_varying_computation() {
        let mut f = licm_candidate();
        // Make `a` vary inside the loop.
        f.blocks[2].insts.insert(
            2,
            Inst::Assign {
                dst: Reg::hard(2),
                src: Expr::bin(BinOp::Add, Expr::Reg(Reg::hard(2)), Expr::Const(1)),
            },
        );
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn does_not_hoist_loads_past_stores() {
        let mut f = licm_candidate();
        // Replace the invariant add with a load, and add a store to the loop.
        f.blocks[2].insts[0] = Inst::Assign {
            dst: Reg::hard(4),
            src: Expr::load(Width::Word, Expr::Reg(Reg::hard(3))),
        };
        f.blocks[2].insts.insert(
            1,
            Inst::Store {
                width: Width::Word,
                addr: Expr::Reg(Reg::hard(3)),
                src: Expr::Reg(Reg::hard(4)),
            },
        );
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn strength_reduces_shifted_iv() {
        // t = i << 2 inside a loop stepping i by 1 becomes t += 4.
        let mut f = Function::new("f");
        f.flags.regs_assigned = true;
        f.flags.reg_allocated = true;
        let [i, n, tt, s] = [0, 1, 2, 3].map(Reg::hard);
        f.params = vec![n];
        let body = f.new_label();
        let exit = f.new_label();
        f.blocks[0].insts = vec![
            Inst::Assign { dst: i, src: Expr::Const(0) },
            Inst::Assign { dst: s, src: Expr::Const(0) },
        ];
        f.blocks.push(Block::new(body));
        f.blocks[1].insts = vec![
            Inst::Assign { dst: tt, src: Expr::bin(BinOp::Shl, Expr::Reg(i), Expr::Const(2)) },
            Inst::Assign { dst: s, src: Expr::bin(BinOp::Add, Expr::Reg(s), Expr::Reg(tt)) },
            Inst::Assign { dst: i, src: Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)) },
            Inst::Compare { lhs: Expr::Reg(i), rhs: Expr::Reg(n) },
            Inst::CondBranch { cond: Cond::Lt, target: body },
        ];
        f.blocks.push(Block::new(exit));
        f.blocks[2].insts = vec![Inst::Return { value: Some(Expr::Reg(s)) }];
        let mut f2 = f.clone();
        assert!(run(&mut f2, &t()));
        // The shift left the loop; an addition by 4 appears after the step.
        let body_insts = &f2.blocks[f2.block_index(body).unwrap()].insts;
        assert!(body_insts
            .iter()
            .all(|i| !matches!(i, Inst::Assign { src: Expr::Bin(BinOp::Shl, ..), .. })));
        assert!(body_insts.iter().any(|inst| matches!(
            inst,
            Inst::Assign { dst, src: Expr::Bin(BinOp::Add, a, c) }
                if *dst == tt
                    && matches!(&**a, Expr::Reg(r) if *r == tt)
                    && matches!(&**c, Expr::Const(4))
        )));
    }
}
